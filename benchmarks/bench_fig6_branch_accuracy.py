"""Figure 6 — conditional branch misprediction: blocked vs scalar PHT.

Paper result: accuracies are essentially identical across history lengths
6..12; SPECint95 ~91.5% and SPECfp95 ~97.3% accurate at a 10-bit GHR, with
the blocked PHT ahead by hundredths (fp) to tenths (int) of a percent.
"""

from repro.experiments import format_fig6, instruction_budget, run_fig6


def test_fig6_blocked_vs_scalar(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_fig6, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("fig6_branch_accuracy", format_fig6(rows))
    by = {(r.suite, r.history_length): r for r in rows}
    benchmark.extra_info["int_miss_h10"] = by[("int", 10)].blocked_rate
    benchmark.extra_info["fp_miss_h10"] = by[("fp", 10)].blocked_rate
    # Reproduction checks (shape, not absolute numbers).
    for row in rows:
        assert abs(row.improvement) < 0.01  # blocked ~ scalar
    assert by[("fp", 10)].blocked_rate < by[("int", 10)].blocked_rate
