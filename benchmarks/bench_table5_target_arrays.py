"""Table 5 — BTB/NLS target-array configurations (SPECint95).

Paper result: misfetch penalties fall as arrays grow; near-block encoding
roughly halves the entries needed for the same performance (~70% of
conditional branches are near-block).
"""

from repro.experiments import (
    format_table5,
    instruction_budget,
    run_table5,
)


def test_table5_target_arrays(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_table5, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("table5_target_arrays", format_table5(rows))

    def get(kind, size, near):
        for r in rows:
            if (r.target_kind, r.n_block_entries, r.near_block) == \
                    (kind, size, near):
                return r
        raise AssertionError("missing row")

    benchmark.extra_info["btb8_ipc"] = get("btb", 8, False).ipc_f
    benchmark.extra_info["btb64_ipc"] = get("btb", 64, False).ipc_f
    # Shape: bigger arrays fetch better...
    assert get("btb", 64, False).ipc_f > get("btb", 8, False).ipc_f
    # ...near-block halves the required size (8 + near ~ 16 without).
    assert get("btb", 8, True).ipc_f >= get("btb", 16, False).ipc_f * 0.98
    # ...and near-block cuts the immediate-misfetch share everywhere.
    for kind, size in (("btb", 8), ("btb", 64), ("nls", 8), ("nls", 64)):
        assert get(kind, size, True).misfetch_immediate_share <= \
            get(kind, size, False).misfetch_immediate_share
