"""Ablation — predicting 1..4 blocks per cycle (Section 5's extension).

"It is possible to predict more than two blocks per cycle.  In that case,
the cost grows proportionally to the number of blocks predicted."

Sweeps the generalised N-block engine over both suites and prints IPC_f
next to the linear storage cost, showing where extra fetch width stops
paying (branchy integer code saturates early; loop-dominated fp keeps
scaling).
"""

from repro.core import MultiBlockEngine
from repro.core.config import EngineConfig
from repro.cost import CostConfig, multi_block_cost
from repro.experiments import (
    format_table,
    instruction_budget,
    run_suite,
)
from repro.icache import CacheGeometry


def run_ablation(budget):
    geometry = CacheGeometry.self_aligned(8)
    rows = []
    for n in (1, 2, 3, 4):
        cost = multi_block_cost(n, CostConfig()).total_kbits
        per_suite = {}
        for suite in ("int", "fp"):
            agg = run_suite(
                suite,
                EngineConfig(geometry=geometry, n_select_tables=8),
                budget,
                engine_factory=lambda cfg, n=n: MultiBlockEngine(cfg, n))
            per_suite[suite] = agg
        rows.append((n, per_suite["int"], per_suite["fp"], cost))
    return rows


def test_multiblock_scaling(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(run_ablation, args=(budget,), rounds=1,
                              iterations=1)
    table = [[str(n), f"{i.ipc_f:.2f}", f"{i.bep:.3f}",
              f"{f.ipc_f:.2f}", f"{f.bep:.3f}", f"{kbits:.0f}"]
             for n, i, f, kbits in rows]
    record_table("ablation_multiblock", format_table(
        ["blocks/cycle", "int IPC_f", "int BEP", "fp IPC_f", "fp BEP",
         "Kbits"], table))

    by_n = {n: (i, f, kbits) for n, i, f, kbits in rows}
    benchmark.extra_info["fp_ipc_4blk"] = by_n[4][1].ipc_f
    # Two blocks beat one everywhere (the paper's core result).
    assert by_n[2][0].ipc_f > by_n[1][0].ipc_f
    assert by_n[2][1].ipc_f > by_n[1][1].ipc_f
    # FP keeps scaling past two blocks; costs grow linearly.
    assert by_n[4][1].ipc_f > by_n[2][1].ipc_f
    assert by_n[4][2] - by_n[3][2] == by_n[3][2] - by_n[2][2]
    # Integer code saturates: going 2 -> 4 blocks gains less than 1 -> 2.
    int_gain_12 = by_n[2][0].ipc_f - by_n[1][0].ipc_f
    int_gain_24 = by_n[4][0].ipc_f - by_n[2][0].ipc_f
    assert int_gain_24 < int_gain_12
