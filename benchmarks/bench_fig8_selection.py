"""Figure 8 — single vs double selection across GHR lengths and ST counts.

Paper result: more select tables and longer histories help; double
selection costs roughly 10% and recovers most of it with 8 STs.
"""

from repro.experiments import format_fig8, instruction_budget, run_fig8


def test_fig8_selection_sweep(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_fig8, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("fig8_selection", format_fig8(rows))

    def get(suite, selection, h, n_st):
        for r in rows:
            if (r.suite, r.selection, r.history_length,
                    r.n_select_tables) == (suite, selection, h, n_st):
                return r
        raise AssertionError("missing row")

    for suite in ("int", "fp"):
        single = get(suite, "single", 10, 8)
        double = get(suite, "double", 10, 8)
        benchmark.extra_info[f"{suite}_single_10_8"] = single.ipc_f
        benchmark.extra_info[f"{suite}_double_10_8"] = double.ipc_f
        # Shape: single beats double; 8 STs beat 1 ST.
        assert single.ipc_f > double.ipc_f
        assert get(suite, "single", 10, 8).ipc_f >= \
            get(suite, "single", 10, 1).ipc_f
        assert get(suite, "double", 12, 8).ipc_f >= \
            get(suite, "double", 9, 1).ipc_f
