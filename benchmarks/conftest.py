"""Shared benchmark plumbing.

Each benchmark module regenerates one paper table/figure.  Results are
printed (visible with ``pytest -s``) and written to
``benchmarks/results/<name>.txt`` so the regenerated tables survive the
run; headline numbers also land in ``benchmark.extra_info``.

The per-workload instruction budget follows ``REPRO_TRACE_LEN`` (default
120 000, the stand-in for the paper's 10^9 instructions per program).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Save a rendered table under results/ and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _record
