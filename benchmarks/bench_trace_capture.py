"""Trace-capture throughput: scalar reference tracer vs the fast tier.

Measures wall-clock capture time per registered workload under both
``REPRO_TRACER`` modes at a mid-size budget, one headline cell at 10x
that budget (where the fast tier's compiled superblocks amortise), and a
streaming demonstration: a paper-scale capture spooled through
:class:`~repro.trace.chunks.TraceChunkWriter` in a fresh subprocess so
its peak RSS can be read from the OS — the number that shows memory is
bounded by the chunk size, not the trace length.

Results land in ``benchmarks/results/BENCH_trace_capture.json``.  Knobs:

* ``BENCH_TRACE_BUDGET`` — per-workload budget (default 10^6);
* ``BENCH_TRACE_DEMO`` — streaming-demo budget (default 10^8 standalone,
  0 disables; the pytest wrapper defaults it to 0 to stay quick).

Runs standalone (``python benchmarks/bench_trace_capture.py``) or under
pytest; either way it fails if the fast tracer loses to scalar on
geomean.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_trace_capture.json"

BUDGET = int(os.environ.get("BENCH_TRACE_BUDGET", "1000000"))
HEADLINE_WORKLOAD = "su2cor"

#: Streaming-demo subprocess body: capture with a bounded chunk writer,
#: report instruction count, records, wall-clock and peak RSS.
_DEMO_SCRIPT = r"""
import json, resource, sys, time
from repro.cpu.fast import FastMachine
from repro.trace.chunks import ChunkedTrace, TraceChunkWriter
from repro.workloads.registry import REGISTRY

name, budget, per_chunk, path = (sys.argv[1], int(sys.argv[2]),
                                 int(sys.argv[3]), sys.argv[4])
program = REGISTRY.program(name)
start = time.perf_counter()
with TraceChunkWriter(path, entry_pc=program.entry, name=name,
                      records_per_chunk=per_chunk) as writer:
    executed, halted, truncated = FastMachine(program).run_streaming(
        writer, max_instructions=budget, flush_records=per_chunk)
    writer.close(executed, truncated=truncated)
elapsed = time.perf_counter() - start
with ChunkedTrace(path) as trace:
    n_records, n_chunks = trace.n_records, trace.n_chunks
print(json.dumps({
    "instructions": executed,
    "records": n_records,
    "chunks": n_chunks,
    "elapsed_s": elapsed,
    "max_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                  / 1024.0,
}))
"""


def _time_capture(name: str, mode: str, budget: int) -> float:
    from repro.cpu import capture_machine
    from repro.qa.oracle import tracer_mode_env
    from repro.workloads.registry import REGISTRY

    program = REGISTRY.program(name)
    with tracer_mode_env(mode):
        start = time.perf_counter()
        capture_machine(program).run(max_instructions=budget)
        return time.perf_counter() - start


def run_sweep(budget: int = BUDGET) -> dict:
    """Scalar-vs-fast capture timings for every registered workload."""
    from repro.workloads.registry import workload_names

    rows = {}
    for name in workload_names():
        scalar_s = _time_capture(name, "scalar", budget)
        fast_s = _time_capture(name, "fast", budget)
        rows[name] = {
            "scalar_s": round(scalar_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(scalar_s / fast_s, 2),
        }
        print(f"{name:10s} scalar {scalar_s:7.3f}s  fast {fast_s:7.3f}s"
              f"  x{scalar_s / fast_s:5.2f}")
    geomean = math.exp(sum(math.log(r["speedup"]) for r in rows.values())
                       / len(rows))
    return {"budget": budget, "workloads": rows,
            "geomean_speedup": round(geomean, 2)}


def run_headline(budget: int) -> dict:
    """One large-budget cell where compiled superblocks amortise."""
    scalar_s = _time_capture(HEADLINE_WORKLOAD, "scalar", budget)
    fast_s = _time_capture(HEADLINE_WORKLOAD, "fast", budget)
    print(f"headline {HEADLINE_WORKLOAD} @ {budget:.0e}: "
          f"scalar {scalar_s:.2f}s fast {fast_s:.2f}s "
          f"x{scalar_s / fast_s:.1f}")
    return {"workload": HEADLINE_WORKLOAD, "budget": budget,
            "scalar_s": round(scalar_s, 3), "fast_s": round(fast_s, 3),
            "speedup": round(scalar_s / fast_s, 2)}


def run_streaming_demo(budget: int, per_chunk: int = 1 << 20) -> dict:
    """Paper-scale chunked capture in a subprocess; peak RSS from the OS."""
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "demo.chunks")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", _DEMO_SCRIPT, HEADLINE_WORKLOAD,
             str(budget), str(per_chunk), path],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(f"streaming demo failed:\n{proc.stderr}")
        container_mb = Path(path).stat().st_size / 2**20 \
            if Path(path).exists() else None
    stats = json.loads(proc.stdout.splitlines()[-1])
    stats.update({
        "workload": HEADLINE_WORKLOAD,
        "budget": budget,
        "records_per_chunk": per_chunk,
        "container_mb": round(container_mb, 1) if container_mb else None,
        "mips": round(stats["instructions"] / stats["elapsed_s"] / 1e6,
                      1),
        "max_rss_mb": round(stats["max_rss_mb"], 1),
        "elapsed_s": round(stats["elapsed_s"], 2),
    })
    print(f"streaming {HEADLINE_WORKLOAD} @ {budget:.0e}: "
          f"{stats['elapsed_s']}s, {stats['mips']} Mips, "
          f"peak RSS {stats['max_rss_mb']} MiB, "
          f"{stats['chunks']} chunks")
    return stats


def run_benchmark(demo_budget: int) -> dict:
    results = {"sweep": run_sweep(),
               "headline": run_headline(BUDGET * 10)}
    if demo_budget > 0:
        results["streaming_demo"] = run_streaming_demo(demo_budget)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")
    print(f"results -> {RESULTS_PATH}")
    return results


def test_trace_capture_benchmark():
    """Pytest entry: sweep + headline; demo only when opted in."""
    demo_budget = int(os.environ.get("BENCH_TRACE_DEMO", "0"))
    results = run_benchmark(demo_budget)
    assert results["sweep"]["geomean_speedup"] > 1.0, \
        "fast tracer lost to scalar on geomean"


if __name__ == "__main__":
    demo = int(os.environ.get("BENCH_TRACE_DEMO", str(10**8)))
    run_benchmark(demo)
