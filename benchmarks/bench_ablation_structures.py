"""Ablation — design choices DESIGN.md calls out.

* RAS depth: a 32-entry stack (the paper's choice) versus shallower and
  deeper stacks on the recursion-heavy ``go`` analog.
* Per-block PHTs: the paper's per-addr variant "now becomes a per-block
  variation" — sweeping the number of PHTs trades aliasing for capacity
  at fixed history length.
"""

from repro.core import (
    DualBlockEngine,
    EngineConfig,
    PenaltyKind,
    SingleBlockEngine,
)
from repro.experiments import (
    format_table,
    instruction_budget,
    run_suite,
)
from repro.icache import CacheGeometry
from repro.workloads import load_fetch_input


def run_ras_sweep(budget):
    geometry = CacheGeometry.normal(8)
    fi = load_fetch_input("go", geometry, budget)
    rows = []
    for size in (4, 8, 16, 32, 64):
        config = EngineConfig(geometry=geometry, ras_size=size)
        stats = SingleBlockEngine(config).run(fi)
        rows.append((size, stats.event_counts.get(PenaltyKind.RETURN, 0),
                     stats.ipc_f))
    return rows


def test_ras_depth(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(run_ras_sweep, args=(budget,), rounds=1,
                              iterations=1)
    record_table("ablation_ras", format_table(
        ["RAS entries", "return mispredicts", "IPC_f"],
        [[str(s), str(m), f"{i:.2f}"] for s, m, i in rows]))
    mispredicts = [m for _, m, _ in rows]
    benchmark.extra_info["mispredicts_by_size"] = mispredicts
    # Deeper stacks never mispredict more; 32 entries suffice for go.
    assert mispredicts == sorted(mispredicts, reverse=True)
    assert mispredicts[-2] == mispredicts[-1]  # 32 == 64: saturated


def run_pht_tables_sweep(budget):
    geometry = CacheGeometry.normal(8)
    rows = []
    for n_tables in (1, 2, 4, 8):
        config = EngineConfig(geometry=geometry, n_pht_tables=n_tables,
                              n_select_tables=8)
        agg_int = run_suite("int", config, budget,
                            engine_factory=DualBlockEngine)
        rows.append((n_tables, agg_int.ipc_f, agg_int.bep))
    return rows


def test_per_block_pht_tables(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(run_pht_tables_sweep, args=(budget,),
                              rounds=1, iterations=1)
    record_table("ablation_pht_tables", format_table(
        ["# PHTs", "int IPC_f", "int BEP"],
        [[str(n), f"{i:.2f}", f"{b:.3f}"] for n, i, b in rows]))
    ipcs = {n: i for n, i, _ in rows}
    benchmark.extra_info["ipc_by_tables"] = ipcs
    # More PHTs (more total capacity) should not hurt materially.
    assert ipcs[8] > 0.97 * ipcs[1]
