"""Runtime performance — cache states, parallel fan-out, engine kernels.

Unlike the figure/table benchmarks this one measures wall-clock, not
paper metrics: each scenario runs ``python -m repro <figure>`` in a
fresh subprocess so interpreter start-up, cache population, and worker
fan-out are all included.  Three scenario groups:

* **Cache states** (``fig6``): ``cold`` — empty ``REPRO_CACHE_DIR``,
  traces interpreted and segmented from scratch; ``warm`` — second run,
  everything loads from disk; ``parallel`` — warm cache plus
  ``REPRO_JOBS=auto``, measured only when the host actually has more
  than one CPU (on a single-CPU host it would just duplicate ``warm``);
  ``sharded`` — the same warm sweep through the work-stealing shard
  scheduler (``REPRO_SHARDS=2``), also multi-CPU only.  Every scenario
  row records its shard count, so flat and sharded rows with the same
  job count stay distinct.
* **Engine kernels** (``fig8`` + ``fig9``, warm cache): the same sweeps
  under ``REPRO_ENGINE=scalar`` (reference loops) and
  ``REPRO_ENGINE=fast`` (vectorized kernels).  Both modes print
  byte-identical figures — the comparison is pure wall-clock.
* **Kernel backends** (same warm sweeps): ``REPRO_ENGINE=fast`` under
  every ``REPRO_BACKEND`` available in this interpreter, so the
  compiled (and, where installed, numba) tiers get their own rows.

Results land in ``benchmarks/results/BENCH_perf_sweep.json`` as one
machine-readable record: per-figure wall-clock, engine mode, backend
and cache state for every scenario, plus the scalar/fast and
per-backend speedups.  The module runs standalone
(``python benchmarks/bench_perf_sweep.py``) or under pytest; either way
it fails if the fast engine regresses below scalar or the compiled
backend regresses below numpy.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_perf_sweep.json"
BUDGET = int(os.environ.get("REPRO_TRACE_LEN", "120000"))

#: Repeats per backend-comparison cell; the row records the minimum
#: (subprocess wall-clock on shared hosts is noisy, the minimum is the
#: stable statistic).  The scalar rows stay single-shot — at the
#: default budget the scalar fig8 sweep alone runs for minutes.
BACKEND_REPEATS = int(os.environ.get("BENCH_BACKEND_REPEATS", "3"))

#: The engine-kernel comparison sweeps (the paper's headline figures).
ENGINE_FIGURES = ("fig8", "fig9")


def _available_backends() -> list:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.core.backends import available_backends
        return list(available_backends())
    finally:
        sys.path.pop(0)


def _run_figure(figure: str, cache_dir: str, jobs: str = "1",
                engine: str = "fast", backend: str = "numpy",
                shards: str = "1") -> float:
    env = dict(os.environ,
               PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=cache_dir,
               REPRO_JOBS=jobs,
               REPRO_ENGINE=engine,
               REPRO_BACKEND=backend,
               REPRO_SHARDS=shards,
               REPRO_TRACE_LEN=str(BUDGET))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", figure],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(f"{figure} failed:\n{proc.stderr}")
    return elapsed


def _scenario(figure: str, engine: str, cache: str, jobs: int,
              seconds: float, backend: str = "numpy",
              shards: int = 1) -> dict:
    return {"figure": figure, "engine": engine, "backend": backend,
            "cache": cache, "jobs": jobs, "shards": shards,
            "seconds": round(seconds, 3)}


def measure() -> dict:
    n_cpus = os.cpu_count() or 1
    backends = _available_backends()
    scenarios = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold = _run_figure("fig6", cache_dir)
        warm = _run_figure("fig6", cache_dir)
        scenarios.append(_scenario("fig6", "fast", "cold", 1, cold))
        scenarios.append(_scenario("fig6", "fast", "warm", 1, warm))
        parallel = None
        sharded = None
        if n_cpus > 1:
            parallel = _run_figure("fig6", cache_dir, jobs="auto")
            scenarios.append(_scenario("fig6", "fast", "warm", n_cpus,
                                       parallel))
            sharded = _run_figure("fig6", cache_dir, jobs="2",
                                  shards="2")
            scenarios.append(_scenario("fig6", "fast", "warm", 2,
                                       sharded, shards=2))

        # Engine-kernel comparison: warm everything first (including the
        # compiled block arrays) so all modes measure pure engine time.
        for figure in ENGINE_FIGURES:
            _run_figure(figure, cache_dir)
        scalar_s = 0.0
        for figure in ENGINE_FIGURES:
            t = _run_figure(figure, cache_dir, engine="scalar")
            scenarios.append(_scenario(figure, "scalar", "warm", 1, t))
            scalar_s += t
        backend_s = {}
        for backend in backends:
            total = 0.0
            for figure in ENGINE_FIGURES:
                times = [_run_figure(figure, cache_dir, backend=backend)
                         for _ in range(BACKEND_REPEATS)]
                t = min(times)
                row = _scenario(figure, "fast", "warm", 1, t,
                                backend=backend)
                row["repeats"] = [round(x, 3) for x in times]
                scenarios.append(row)
                total += t
            backend_s[backend] = total
    fast_s = backend_s["numpy"]
    return {
        "budget": BUDGET,
        "cpus": n_cpus,
        "scenarios": scenarios,
        "cold_s": round(cold, 3),
        "warm_s": round(warm, 3),
        "parallel_s": None if parallel is None else round(parallel, 3),
        "parallel_skipped": (None if parallel is not None
                             else "single-CPU host"),
        "sharded_s": None if sharded is None else round(sharded, 3),
        "warm_speedup": round(cold / warm, 2),
        "parallel_speedup": (None if parallel is None
                             else round(cold / parallel, 2)),
        "sharded_speedup": (None if sharded is None
                            else round(cold / sharded, 2)),
        "engine_comparison": {
            "figures": list(ENGINE_FIGURES),
            "cache": "warm",
            "scalar_s": round(scalar_s, 3),
            "fast_s": round(fast_s, 3),
            "fast_speedup": round(scalar_s / fast_s, 2),
            "backends": {
                name: {
                    "seconds": round(total, 3),
                    "speedup_vs_scalar": round(scalar_s / total, 2),
                    "speedup_vs_numpy": round(fast_s / total, 2),
                }
                for name, total in backend_s.items()
            },
        },
    }


def _record(results: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


def _check(results: dict) -> None:
    # A warm cache must beat interpreting every trace from scratch, the
    # vectorized engine must never regress below the scalar loops, and
    # the compiled backend must never regress below plain numpy.
    assert results["warm_s"] < results["cold_s"]
    comparison = results["engine_comparison"]
    assert comparison["fast_s"] < comparison["scalar_s"], (
        f"fast engine regressed: {comparison['fast_s']}s vs scalar "
        f"{comparison['scalar_s']}s")
    backends = comparison["backends"]
    if "compiled" in backends:
        assert (backends["compiled"]["seconds"]
                < backends["numpy"]["seconds"]), (
            f"compiled backend regressed: "
            f"{backends['compiled']['seconds']}s vs numpy "
            f"{backends['numpy']['seconds']}s")
    seen = set()
    for scenario in results["scenarios"]:
        key = (scenario["figure"], scenario["engine"],
               scenario["backend"], scenario["cache"], scenario["jobs"],
               scenario["shards"])
        assert key not in seen, f"duplicate scenario row: {key}"
        seen.add(key)


def test_perf_sweep(benchmark, results_dir):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _record(results)
    benchmark.extra_info.update(results)
    _check(results)


if __name__ == "__main__":
    results = measure()
    _record(results)
    _check(results)
