"""Runtime performance — cache states, parallel fan-out, engine kernels.

Unlike the figure/table benchmarks this one measures wall-clock, not
paper metrics: each scenario runs ``python -m repro <figure>`` in a
fresh subprocess so interpreter start-up, cache population, and worker
fan-out are all included.  Two scenario groups:

* **Cache states** (``fig6``): ``cold`` — empty ``REPRO_CACHE_DIR``,
  traces interpreted and segmented from scratch; ``warm`` — second run,
  everything loads from disk; ``parallel`` — warm cache plus
  ``REPRO_JOBS=auto``.
* **Engine kernels** (``fig8`` + ``fig9``, warm cache): the same sweeps
  under ``REPRO_ENGINE=scalar`` (reference loops) and
  ``REPRO_ENGINE=fast`` (vectorized kernels).  Both modes print
  byte-identical figures — the comparison is pure wall-clock.

Results land in ``benchmarks/results/BENCH_perf_sweep.json`` as one
machine-readable record: per-figure wall-clock, engine mode and cache
state for every scenario, plus the scalar/fast speedup.  The module
runs standalone (``python benchmarks/bench_perf_sweep.py``) or under
pytest; either way it fails if the fast engine regresses below scalar.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_perf_sweep.json"
BUDGET = int(os.environ.get("REPRO_TRACE_LEN", "120000"))

#: The engine-kernel comparison sweeps (the paper's headline figures).
ENGINE_FIGURES = ("fig8", "fig9")


def _run_figure(figure: str, cache_dir: str, jobs: str = "1",
                engine: str = "fast") -> float:
    env = dict(os.environ,
               PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=cache_dir,
               REPRO_JOBS=jobs,
               REPRO_ENGINE=engine,
               REPRO_TRACE_LEN=str(BUDGET))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", figure],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(f"{figure} failed:\n{proc.stderr}")
    return elapsed


def _scenario(figure: str, engine: str, cache: str, jobs: int,
              seconds: float) -> dict:
    return {"figure": figure, "engine": engine, "cache": cache,
            "jobs": jobs, "seconds": round(seconds, 3)}


def measure() -> dict:
    scenarios = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold = _run_figure("fig6", cache_dir)
        warm = _run_figure("fig6", cache_dir)
        parallel = _run_figure("fig6", cache_dir, jobs="auto")
        scenarios.append(_scenario("fig6", "fast", "cold", 1, cold))
        scenarios.append(_scenario("fig6", "fast", "warm", 1, warm))
        scenarios.append(_scenario("fig6", "fast", "warm",
                                   os.cpu_count() or 1, parallel))

        # Engine-kernel comparison: warm everything first (including the
        # compiled block arrays) so both modes measure pure engine time.
        for figure in ENGINE_FIGURES:
            _run_figure(figure, cache_dir)
        scalar_s = fast_s = 0.0
        for figure in ENGINE_FIGURES:
            t = _run_figure(figure, cache_dir, engine="scalar")
            scenarios.append(_scenario(figure, "scalar", "warm", 1, t))
            scalar_s += t
        for figure in ENGINE_FIGURES:
            t = _run_figure(figure, cache_dir, engine="fast")
            scenarios.append(_scenario(figure, "fast", "warm", 1, t))
            fast_s += t
    return {
        "budget": BUDGET,
        "jobs_parallel": os.cpu_count() or 1,
        "scenarios": scenarios,
        "cold_s": round(cold, 3),
        "warm_s": round(warm, 3),
        "parallel_s": round(parallel, 3),
        "warm_speedup": round(cold / warm, 2),
        "parallel_speedup": round(cold / parallel, 2),
        "engine_comparison": {
            "figures": list(ENGINE_FIGURES),
            "cache": "warm",
            "scalar_s": round(scalar_s, 3),
            "fast_s": round(fast_s, 3),
            "fast_speedup": round(scalar_s / fast_s, 2),
        },
    }


def _record(results: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


def _check(results: dict) -> None:
    # A warm cache must beat interpreting every trace from scratch, and
    # the vectorized engine must never regress below the scalar loops.
    assert results["warm_s"] < results["cold_s"]
    comparison = results["engine_comparison"]
    assert comparison["fast_s"] < comparison["scalar_s"], (
        f"fast engine regressed: {comparison['fast_s']}s vs scalar "
        f"{comparison['scalar_s']}s")


def test_perf_sweep(benchmark, results_dir):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _record(results)
    benchmark.extra_info.update(results)
    _check(results)


if __name__ == "__main__":
    results = measure()
    _record(results)
    _check(results)
