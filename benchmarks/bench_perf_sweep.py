"""Runtime performance — cold vs warm cache, serial vs parallel sweeps.

Unlike the figure/table benchmarks this one measures wall-clock, not
paper metrics: each scenario runs ``python -m repro fig6`` in a fresh
subprocess so interpreter start-up, cache population, and worker fan-out
are all included.  Scenarios:

* ``cold``  — empty ``REPRO_CACHE_DIR``: traces are interpreted and
  segmented from scratch, then persisted.
* ``warm``  — same cache dir, second run: traces/blocks load from disk.
* ``parallel`` — warm cache plus ``REPRO_JOBS=auto`` fan-out.

Results land in ``benchmarks/results/perf_sweep.json``.  The module runs
standalone (``python benchmarks/bench_perf_sweep.py``) or under pytest.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = Path(__file__).parent / "results" / "perf_sweep.json"
BUDGET = int(os.environ.get("REPRO_TRACE_LEN", "120000"))


def _run_fig6(cache_dir: str, jobs: str) -> float:
    env = dict(os.environ,
               PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=cache_dir,
               REPRO_JOBS=jobs,
               REPRO_TRACE_LEN=str(BUDGET))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fig6"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(f"fig6 failed:\n{proc.stderr}")
    return elapsed


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold = _run_fig6(cache_dir, jobs="1")
        warm = _run_fig6(cache_dir, jobs="1")
        parallel = _run_fig6(cache_dir, jobs="auto")
    return {
        "budget": BUDGET,
        "jobs_parallel": os.cpu_count() or 1,
        "cold_s": round(cold, 3),
        "warm_s": round(warm, 3),
        "parallel_s": round(parallel, 3),
        "warm_speedup": round(cold / warm, 2),
        "parallel_speedup": round(cold / parallel, 2),
    }


def _record(results: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


def test_perf_sweep(benchmark, results_dir):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _record(results)
    benchmark.extra_info.update(results)
    # A warm cache must beat interpreting every trace from scratch.
    assert results["warm_s"] < results["cold_s"]


if __name__ == "__main__":
    _record(measure())
