"""Table 7 / Section 5 — hardware cost estimates.

Paper result: single block 52 Kbits, dual-block single-select 80 Kbits,
dual-block double-select 72 Kbits; cost grows linearly in the number of
predicted blocks (unlike the branch-address-cache's exponential growth).
"""

from repro.experiments import (
    format_table7,
    run_multi_block_extrapolation,
    run_table7,
)
from repro.predictors import BACCost


def test_table7_cost_estimates(benchmark, record_table):
    breakdowns = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    extrapolation = run_multi_block_extrapolation(max_blocks=4)
    bac = "\n".join(
        f"BAC {k} branches/cycle: {BACCost.for_branches(k).pht_lookups} "
        f"PHT lookups, {BACCost.for_branches(k).bac_entry_bits} entry bits"
        for k in (1, 2, 3, 4))
    record_table(
        "table7_cost",
        format_table7(breakdowns) + "\n\n" + format_table7(extrapolation)
        + "\n\n" + bac)
    totals = [round(b.total_kbits) for b in breakdowns]
    benchmark.extra_info["totals_kbits"] = totals
    assert totals == [52, 80, 72]
    # Linear growth per extra predicted block (Section 5).
    steps = [b.total_bits for b in extrapolation]
    increments = [b - a for a, b in zip(steps, steps[1:])]
    assert len(set(increments)) == 1
