"""Figure 7 — separate BIT table size versus BEP share and IPC_f.

Paper result: small BIT tables are disastrous; the BEP share of stale BIT
information only drops below 5% near the top of the sweep.  Sizes are
footprint-scaled (see repro.experiments.fig7).
"""

from repro.experiments import format_fig7, instruction_budget, run_fig7


def test_fig7_bit_table_sweep(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_fig7, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("fig7_bit_sweep", format_fig7(rows))
    for suite in ("int", "fp"):
        suite_rows = [r for r in rows if r.suite == suite]
        shares = [r.bit_share_of_bep for r in suite_rows]
        ipcs = [r.ipc_f for r in suite_rows]
        benchmark.extra_info[f"{suite}_share_smallest"] = shares[0]
        benchmark.extra_info[f"{suite}_share_largest"] = shares[-1]
        # Shape: share falls monotonically, fetch rate rises.
        assert shares[0] > 0.3
        assert shares[-1] < 0.05
        assert ipcs[-1] > ipcs[0]
