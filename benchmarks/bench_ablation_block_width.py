"""Ablation — block width (Section 4's closing remark).

"Of course, a simpler configuration to satisfy issue unit constraints in
such a situation would be to use two blocks of four instructions each.
This would still yield an excellent fetching rate."

Sweeps the block width B over one- and two-block fetching.  The claim to
check: 2 x B=4 lands between 1 x B=8 and 2 x B=8 — a cheap way to feed an
8-issue machine.
"""

from repro.core import DualBlockEngine, EngineConfig, SingleBlockEngine
from repro.experiments import (
    format_table,
    instruction_budget,
    run_suite,
)
from repro.icache import CacheGeometry


def run_width_sweep(budget):
    rows = []
    for width in (4, 8, 16):
        geometry = CacheGeometry.normal(width)
        config = EngineConfig(geometry=geometry, n_select_tables=8)
        for blocks, factory in ((1, SingleBlockEngine),
                                (2, DualBlockEngine)):
            per_suite = {
                suite: run_suite(suite, config, budget,
                                 engine_factory=factory)
                for suite in ("int", "fp")
            }
            rows.append((width, blocks, per_suite["int"], per_suite["fp"]))
    return rows


def test_block_width(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(run_width_sweep, args=(budget,), rounds=1,
                              iterations=1)
    record_table("ablation_block_width", format_table(
        ["B", "blocks", "int IPC_f", "int IPB", "fp IPC_f", "fp IPB"],
        [[str(w), str(nb), f"{i.ipc_f:.2f}", f"{i.ipb:.2f}",
          f"{f.ipc_f:.2f}", f"{f.ipb:.2f}"]
         for w, nb, i, f in rows]))

    by = {(w, nb): (i, f) for w, nb, i, f in rows}
    benchmark.extra_info["2x4_fp"] = by[(4, 2)][1].ipc_f
    benchmark.extra_info["2x8_fp"] = by[(8, 2)][1].ipc_f
    for suite_idx in (0, 1):
        one_8 = by[(8, 1)][suite_idx].ipc_f
        two_4 = by[(4, 2)][suite_idx].ipc_f
        two_8 = by[(8, 2)][suite_idx].ipc_f
        # "Two blocks of four ... still an excellent fetching rate":
        # above single-block-of-8, below dual-block-of-8.
        assert two_4 > one_8 * 0.95
        assert two_4 < two_8
        # Wider blocks never reduce IPB.
        assert by[(16, 2)][suite_idx].ipb >= by[(4, 2)][suite_idx].ipb
