"""Figure 9 — per-program BEP stacked by misprediction category.

Paper result (two-block single-selection, self-aligned cache, 8 STs,
10-bit GHR): conditional mispredictions are the largest BEP contribution,
misselection the second; some fp programs do exceedingly well while some
integer programs suffer from poor conditional prediction.
"""

from repro.core import PenaltyKind
from repro.experiments import format_fig9, instruction_budget, run_fig9


def test_fig9_bep_breakdown(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_fig9, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("fig9_bep_breakdown", format_fig9(rows))

    assert len(rows) == 18
    totals = {}
    for row in rows:
        for kind, value in row.components.items():
            totals[kind] = totals.get(kind, 0.0) + value
    benchmark.extra_info["total_cond"] = totals[PenaltyKind.COND]
    benchmark.extra_info["total_misselect"] = totals[PenaltyKind.MISSELECT]
    # Shape: conditional mispredictions dominate; misselect is visible.
    assert totals[PenaltyKind.COND] == max(totals.values())
    assert totals[PenaltyKind.MISSELECT] > 0
    # FP programs average a lower BEP than integer programs.
    fp_mean = sum(r.bep for r in rows if r.suite == "fp") / 10
    int_mean = sum(r.bep for r in rows if r.suite == "int") / 8
    assert fp_mean < int_mean
