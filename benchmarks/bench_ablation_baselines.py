"""Ablation — the paper's two related-work baselines, made executable.

1. **Branch address cache** (Yeh, Marr & Patt [11]): matches the scalar
   two-level accuracy but needs ``2^k - 1`` PHT lookups and exponential
   BAC entries for ``k`` branches per cycle, versus the blocked PHT's
   single lookup (Section 2's motivation).
2. **Two-block-ahead** (Seznec et al. [8]): accuracy comparable to the
   select-table scheme without misselects, but with the serialized
   tag-match dependency the paper criticises — one bubble per pair erases
   the dual-block advantage.
"""

from repro.core import (
    DualBlockEngine,
    EngineConfig,
    TwoBlockAheadEngine,
)
from repro.experiments import (
    format_table,
    instruction_budget,
    run_suite,
)
from repro.icache import CacheGeometry
from repro.predictors import (
    BACCost,
    BlockedPHT,
    ScalarPHT,
    blocked_pht_lookups,
    evaluate_blocked_direction,
    evaluate_scalar_direction,
)
from repro.workloads import SPECINT95, load_fetch_input, load_trace


def run_bac_comparison(budget):
    """Accuracy parity + cost divergence, blocked PHT vs BAC."""
    geometry = CacheGeometry.normal(8)
    blocked_miss = blocked_cond = scalar_miss = scalar_cond = 0
    for name in SPECINT95:
        fi = load_fetch_input(name, geometry, budget)
        b = evaluate_blocked_direction(fi.blocks, BlockedPHT(10, 8))
        blocked_miss += b.mispredicts
        blocked_cond += b.n_cond
        s = evaluate_scalar_direction(load_trace(name, budget),
                                      ScalarPHT(10, 8))
        scalar_miss += s.mispredicts
        scalar_cond += s.n_cond
    return (blocked_miss / blocked_cond, scalar_miss / scalar_cond)


def test_bac_vs_blocked(benchmark, record_table):
    budget = instruction_budget()
    blocked_rate, scalar_rate = benchmark.pedantic(
        run_bac_comparison, args=(budget,), rounds=1, iterations=1)
    rows = []
    for k in (1, 2, 3, 4):
        cost = BACCost.for_branches(k)
        rows.append([str(k), str(cost.pht_lookups),
                     str(blocked_pht_lookups(k)),
                     str(cost.bac_addresses_per_entry)])
    text = format_table(
        ["branches/cycle", "BAC PHT lookups", "blocked lookups",
         "BAC targets/entry"], rows)
    text += (f"\n\nSPECint95 misprediction: blocked "
             f"{100 * blocked_rate:.2f}% vs BAC/scalar "
             f"{100 * scalar_rate:.2f}%")
    record_table("ablation_bac", text)
    benchmark.extra_info["blocked_rate"] = blocked_rate
    benchmark.extra_info["scalar_rate"] = scalar_rate
    # The paper's claim: same accuracy, exponential vs constant lookups.
    assert abs(blocked_rate - scalar_rate) < 0.01
    assert BACCost.for_branches(4).pht_lookups == 15
    assert blocked_pht_lookups(4) == 1


def run_two_ahead_comparison(budget):
    geometry = CacheGeometry.normal(8)
    config = EngineConfig(geometry=geometry, n_select_tables=8)
    results = {}
    for label, factory in (
        ("select-table", lambda cfg: DualBlockEngine(cfg)),
        ("2-ahead", lambda cfg: TwoBlockAheadEngine(cfg)),
        ("2-ahead+serial", lambda cfg: TwoBlockAheadEngine(
            cfg, serialization_penalty=1)),
    ):
        results[label] = {
            suite: run_suite(suite, config, budget, engine_factory=factory)
            for suite in ("int", "fp")
        }
    return results


def test_two_block_ahead_vs_select_table(benchmark, record_table):
    budget = instruction_budget()
    results = benchmark.pedantic(run_two_ahead_comparison, args=(budget,),
                                 rounds=1, iterations=1)
    rows = [[label, f"{by['int'].ipc_f:.2f}", f"{by['fp'].ipc_f:.2f}"]
            for label, by in results.items()]
    record_table("ablation_two_ahead", format_table(
        ["scheme", "int IPC_f", "fp IPC_f"], rows))
    for suite in ("int", "fp"):
        st = results["select-table"][suite].ipc_f
        ahead = results["2-ahead"][suite].ipc_f
        serial = results["2-ahead+serial"][suite].ipc_f
        benchmark.extra_info[f"{suite}_select_table"] = st
        benchmark.extra_info[f"{suite}_two_ahead"] = ahead
        # Accuracy-comparable when timing is free...
        assert ahead > 0.85 * st
        # ...but the serialized dependency erases the advantage.
        assert serial < 0.85 * st
