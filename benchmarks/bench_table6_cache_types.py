"""Table 6 — IPB and IPC_f for normal / extended / self-aligned caches.

Paper result: self-aligned > extended > normal; two-block fetching beats
single-block by ~40% (int) to ~70% (fp); the self-aligned two-block
configuration averages over 8 IPC_f on the whole suite.
"""

from repro.experiments import (
    format_table6,
    instruction_budget,
    run_table6,
)


def test_table6_cache_types(benchmark, record_table):
    budget = instruction_budget()
    rows = benchmark.pedantic(
        run_table6, kwargs={"budget": budget}, rounds=1, iterations=1)
    record_table("table6_cache_types", format_table6(rows))

    def get(cache, suite):
        for r in rows:
            if (r.cache_type, r.suite) == (cache, suite):
                return r
        raise AssertionError("missing row")

    for suite in ("int", "fp"):
        normal = get("normal", suite)
        extend = get("extend", suite)
        align = get("align", suite)
        benchmark.extra_info[f"{suite}_align_2blk"] = align.ipc_f_two_block
        # Shape: align >= extend >= normal on IPB and two-block IPC_f.
        assert align.ipb >= extend.ipb >= normal.ipb
        assert align.ipc_f_two_block >= extend.ipc_f_two_block * 0.98
        assert align.ipc_f_two_block > normal.ipc_f_two_block
        # Two blocks always beat one.
        for row in (normal, extend, align):
            assert row.ipc_f_two_block > row.ipc_f_one_block

    # FP gains more from dual-block fetching than int (paper: 70% vs 40%).
    fp_gain = get("align", "fp").ipc_f_two_block / \
        get("align", "fp").ipc_f_one_block
    int_gain = get("align", "int").ipc_f_two_block / \
        get("align", "int").ipc_f_one_block
    assert fp_gain > int_gain
