"""Dynamic instruction classification shared by the tracer and predictors.

The fetch-prediction hardware in the paper distinguishes instructions by how
they can redirect the PC (Table 1).  :class:`InstrKind` is that taxonomy; it
is used both for the *static* per-address code map (what the BIT table would
be built from) and for the *dynamic* trace records.
"""

from __future__ import annotations

import enum

from .opcodes import Op


class InstrKind(enum.IntEnum):
    """Control-flow classification of one instruction."""

    NONBRANCH = 0
    COND = 1      #: conditional branch
    JUMP = 2      #: direct unconditional jump
    CALL = 3      #: direct or indirect call (pushes a return address)
    RETURN = 4    #: return through the link register
    INDIRECT = 5  #: indirect jump that is not a call or return
    HALT = 6      #: end of program (terminates the trace)


#: Kinds that transfer control when "taken".  Conditional branches transfer
#: only when taken; the others always do.
TRANSFER_KINDS = frozenset(
    {InstrKind.COND, InstrKind.JUMP, InstrKind.CALL,
     InstrKind.RETURN, InstrKind.INDIRECT}
)

#: Kinds whose target comes from a register (unknown at assembly time).
INDIRECT_KINDS = frozenset({InstrKind.RETURN, InstrKind.INDIRECT})


def classify_op(op: Op) -> InstrKind:
    """Map an opcode to its :class:`InstrKind`.

    ``JALR`` is classified as a call (it writes the link register), ``RET``
    as a return, ``JR`` as a generic indirect jump.
    """
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT):
        return InstrKind.COND
    if op is Op.J:
        return InstrKind.JUMP
    if op in (Op.JAL, Op.JALR):
        return InstrKind.CALL
    if op is Op.RET:
        return InstrKind.RETURN
    if op is Op.JR:
        return InstrKind.INDIRECT
    if op is Op.HALT:
        return InstrKind.HALT
    return InstrKind.NONBRANCH
