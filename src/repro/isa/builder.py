"""Structured-programming layer over the :class:`~repro.isa.assembler.Assembler`.

Workload programs (the SPEC95 analogs) are written against this DSL: it
provides functions with call/return linkage, ``while``/``if``/``for``
constructs and a small stack, all of which lower to plain ISA instructions.
Nothing here is visible to the predictors — they only ever see the resulting
dynamic instruction stream.

Register conventions:

* ``r0``  — hardwired zero.
* ``r1``  — ``ra``, link register (written by ``jal``/``jalr``).
* ``r2``  — ``sp``, stack pointer (grows downward in data memory).
* ``r3``–``r28`` — free for workload use.
* ``r29``–``r31`` — builder scratch; clobbered by DSL constructs.

Example::

    b = ProgramBuilder(name="demo", data_size=1 << 14)
    with b.function("main"):
        b.asm.li("r4", 0)
        with b.for_range("r5", 0, 100):
            b.asm.add("r4", "r4", "r5")
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .assembler import Assembler, AssemblyError
from .opcodes import CONDITION_TO_BRANCH, INVERTED_BRANCH
from .program import Program

#: Builder scratch registers (documented as clobbered by DSL constructs).
SCRATCH0 = 29
SCRATCH1 = 30
SCRATCH2 = 31


class BuilderError(Exception):
    """Raised when DSL constructs are misused (e.g. stray ``otherwise``)."""


class _IfElse:
    """Handle returned by :meth:`ProgramBuilder.if_else`."""

    def __init__(self, builder: "ProgramBuilder", else_label: str,
                 end_label: str) -> None:
        self._builder = builder
        self._else_label = else_label
        self._end_label = end_label
        self._taken = False

    def otherwise(self) -> None:
        """Switch from the then-body to the else-body."""
        if self._taken:
            raise BuilderError("otherwise() called twice")
        self._taken = True
        asm = self._builder.asm
        asm.j(self._end_label)
        asm.place(self._else_label)

    def _finish(self) -> None:
        asm = self._builder.asm
        if not self._taken:
            asm.place(self._else_label)
            # No else-body: end label coincides with else label.
            self._builder._alias_label(self._end_label, asm.here)
        else:
            asm.place(self._end_label)


class ProgramBuilder:
    """Builds a complete program with a ``main`` function entry point."""

    def __init__(self, name: str = "", data_size: int = 1 << 14,
                 stack_words: int = 1 << 10) -> None:
        if stack_words >= data_size:
            raise BuilderError("stack does not fit in data memory")
        self.asm = Assembler()
        self.name = name
        self.data_size = data_size
        self._stack_top = data_size  # sp pre-decrements, so top == size
        self._built: Optional[Program] = None
        self._in_function = False
        # Startup stub: set up sp, call main, halt.
        self.asm.label("_start")
        self.asm.entry("_start")
        self.asm.li("sp", self._stack_top)
        self.asm.jal("main")
        self.asm.halt()

    # ------------------------------------------------------------------
    # Label plumbing
    # ------------------------------------------------------------------

    def _alias_label(self, name: str, addr: int) -> None:
        """Point a reserved label at ``addr`` (used by if/else lowering)."""
        if self.asm._labels.get(name, None) != -1:
            raise AssemblyError(f"label not reserved: {name!r}")
        self.asm._labels[name] = addr

    # ------------------------------------------------------------------
    # Functions and calls
    # ------------------------------------------------------------------

    @contextmanager
    def function(self, name: str, leaf: bool = False) -> Iterator[None]:
        """Define function ``name``.

        Non-leaf functions save/restore ``ra`` on the stack so nested calls
        work.  The body must fall through to the epilogue (use
        :meth:`return_` for early exits).
        """
        if self._in_function:
            raise BuilderError("nested function definitions are not allowed")
        self._in_function = True
        self.asm.label(name)
        self._epilogue_label = self.asm.unique_label(f"{name}__epilogue")
        self._leaf = leaf
        if not leaf:
            self.push("ra")
        try:
            yield
        finally:
            self.asm.place(self._epilogue_label)
            if not leaf:
                self.pop("ra")
            self.asm.ret()
            self._in_function = False

    def return_(self) -> None:
        """Early return: jump to the function epilogue."""
        if not self._in_function:
            raise BuilderError("return_ outside a function")
        self.asm.j(self._epilogue_label)

    def call(self, name: str) -> None:
        """Direct call to function ``name``."""
        self.asm.jal(name)

    def call_indirect(self, reg) -> None:
        """Indirect call through a register holding a function address."""
        self.asm.jalr(reg)

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------

    def push(self, reg) -> None:
        """Push ``reg`` onto the data-memory stack."""
        self.asm.addi("sp", "sp", -1)
        self.asm.st(reg, "sp", 0)

    def pop(self, reg) -> None:
        """Pop the top of stack into ``reg``."""
        self.asm.ld(reg, "sp", 0)
        self.asm.addi("sp", "sp", 1)

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------

    def _cond_branch(self, cond: str, rs1, rs2, target: str,
                     invert: bool) -> None:
        try:
            op = CONDITION_TO_BRANCH[cond]
        except KeyError:
            raise BuilderError(f"unknown condition {cond!r}") from None
        if invert:
            op = INVERTED_BRANCH[op]
        self.asm.branch(op, rs1, rs2, target)

    @contextmanager
    def while_(self, cond: str, rs1, rs2) -> Iterator[None]:
        """``while rs1 <cond> rs2:`` loop."""
        top = self.asm.unique_label("while_top")
        end = self.asm.unique_label("while_end")
        self.asm.place(top)
        self._cond_branch(cond, rs1, rs2, end, invert=True)
        yield
        self.asm.j(top)
        self.asm.place(end)

    @contextmanager
    def do_while(self, cond: str, rs1, rs2) -> Iterator[None]:
        """Body executes at least once; loops while the condition holds."""
        top = self.asm.unique_label("dowhile_top")
        self.asm.place(top)
        yield
        self._cond_branch(cond, rs1, rs2, top, invert=False)

    @contextmanager
    def if_(self, cond: str, rs1, rs2) -> Iterator[None]:
        """Execute the body when ``rs1 <cond> rs2`` holds."""
        end = self.asm.unique_label("if_end")
        self._cond_branch(cond, rs1, rs2, end, invert=True)
        yield
        self.asm.place(end)

    @contextmanager
    def if_else(self, cond: str, rs1, rs2) -> Iterator[_IfElse]:
        """``if/else``; call ``.otherwise()`` on the yielded handle."""
        else_label = self.asm.unique_label("else")
        end_label = self.asm.unique_label("ifelse_end")
        self._cond_branch(cond, rs1, rs2, else_label, invert=True)
        handle = _IfElse(self, else_label, end_label)
        yield handle
        handle._finish()

    @contextmanager
    def for_range(self, counter, start: int, stop: int,
                  step: int = 1) -> Iterator[None]:
        """Counted loop: ``for counter in range(start, stop, step)``.

        Lowered in rotated (do-while) form, the way optimising compilers
        emit counted loops: an entry guard plus a *taken* backward
        conditional branch per iteration.  This matters for trace realism —
        loop back-edges dominate the taken-conditional population of real
        programs.  The bound lives in scratch register ``r31`` but is
        reloaded every iteration, so bodies and nested loops may clobber it.
        """
        if step == 0:
            raise BuilderError("zero step")
        self.asm.li(counter, start)
        top = self.asm.unique_label("for_top")
        end = self.asm.unique_label("for_end")
        self.asm.li(SCRATCH2, stop)
        if step > 0:
            self.asm.bge(counter, SCRATCH2, end)  # entry guard
        else:
            self.asm.ble(counter, SCRATCH2, end)
        self.asm.place(top)
        yield
        self.asm.addi(counter, counter, step)
        self.asm.li(SCRATCH2, stop)
        if step > 0:
            self.asm.blt(counter, SCRATCH2, top)  # taken back-edge
        else:
            self.asm.bgt(counter, SCRATCH2, top)
        self.asm.place(end)

    @contextmanager
    def for_reg(self, counter, start: int, stop_reg) -> Iterator[None]:
        """Counted loop with a register bound (do-while form).

        The body must not clobber ``stop_reg``.
        """
        self.asm.li(counter, start)
        top = self.asm.unique_label("forreg_top")
        end = self.asm.unique_label("forreg_end")
        self.asm.bge(counter, stop_reg, end)  # entry guard
        self.asm.place(top)
        yield
        self.asm.addi(counter, counter, 1)
        self.asm.blt(counter, stop_reg, top)  # taken back-edge
        self.asm.place(end)

    # ------------------------------------------------------------------
    # Small code-generation helpers used across workloads
    # ------------------------------------------------------------------

    def lcg_step(self, state_reg, tmp=SCRATCH0) -> None:
        """Advance a 31-bit linear-congruential PRNG held in ``state_reg``.

        ``state = (state * 1103515245 + 12345) mod 2**31``.  Deterministic
        pseudo-random data keeps the workloads reproducible without any
        external input files.
        """
        self.asm.muli(state_reg, state_reg, 1103515245)
        self.asm.addi(state_reg, state_reg, 12345)
        self.asm.li(tmp, (1 << 31) - 1)
        self.asm.and_(state_reg, state_reg, tmp)

    def build(self) -> Program:
        """Assemble and return the finished program."""
        if not self.asm.has_label("main"):
            raise BuilderError("program must define a 'main' function")
        if self._built is None:
            self._built = self.asm.assemble(data_size=self.data_size,
                                            name=self.name)
        return self._built
