"""Tiny load/store RISC ISA: opcodes, assembler, builder DSL, programs."""

from .assembler import Assembler, AssemblyError
from .builder import BuilderError, ProgramBuilder
from .instructions import Instruction
from .kinds import InstrKind, classify_op
from .opcodes import Op, parse_register
from .program import Program, StaticCode

__all__ = [
    "Assembler",
    "AssemblyError",
    "BuilderError",
    "Instruction",
    "InstrKind",
    "Op",
    "Program",
    "ProgramBuilder",
    "StaticCode",
    "classify_op",
    "parse_register",
]
