"""Opcode definitions for the tiny load/store RISC ISA.

The reproduction needs a *real* instruction stream — PCs, branch types,
directions and targets that arise from executing actual programs — because the
paper's fetch mechanisms only observe dynamic control flow.  This module
defines the instruction set executed by :mod:`repro.cpu.machine`.

The ISA is a 32-register, word-addressed load/store machine.  One instruction
occupies one address, so instruction-cache lines and fetch blocks map directly
onto PC arithmetic, exactly like the paper's word-granularity SPARC setup.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Machine opcodes.

    Field conventions (see :class:`repro.isa.instructions.Instruction`):

    * ALU register ops use ``rd, rs1, rs2``.
    * ALU immediate ops use ``rd, rs1, imm``.
    * ``LI`` uses ``rd, imm``.
    * ``LD`` is ``rd <- mem[rs1 + imm]``; ``ST`` is ``mem[rs1 + imm] <- rs2``.
    * Conditional branches compare ``rs1`` with ``rs2`` and jump to ``imm``
      (an absolute instruction address after assembly).
    * ``J``/``JAL`` jump to ``imm``; ``JR``/``JALR`` jump to ``reg[rs1]``.
    * ``RET`` is an indirect jump through the link register that the tracer
      classifies as a *return* (the ISA-level distinction the BIT table needs).
    """

    # ALU, register-register
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    MOD = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SLT = enum.auto()
    SEQ = enum.auto()

    # ALU, register-immediate
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SLTI = enum.auto()
    MULI = enum.auto()
    LI = enum.auto()

    # Memory
    LD = enum.auto()
    ST = enum.auto()

    # Control transfer
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLE = enum.auto()
    BGT = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    JALR = enum.auto()
    RET = enum.auto()

    # Misc
    NOP = enum.auto()
    HALT = enum.auto()


#: Conditional branch opcodes (PC-relative in source, absolute once assembled).
COND_BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT}
)

#: Direct unconditional jumps (target known at assembly time).
DIRECT_JUMP_OPS = frozenset({Op.J, Op.JAL})

#: Indirect transfers (target comes from a register at run time).
INDIRECT_OPS = frozenset({Op.JR, Op.JALR, Op.RET})

#: Every opcode that can redirect the PC.
CONTROL_OPS = COND_BRANCH_OPS | DIRECT_JUMP_OPS | INDIRECT_OPS

#: Opcodes that record a return address (calls, for RAS purposes).
CALL_OPS = frozenset({Op.JAL, Op.JALR})

#: Inverse of each conditional branch, used by the builder DSL to branch
#: around a body when the source-level condition is false.
INVERTED_BRANCH = {
    Op.BEQ: Op.BNE,
    Op.BNE: Op.BEQ,
    Op.BLT: Op.BGE,
    Op.BGE: Op.BLT,
    Op.BLE: Op.BGT,
    Op.BGT: Op.BLE,
}

#: Map from the builder's condition mnemonics to branch opcodes.
CONDITION_TO_BRANCH = {
    "eq": Op.BEQ,
    "ne": Op.BNE,
    "lt": Op.BLT,
    "ge": Op.BGE,
    "le": Op.BLE,
    "gt": Op.BGT,
}

NUM_REGISTERS = 32

#: Register aliases.  ``r0`` is hardwired to zero; ``ra`` receives return
#: addresses from ``JAL``/``JALR``; ``sp`` is the builder's stack pointer.
REG_ALIASES = {"zero": 0, "ra": 1, "sp": 2}


def parse_register(name) -> int:
    """Return the register number for ``name``.

    Accepts an integer, an ``rN`` string, or an alias (``zero``, ``ra``,
    ``sp``).  Raises :class:`ValueError` for anything out of range.
    """
    if isinstance(name, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"invalid register: {name!r}")
    if isinstance(name, int):
        num = name
    elif isinstance(name, str):
        if name in REG_ALIASES:
            num = REG_ALIASES[name]
        elif name.startswith("r") and name[1:].isdigit():
            num = int(name[1:])
        else:
            raise ValueError(f"invalid register: {name!r}")
    else:
        raise ValueError(f"invalid register: {name!r}")
    if not 0 <= num < NUM_REGISTERS:
        raise ValueError(f"register out of range: {name!r}")
    return num
