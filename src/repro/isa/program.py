"""Assembled program container and its static code map.

A :class:`Program` owns the instruction list plus the *static code map* — the
per-address classification and direct-target arrays that the paper's Block
Instruction Type (BIT) machinery is built from.  The fetch engines read the
static map (never the trace) to model BIT information, because BIT describes
what is physically in a cache line, including branches beyond the block exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .instructions import Instruction
from .kinds import InstrKind, classify_op


@dataclass
class StaticCode:
    """Per-address static classification of a program's text segment.

    Attributes:
        kind: ``uint8`` array, ``kind[pc]`` is the :class:`InstrKind` value.
        direct_target: ``int64`` array; absolute target for direct branches
            and jumps, ``-1`` where the target is indirect or absent.
    """

    kind: np.ndarray
    direct_target: np.ndarray

    def __len__(self) -> int:
        return len(self.kind)

    def __post_init__(self) -> None:
        if len(self.kind) != len(self.direct_target):
            raise ValueError("kind and direct_target lengths differ")


@dataclass
class Program:
    """An assembled program ready for execution.

    Attributes:
        instructions: the text segment; address ``i`` holds
            ``instructions[i]``.
        entry: entry-point instruction address.
        data_size: words of data memory the program expects.
        labels: label name -> instruction address (for debugging/tests).
        name: optional human-readable name.
    """

    instructions: List[Instruction]
    entry: int = 0
    data_size: int = 4096
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def static_code(self) -> StaticCode:
        """Build the static code map used by BIT modelling."""
        n = len(self.instructions)
        kind = np.zeros(n, dtype=np.uint8)
        target = np.full(n, -1, dtype=np.int64)
        for pc, inst in enumerate(self.instructions):
            k = classify_op(inst.op)
            kind[pc] = int(k)
            if k in (InstrKind.COND, InstrKind.JUMP) or (
                k is InstrKind.CALL and inst.is_direct_jump
            ):
                target[pc] = int(inst.imm)
        return StaticCode(kind=kind, direct_target=target)

    def disassemble(self, start: int = 0, count: int = None) -> str:
        """Return a printable listing (address, label, instruction)."""
        if count is None:
            count = len(self.instructions) - start
        addr_to_label = {addr: name for name, addr in self.labels.items()}
        lines = []
        for pc in range(start, min(start + count, len(self.instructions))):
            label = addr_to_label.get(pc)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {pc:6d}  {self.instructions[pc]}")
        return "\n".join(lines)
