"""Instruction representation for the tiny RISC ISA."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .opcodes import (
    COND_BRANCH_OPS,
    CONTROL_OPS,
    DIRECT_JUMP_OPS,
    INDIRECT_OPS,
    Op,
)

#: A branch target may be a symbolic label before assembly or an absolute
#: instruction address afterwards.
Target = Union[str, int]


@dataclass(frozen=True)
class Instruction:
    """A single machine instruction.

    Fields that an opcode does not use are left at their defaults; the
    assembler validates usage.  After assembly, ``imm`` holds the absolute
    target address for control-transfer opcodes with direct targets.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[Target] = None

    @property
    def is_control(self) -> bool:
        """True when this instruction may redirect the PC."""
        return self.op in CONTROL_OPS

    @property
    def is_cond_branch(self) -> bool:
        """True for conditional branches."""
        return self.op in COND_BRANCH_OPS

    @property
    def is_direct_jump(self) -> bool:
        """True for ``J``/``JAL`` (assembly-time target)."""
        return self.op in DIRECT_JUMP_OPS

    @property
    def is_indirect(self) -> bool:
        """True for register-target transfers (``JR``/``JALR``/``RET``)."""
        return self.op in INDIRECT_OPS

    def __str__(self) -> str:
        parts = [self.op.name.lower()]
        if self.op in COND_BRANCH_OPS:
            parts.append(f"r{self.rs1}, r{self.rs2}, {self.target!r}")
        elif self.op in DIRECT_JUMP_OPS:
            parts.append(f"{self.target!r}")
        elif self.op in (Op.JR, Op.JALR):
            parts.append(f"r{self.rs1}")
        elif self.op is Op.LD:
            parts.append(f"r{self.rd}, {self.imm}(r{self.rs1})")
        elif self.op is Op.ST:
            parts.append(f"r{self.rs2}, {self.imm}(r{self.rs1})")
        elif self.op is Op.LI:
            parts.append(f"r{self.rd}, {self.imm}")
        elif self.op in (Op.RET, Op.NOP, Op.HALT):
            pass
        else:
            parts.append(f"r{self.rd}, r{self.rs1}, r{self.rs2}/{self.imm}")
        return " ".join(parts)
