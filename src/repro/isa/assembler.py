"""Two-pass assembler for the tiny RISC ISA.

The assembler accumulates instructions and labels, then resolves symbolic
branch/jump targets to absolute instruction addresses in
:meth:`Assembler.assemble`.  Each control-transfer mnemonic is exposed as a
method so workload programs read like assembly listings::

    asm = Assembler()
    asm.li("r4", 0)
    asm.label("loop")
    asm.addi("r4", "r4", 1)
    asm.blt("r4", "r5", "loop")
    asm.halt()
    program = asm.assemble(name="count")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instructions import Instruction
from .opcodes import (
    COND_BRANCH_OPS,
    DIRECT_JUMP_OPS,
    Op,
    parse_register,
)
from .program import Program


#: Register operands: symbolic names ("r4", "sp") or raw indices.
Reg = Union[str, int]
#: Branch/jump targets: label names or absolute addresses.
Target = Union[str, int]


class AssemblyError(Exception):
    """Raised for malformed programs (duplicate/undefined labels, ...)."""


class Assembler:
    """Accumulates instructions and resolves labels into a :class:`Program`."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._entry_label: Optional[str] = None

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> None:
        """Define ``name`` at the current address."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label: {name!r}")
        self._labels[name] = self.here

    def has_label(self, name: str) -> bool:
        """True when ``name`` has already been defined."""
        return name in self._labels

    def entry(self, name: str) -> None:
        """Mark label ``name`` as the program entry point."""
        self._entry_label = name

    def emit(self, inst: Instruction) -> None:
        """Append a raw :class:`Instruction`."""
        self._instructions.append(inst)

    def unique_label(self, stem: str) -> str:
        """Return a fresh label name derived from ``stem``."""
        n = 0
        while f"{stem}__{n}" in self._labels:
            n += 1
        # Reserve it so subsequent calls with the same stem differ even
        # before the label is placed.
        name = f"{stem}__{n}"
        self._labels[name] = -1
        return name

    def place(self, name: str) -> None:
        """Place a label previously reserved by :meth:`unique_label`."""
        if self._labels.get(name, None) != -1:
            raise AssemblyError(f"label not reserved or already placed: {name!r}")
        self._labels[name] = self.here

    # ------------------------------------------------------------------
    # ALU mnemonics
    # ------------------------------------------------------------------

    def _alu_rr(self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self.emit(Instruction(op, rd=parse_register(rd),
                              rs1=parse_register(rs1), rs2=parse_register(rs2)))

    def _alu_ri(self, op: Op, rd: Reg, rs1: Reg, imm: int) -> None:
        self.emit(Instruction(op, rd=parse_register(rd),
                              rs1=parse_register(rs1), imm=int(imm)))

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 + rs2``"""
        self._alu_rr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 - rs2``"""
        self._alu_rr(Op.SUB, rd, rs1, rs2)

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 * rs2`` (wraps to 64 bits)"""
        self._alu_rr(Op.MUL, rd, rs1, rs2)

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 / rs2`` (truncating; faults on zero)"""
        self._alu_rr(Op.DIV, rd, rs1, rs2)

    def mod(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 mod rs2`` (C semantics; faults on zero)"""
        self._alu_rr(Op.MOD, rd, rs1, rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 & rs2``"""
        self._alu_rr(Op.AND, rd, rs1, rs2)

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 | rs2``"""
        self._alu_rr(Op.OR, rd, rs1, rs2)

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 ^ rs2``"""
        self._alu_rr(Op.XOR, rd, rs1, rs2)

    def sll(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 << (rs2 & 63)``"""
        self._alu_rr(Op.SLL, rd, rs1, rs2)

    def srl(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- rs1 >>_logical (rs2 & 63)``"""
        self._alu_rr(Op.SRL, rd, rs1, rs2)

    def slt(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- 1 if rs1 < rs2 else 0``"""
        self._alu_rr(Op.SLT, rd, rs1, rs2)

    def seq(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd <- 1 if rs1 == rs2 else 0``"""
        self._alu_rr(Op.SEQ, rd, rs1, rs2)

    def addi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 + imm``"""
        self._alu_ri(Op.ADDI, rd, rs1, imm)

    def andi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 & imm``"""
        self._alu_ri(Op.ANDI, rd, rs1, imm)

    def ori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 | imm``"""
        self._alu_ri(Op.ORI, rd, rs1, imm)

    def xori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 ^ imm``"""
        self._alu_ri(Op.XORI, rd, rs1, imm)

    def slli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 << (imm & 63)``"""
        self._alu_ri(Op.SLLI, rd, rs1, imm)

    def srli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 >>_logical (imm & 63)``"""
        self._alu_ri(Op.SRLI, rd, rs1, imm)

    def slti(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- 1 if rs1 < imm else 0``"""
        self._alu_ri(Op.SLTI, rd, rs1, imm)

    def muli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd <- rs1 * imm`` (wraps to 64 bits)"""
        self._alu_ri(Op.MULI, rd, rs1, imm)

    def li(self, rd: Reg, imm: int) -> None:
        """``rd <- imm``"""
        self.emit(Instruction(Op.LI, rd=parse_register(rd), imm=int(imm)))

    def mv(self, rd: Reg, rs1: Reg) -> None:
        """Pseudo-op: copy ``rs1`` into ``rd``."""
        self.addi(rd, rs1, 0)

    def nop(self) -> None:
        """No operation."""
        self.emit(Instruction(Op.NOP))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def ld(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        """``rd <- mem[rs1 + imm]``"""
        self.emit(Instruction(Op.LD, rd=parse_register(rd),
                              rs1=parse_register(rs1), imm=int(imm)))

    def st(self, rs2: Reg, rs1: Reg, imm: int = 0) -> None:
        """``mem[rs1 + imm] <- rs2``"""
        self.emit(Instruction(Op.ST, rs2=parse_register(rs2),
                              rs1=parse_register(rs1), imm=int(imm)))

    # ------------------------------------------------------------------
    # Control transfer
    # ------------------------------------------------------------------

    def _branch(self, op: Op, rs1: Reg, rs2: Reg, target: Target) -> None:
        self.emit(Instruction(op, rs1=parse_register(rs1),
                              rs2=parse_register(rs2), target=target))

    def beq(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 == rs2``."""
        self._branch(Op.BEQ, rs1, rs2, target)

    def bne(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 != rs2``."""
        self._branch(Op.BNE, rs1, rs2, target)

    def blt(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 < rs2``."""
        self._branch(Op.BLT, rs1, rs2, target)

    def bge(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 >= rs2``."""
        self._branch(Op.BGE, rs1, rs2, target)

    def ble(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 <= rs2``."""
        self._branch(Op.BLE, rs1, rs2, target)

    def bgt(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Branch to ``target`` when ``rs1 > rs2``."""
        self._branch(Op.BGT, rs1, rs2, target)

    def branch(self, op: Op, rs1: Reg, rs2: Reg, target: Target) -> None:
        """Emit an arbitrary conditional-branch opcode."""
        if op not in COND_BRANCH_OPS:
            raise AssemblyError(f"not a conditional branch: {op}")
        self._branch(op, rs1, rs2, target)

    def j(self, target: Target) -> None:
        """Unconditional direct jump to ``target``."""
        self.emit(Instruction(Op.J, target=target))

    def jal(self, target: Target) -> None:
        """Direct call: jumps to ``target`` and writes PC+1 into ``ra``."""
        self.emit(Instruction(Op.JAL, rd=1, target=target))

    def jr(self, rs1: Reg) -> None:
        """Indirect jump to the address in ``rs1``."""
        self.emit(Instruction(Op.JR, rs1=parse_register(rs1)))

    def jalr(self, rs1: Reg) -> None:
        """Indirect call through ``rs1``; writes PC+1 into ``ra``."""
        self.emit(Instruction(Op.JALR, rd=1, rs1=parse_register(rs1)))

    def ret(self) -> None:
        """Return through the link register (classified as a return)."""
        self.emit(Instruction(Op.RET, rs1=1))

    def halt(self) -> None:
        """Stop execution and terminate the trace."""
        self.emit(Instruction(Op.HALT))

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def assemble(self, data_size: int = 4096, name: str = "") -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        unplaced = [k for k, v in self._labels.items() if v < 0]
        if unplaced:
            raise AssemblyError(f"reserved labels never placed: {unplaced}")
        resolved: List[Instruction] = []
        for pc, inst in enumerate(self._instructions):
            if inst.op in COND_BRANCH_OPS or inst.op in DIRECT_JUMP_OPS:
                target = inst.target
                if isinstance(target, str):
                    if target not in self._labels:
                        raise AssemblyError(
                            f"undefined label {target!r} at address {pc}")
                    addr = self._labels[target]
                else:
                    addr = int(target)
                if not 0 <= addr < len(self._instructions):
                    raise AssemblyError(
                        f"target {addr} out of range at address {pc}")
                resolved.append(
                    Instruction(inst.op, rd=inst.rd, rs1=inst.rs1,
                                rs2=inst.rs2, imm=addr, target=addr))
            else:
                resolved.append(inst)
        entry = 0
        if self._entry_label is not None:
            if self._entry_label not in self._labels:
                raise AssemblyError(
                    f"undefined entry label {self._entry_label!r}")
            entry = self._labels[self._entry_label]
        return Program(instructions=resolved, entry=entry,
                       data_size=data_size, labels=dict(self._labels),
                       name=name)
