"""Exception hygiene in resilience paths (REP5xx).

The fault-tolerant sweep runtime deliberately catches broad exception
classes — that is its job — but only inside the sanctioned wrappers in
``repro.runtime.resilience``.  Anywhere else, a bare ``except:`` or a
swallowed ``BaseException`` also traps ``KeyboardInterrupt`` and
``SystemExit``, turning an operator's Ctrl-C into silently corrupted
sweep state.  ``except Exception`` remains allowed (it excludes the
exit signals); the rules target the handlers that do not.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, FileContext, Finding, RuleSpec, in_packages

BARE_EXCEPT = RuleSpec(
    id="REP501",
    name="bare-except",
    summary="Bare except: traps KeyboardInterrupt/SystemExit.",
    hint="Catch a named exception class; even the resilience wrappers "
         "name what they trap.",
)

SWALLOWED_BASE = RuleSpec(
    id="REP502",
    name="swallowed-base-exception",
    summary="except BaseException without re-raise outside the "
            "sanctioned resilience wrappers.",
    hint="Catch Exception instead, re-raise, or move the wrapper into "
         "repro.runtime.resilience.",
)


class ExceptionHygieneChecker(Checker):
    """REP501 / REP502."""

    rules = (BARE_EXCEPT, SWALLOWED_BASE)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        sanctioned = in_packages(ctx.module,
                                 self.config.exception_sanctioned)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(ctx.finding(
                    BARE_EXCEPT, node, "bare except: handler"))
                continue
            if sanctioned:
                continue
            if _catches_base(node.type) and not _reraises(node):
                findings.append(ctx.finding(
                    SWALLOWED_BASE, node,
                    "except BaseException handler never re-raises"))
        return findings


def _catches_base(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_catches_base(item) for item in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises the caught exception."""
    caught = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if caught is not None and isinstance(node.exc, ast.Name) \
                    and node.exc.id == caught:
                return True
    return False
