"""Determinism rules (REP1xx).

The repo's headline guarantee — serial == parallel == resumed sweeps,
bit for bit — only holds while the simulation core is a pure function
of its inputs.  These rules flag the classic ways Python code silently
breaks that: ambient randomness, wall-clock reads, iteration orders
that depend on hashing, and environment reads scattered outside the
sanctioned config entry points.

REP101-REP103 apply inside the deterministic core packages
(``repro.core``, ``repro.predictors``, ``repro.trace`` by default);
REP104 applies to every linted file because a stray ``os.environ``
read anywhere undermines the central registry (see REP4xx).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..config import LintConfig
from ..core import Checker, FileContext, Finding, ImportMap, RuleSpec
from ..core import in_packages

UNSEEDED_RANDOM = RuleSpec(
    id="REP101",
    name="unseeded-random",
    summary="Ambient RNG use (module-level random / numpy.random "
            "functions) in deterministic core code.",
    hint="Thread an explicitly seeded random.Random or "
         "numpy.random.Generator through the call instead.",
)

WALL_CLOCK = RuleSpec(
    id="REP102",
    name="wall-clock",
    summary="Wall-clock read (time.time, datetime.now, ...) in "
            "deterministic core code.",
    hint="Simulation results must not depend on the clock; pass "
         "timestamps in from the runtime layer if one is needed.",
)

ORDER_DEPENDENT = RuleSpec(
    id="REP103",
    name="order-dependent-iteration",
    summary="Iteration over a set (or vars()/globals()/dir()) whose "
            "order is hash-dependent.",
    hint="Wrap the iterable in sorted(...) to pin a deterministic "
         "order.",
)

ENV_OUTSIDE_CONFIG = RuleSpec(
    id="REP104",
    name="env-read-outside-config",
    summary="os.environ read outside the sanctioned config entry "
            "points.",
    hint="Read through repro.envvars.read(...) or add a validated "
         "accessor to the runtime config entry points.",
)

#: Constructors that produce *seeded/explicit* RNGs - allowed.
_RNG_OK = frozenset({
    "Random", "SystemRandom", "default_rng", "Generator", "RandomState",
    "SeedSequence", "BitGenerator", "MT19937", "PCG64", "PCG64DXSM",
    "Philox", "SFC64",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_UNORDERED_BUILTINS = frozenset({
    "set", "frozenset", "vars", "globals", "locals", "dir",
})


class DeterminismChecker(Checker):
    """REP101-REP104."""

    rules = (UNSEEDED_RANDOM, WALL_CLOCK, ORDER_DEPENDENT,
             ENV_OUTSIDE_CONFIG)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        core_scope = in_packages(ctx.module,
                                 self.config.determinism_packages)
        env_sanctioned = in_packages(ctx.module,
                                     self.config.env_read_allowed)
        for node in ast.walk(ctx.tree):
            if core_scope:
                self._check_rng_and_clock(ctx, node, imports, findings)
                self._check_iteration(ctx, node, findings)
            if not env_sanctioned:
                self._check_env_read(ctx, node, imports, findings)
        return findings

    # -- REP101 / REP102 ------------------------------------------------

    def _check_rng_and_clock(self, ctx: FileContext, node: ast.AST,
                             imports: ImportMap,
                             findings: List[Finding]) -> None:
        if not isinstance(node, ast.Call):
            return
        dotted = imports.resolve(node.func)
        if dotted is None:
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if (dotted.startswith("random.")
                or dotted.startswith("numpy.random.")) \
                and leaf not in _RNG_OK:
            findings.append(ctx.finding(
                UNSEEDED_RANDOM, node,
                f"call to ambient RNG function {dotted}()"))
        elif dotted in _CLOCK_CALLS:
            findings.append(ctx.finding(
                WALL_CLOCK, node, f"wall-clock read {dotted}()"))

    # -- REP103 ---------------------------------------------------------

    def _check_iteration(self, ctx: FileContext, node: ast.AST,
                         findings: List[Finding]) -> None:
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            reason = _unordered_reason(it)
            if reason is not None:
                findings.append(ctx.finding(
                    ORDER_DEPENDENT, it,
                    f"iteration over {reason} has hash-dependent "
                    f"order"))

    # -- REP104 ---------------------------------------------------------

    def _check_env_read(self, ctx: FileContext, node: ast.AST,
                        imports: ImportMap,
                        findings: List[Finding]) -> None:
        if isinstance(node, ast.Call):
            dotted = imports.resolve(node.func)
            if dotted in ("os.environ.get", "os.getenv",
                          "os.environb.get", "os.getenvb"):
                findings.append(ctx.finding(
                    ENV_OUTSIDE_CONFIG, node,
                    f"environment read {dotted}(...) outside the "
                    f"sanctioned config entry points"))
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load):
            dotted = imports.resolve(node.value)
            if dotted in ("os.environ", "os.environb"):
                findings.append(ctx.finding(
                    ENV_OUTSIDE_CONFIG, node,
                    f"environment read {dotted}[...] outside the "
                    f"sanctioned config entry points"))


def _unordered_reason(node: ast.expr) -> "str | None":
    """Why iterating ``node`` is order-unstable, or None if it isn't."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.BinOp) \
            and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)) \
            and (_unordered_reason(node.left) is not None
                 or _unordered_reason(node.right) is not None):
        return "a set expression"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _UNORDERED_BUILTINS:
        return f"{node.func.id}(...)"
    return None
