"""Async-safety rules for the prediction service (REP6xx).

``repro.serve`` is an asyncio resilience envelope: one blocking call on
the event loop stalls every in-flight request and silently wrecks the
tail-latency and degradation guarantees the chaos benchmarks certify.
These rules run on the :mod:`repro.analysis.flow` dataflow tier — the
call-context summaries say which module-local helpers may block (even
transitively), and reaching definitions say which names hold sync
locks — so the judgement is about what the code *does*, not just what
a single call site spells.

Scope: ``async def`` functions in the packages listed under
``[tool.reprolint.async] packages`` (default ``repro.serve``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, FileContext, Finding, RuleSpec, in_packages
from ..flow import (FunctionNode, ModuleFlow, _is_blocking_dotted,
                    _is_blocking_method, _method_label, _walk_in_scope)
from .exceptions import _reraises

BLOCKING_IN_ASYNC = RuleSpec(
    id="REP601",
    name="blocking-call-in-async",
    summary="Blocking call on the event loop inside async def.",
    hint="Dispatch through the service executor "
         "(loop.run_in_executor) like _process_batch does, or use the "
         "asyncio equivalent (asyncio.sleep, asyncio.subprocess).",
)

UNAWAITED_CORO = RuleSpec(
    id="REP602",
    name="unawaited-coroutine",
    summary="Coroutine created but never awaited.",
    hint="await it, or wrap it in asyncio.create_task(...) and keep "
         "the task reference so cancellation can reach it.",
)

AWAIT_HOLDING_LOCK = RuleSpec(
    id="REP603",
    name="await-holding-sync-lock",
    summary="await while holding a synchronous lock.",
    hint="A threading.Lock held across an await blocks every other "
         "coroutine that needs it; use asyncio.Lock, or confine the "
         "sync lock to executor-side code.",
)

CANCELLED_SWALLOWED = RuleSpec(
    id="REP604",
    name="cancelled-error-swallowed",
    summary="Handler can swallow asyncio.CancelledError.",
    hint="Catch Exception (CancelledError derives from BaseException "
         "on 3.8+), or re-raise CancelledError so deadline "
         "cancellation still tears the request down.",
)


class AsyncSafetyChecker(Checker):
    """REP601-REP604."""

    rules = (BLOCKING_IN_ASYNC, UNAWAITED_CORO, AWAIT_HOLDING_LOCK,
             CANCELLED_SWALLOWED)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not in_packages(ctx.module, self.config.async_packages):
            return ()
        flow = ctx.flow()
        findings: List[Finding] = []
        for func_flow in flow.functions.values():
            if not func_flow.is_async:
                continue
            func = func_flow.func
            findings.extend(self._blocking_calls(ctx, flow, func,
                                                 func_flow.qualname))
            findings.extend(self._unawaited(ctx, flow, func,
                                            func_flow.qualname))
            findings.extend(self._locked_awaits(ctx, flow, func))
            findings.extend(self._cancelled(ctx, func))
        return findings

    # -- REP601 ---------------------------------------------------------

    def _blocking_calls(self, ctx: FileContext, flow: ModuleFlow,
                        func: FunctionNode,
                        qualname: str) -> Iterable[Finding]:
        for node in _walk_async_body(func):
            if not isinstance(node, ast.Call):
                continue
            if _in_executor_dispatch(node):
                continue
            dotted = flow.imports.resolve(node.func)
            if dotted is not None and _is_blocking_dotted(dotted):
                yield ctx.finding(
                    BLOCKING_IN_ASYNC, node,
                    f"blocking call {dotted}() inside async def "
                    f"{func.name}")
                continue
            if _is_blocking_method(node):
                yield ctx.finding(
                    BLOCKING_IN_ASYNC, node,
                    f"blocking call {_method_label(node)} inside "
                    f"async def {func.name}")
                continue
            summary = flow.summary_for_call(node, qualname)
            if summary is not None and summary.may_block \
                    and not summary.is_async:
                evidence = summary.blocking_evidence or "transitive"
                yield ctx.finding(
                    BLOCKING_IN_ASYNC, node,
                    f"call to {summary.name}() may block the event "
                    f"loop ({evidence}) inside async def {func.name}",
                    hint="Run it via loop.run_in_executor on the "
                         "service executor, as _process_batch does "
                         "for engine dispatch.")

    # -- REP602 ---------------------------------------------------------

    def _unawaited(self, ctx: FileContext, flow: ModuleFlow,
                   func: FunctionNode,
                   qualname: str) -> Iterable[Finding]:
        for stmt in _statements(func):
            if not isinstance(stmt, ast.Expr) \
                    or not isinstance(stmt.value, ast.Call):
                continue
            call = stmt.value
            summary = flow.summary_for_call(call, qualname)
            if summary is not None and summary.is_async:
                yield ctx.finding(
                    UNAWAITED_CORO, call,
                    f"coroutine {summary.name}() is never awaited")

    # -- REP603 ---------------------------------------------------------

    def _locked_awaits(self, ctx: FileContext, flow: ModuleFlow,
                       func: FunctionNode) -> Iterable[Finding]:
        for node in _walk_async_body(func):
            if isinstance(node, ast.With):
                if not any(flow.lock_like(item.context_expr, func)
                           for item in node.items):
                    continue
                for inner in node.body:
                    for sub in _walk_in_scope(inner):
                        if isinstance(sub, (ast.Await, ast.AsyncFor,
                                            ast.AsyncWith)):
                            yield ctx.finding(
                                AWAIT_HOLDING_LOCK, sub,
                                "await inside a `with <sync lock>` "
                                "block")
                            break
                    else:
                        continue
                    break

    # -- REP604 ---------------------------------------------------------

    def _cancelled(self, ctx: FileContext,
                   func: FunctionNode) -> Iterable[Finding]:
        for node in _walk_async_body(func):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    continue  # bare except is REP501's business
                if _catches_cancelled(handler.type) \
                        and not _reraises(handler):
                    yield ctx.finding(
                        CANCELLED_SWALLOWED, handler,
                        "handler catches asyncio.CancelledError and "
                        "never re-raises")
            for stmt in node.finalbody:
                if isinstance(stmt, (ast.Return, ast.Break,
                                     ast.Continue)):
                    yield ctx.finding(
                        CANCELLED_SWALLOWED, stmt,
                        f"{type(stmt).__name__.lower()} in finally "
                        f"swallows an in-flight CancelledError",
                        hint="Move the control flow out of finally; a "
                             "finally return discards the "
                             "cancellation the deadline relies on.")


def _statements(func: FunctionNode) -> Iterable[ast.stmt]:
    """Every statement of a function's own body (no nested scopes)."""
    for stmt in func.body:
        for node in _walk_in_scope(stmt):
            if isinstance(node, ast.stmt):
                yield node


def _walk_async_body(func: FunctionNode) -> Iterable[ast.AST]:
    for stmt in func.body:
        yield from _walk_in_scope(stmt)


def _catches_cancelled(node: ast.expr) -> bool:
    """True for handlers able to catch asyncio.CancelledError.

    That is an explicit ``CancelledError`` name (dotted or not) or the
    ``BaseException`` root; plain ``except Exception`` cannot catch it
    on Python 3.8+ and stays allowed.
    """
    if isinstance(node, ast.Name):
        return node.id in ("CancelledError", "BaseException")
    if isinstance(node, ast.Attribute):
        return node.attr in ("CancelledError", "BaseException")
    if isinstance(node, ast.Tuple):
        return any(_catches_cancelled(item) for item in node.elts)
    return False


def _in_executor_dispatch(call: ast.Call) -> bool:
    """True when ``call`` is itself the executor-dispatch idiom.

    ``loop.run_in_executor(executor, fn, *args)`` passes ``fn``
    uncalled, so the blocking work runs off-loop; the dispatch call is
    the sanctioned pattern, not a violation.
    """
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "run_in_executor")


# Re-exported for fixture-facing tests.
__all__ = [
    "AsyncSafetyChecker",
    "BLOCKING_IN_ASYNC", "UNAWAITED_CORO", "AWAIT_HOLDING_LOCK",
    "CANCELLED_SWALLOWED",
]
