"""``REPRO_*`` environment-variable registry rules (REP4xx).

Every runtime knob must be declared once, with documentation, in
:mod:`repro.envvars` (``REGISTRY``), and every declared knob must be
documented in the README or under ``docs/``.  The checker collects
every exact ``"REPRO_*"`` string literal in the linted tree (the
project convention binds each variable name to a ``*_ENV`` constant or
passes it straight to ``os.environ``), so an undeclared variable fails
lint at the line that names it.

If the registry module is not part of the lint run, the checker falls
back to parsing it from ``<project-root>/src/<module path>``; when it
cannot be found at all, the rules stay silent (partial lints of
unrelated files should not fail on missing context).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import LintConfig
from ..core import Checker, FileContext, Finding, RuleSpec

UNDECLARED_ENV = RuleSpec(
    id="REP401",
    name="undeclared-env-var",
    summary="REPRO_* variable used but not declared in the central "
            "registry.",
    hint="Declare the variable (name, summary, default, owner) in "
         "repro.envvars.REGISTRY.",
)

UNDOCUMENTED_ENV = RuleSpec(
    id="REP402",
    name="undocumented-env-var",
    summary="Registry entry not mentioned in README.md or docs/.",
    hint="Document the variable in the README environment table (or a "
         "docs/ page) so users can discover it.",
)

_ENV_NAME_RE = re.compile(r"^REPRO_[A-Z][A-Z0-9_]*$")


@dataclass(frozen=True)
class _Use:
    name: str
    relpath: str
    line: int
    col: int


class EnvRegistryChecker(Checker):
    """REP401 / REP402."""

    rules = (UNDECLARED_ENV, UNDOCUMENTED_ENV)

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._uses: List[_Use] = []
        self._declared: Dict[str, Tuple[str, int, int]] = {}
        self._saw_registry = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module == self.config.env_registry_module:
            self._saw_registry = True
            self._collect_registry(ctx.tree, ctx.relpath)
            return ()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _ENV_NAME_RE.match(node.value):
                self._uses.append(_Use(
                    name=node.value, relpath=ctx.relpath,
                    line=node.lineno, col=node.col_offset + 1))
        return ()

    def finish(self) -> Iterable[Finding]:
        if not self._saw_registry:
            self._load_registry_from_disk()
        if not self._declared:
            return ()
        findings: List[Finding] = []
        for use in self._uses:
            if use.name not in self._declared:
                findings.append(Finding(
                    rule=UNDECLARED_ENV.id, path=use.relpath,
                    line=use.line, col=use.col,
                    message=(f"{use.name} is not declared in the "
                             f"{self.config.env_registry_module} "
                             f"registry"),
                    hint=UNDECLARED_ENV.hint))
        docs_text = self._docs_text()
        if docs_text is not None:
            for name, (relpath, line, col) in \
                    sorted(self._declared.items()):
                if name not in docs_text:
                    findings.append(Finding(
                        rule=UNDOCUMENTED_ENV.id, path=relpath,
                        line=line, col=col,
                        message=(f"registry entry {name} is not "
                                 f"documented in "
                                 f"{'/'.join(self.config.env_docs)}"),
                        hint=UNDOCUMENTED_ENV.hint))
        return findings

    # -- registry parsing ----------------------------------------------

    def _collect_registry(self, tree: ast.AST, relpath: str) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "EnvVar":
                name = _envvar_name(node)
                if name is not None:
                    self._declared.setdefault(
                        name, (relpath, node.lineno,
                               node.col_offset + 1))

    def _load_registry_from_disk(self) -> None:
        module = self.config.env_registry_module
        relpath = Path("src", *module.split("."))
        for candidate in (relpath.with_suffix(".py"),
                          Path(*module.split(".")).with_suffix(".py")):
            path = self.config.project_root / candidate
            if not path.is_file():
                continue
            try:
                tree = ast.parse(path.read_text())
            except (SyntaxError, OSError):
                return
            self._collect_registry(tree, candidate.as_posix())
            return

    def _docs_text(self) -> Optional[str]:
        chunks: List[str] = []
        for entry in self.config.env_docs:
            path = self.config.project_root / entry
            if path.is_file():
                try:
                    chunks.append(path.read_text())
                except OSError:
                    continue
            elif path.is_dir():
                for doc in sorted(path.rglob("*.md")):
                    try:
                        chunks.append(doc.read_text())
                    except OSError:
                        continue
        if not chunks:
            return None
        return "\n".join(chunks)


def _envvar_name(call: ast.Call) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None
