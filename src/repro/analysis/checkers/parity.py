"""Scalar <-> fast engine parity contract (REP3xx).

The fast engine (``repro.core.fast``) snapshots, replays and writes
back every piece of predictor state the scalar engines own — PHT
counters, select tables, BIT table, target arrays, the RAS.  The
parity test suite proves the *values* match, but only at runtime and
only for state it knows about: a new ``self.<field>`` added to a scalar
engine's ``__init__`` that the fast path never touches would sail
through review and fail twenty minutes into a parity sweep (or worse,
silently diverge on warm re-runs).

These rules make the correspondence a static contract:

* **REP301** — every state field assigned in a scalar engine's
  ``__init__`` (classes named ``*Engine`` in the configured scalar
  modules) must be accessed as ``engine.<field>`` somewhere in the fast
  module, or be explicitly listed in the ``parity-exempt`` table.
* **REP302** — every ``engine.<field>`` access in the fast module must
  correspond to a field some scalar engine assigns (catches renames
  that leave the fast path reading dead state).

Private fields (leading underscore) are per-run scratch, not engine
state, and are ignored.  Both rules stay silent unless both sides of
the contract were part of the lint run, so single-file invocations
don't produce spurious cross-file findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..config import LintConfig
from ..core import Checker, FileContext, Finding, RuleSpec

SCALAR_NOT_IN_FAST = RuleSpec(
    id="REP301",
    name="scalar-state-not-in-fast",
    summary="Scalar engine state field with no counterpart access in "
            "the fast engine module.",
    hint="Teach the fast engine to snapshot/replay/write back the "
         "field (and extend the parity tests), or declare it in "
         "[tool.reprolint] parity.exempt with a comment saying why "
         "the fast path never needs it.",
)

FAST_NOT_IN_SCALAR = RuleSpec(
    id="REP302",
    name="fast-state-not-in-scalar",
    summary="Fast engine accesses an engine field no scalar engine "
            "defines.",
    hint="The scalar engines are the ground truth; a fast-only field "
         "access is dead state or a missed rename.",
)

_ENGINE_SUFFIX = "Engine"
_ENGINE_PARAM = "engine"


@dataclass(frozen=True)
class _StateField:
    module: str
    cls: str
    attr: str
    relpath: str
    line: int
    col: int


class ParityChecker(Checker):
    """REP301 / REP302 across the engine modules."""

    rules = (SCALAR_NOT_IN_FAST, FAST_NOT_IN_SCALAR)

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._scalar_fields: List[_StateField] = []
        self._fast_accesses: Dict[str, _StateField] = {}
        self._saw_scalar = False
        self._saw_fast = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module in self.config.parity_scalar_modules:
            self._saw_scalar = True
            self._collect_scalar(ctx)
        if ctx.module == self.config.parity_fast_module:
            self._saw_fast = True
            self._collect_fast(ctx)
        return ()

    def finish(self) -> Iterable[Finding]:
        if not (self._saw_scalar and self._saw_fast):
            return ()
        findings: List[Finding] = []
        exempt = set(self.config.parity_exempt)
        handled = set(self._fast_accesses)
        reported = set()
        for field in self._scalar_fields:
            if field.attr in exempt or field.attr in handled:
                continue
            key = (field.module, field.cls, field.attr)
            if key in reported:
                continue
            reported.add(key)
            findings.append(Finding(
                rule=SCALAR_NOT_IN_FAST.id, path=field.relpath,
                line=field.line, col=field.col,
                message=(f"{field.cls}.{field.attr} is scalar engine "
                         f"state with no counterpart in "
                         f"{self.config.parity_fast_module}; the "
                         f"engines would diverge on warm re-runs"),
                hint=SCALAR_NOT_IN_FAST.hint))
        defined = {field.attr for field in self._scalar_fields} | exempt
        for attr, access in sorted(self._fast_accesses.items()):
            if attr in defined:
                continue
            findings.append(Finding(
                rule=FAST_NOT_IN_SCALAR.id, path=access.relpath,
                line=access.line, col=access.col,
                message=(f"fast engine reads engine.{attr}, which no "
                         f"scalar engine defines"),
                hint=FAST_NOT_IN_SCALAR.hint))
        return findings

    # -- collection -----------------------------------------------------

    def _collect_scalar(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) \
                    or not node.name.endswith(_ENGINE_SUFFIX):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and item.name == "__init__":
                    self._collect_init(ctx, node.name, item)

    def _collect_init(self, ctx: FileContext, cls: str,
                      init: ast.FunctionDef) -> None:
        for node in ast.walk(init):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self" \
                        and not target.attr.startswith("_"):
                    self._scalar_fields.append(_StateField(
                        module=ctx.module, cls=cls, attr=target.attr,
                        relpath=ctx.relpath, line=target.lineno,
                        col=target.col_offset + 1))

    def _collect_fast(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            attr: "str | None" = None
            anchor: ast.AST = node
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == _ENGINE_PARAM:
                attr = node.attr
            elif isinstance(node, ast.Call):
                # getattr(engine, "field", default) counts as access.
                if isinstance(node.func, ast.Name) \
                        and node.func.id == "getattr" \
                        and len(node.args) >= 2 \
                        and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id == _ENGINE_PARAM \
                        and isinstance(node.args[1], ast.Constant) \
                        and isinstance(node.args[1].value, str):
                    attr = node.args[1].value
            if attr is None or attr.startswith("_"):
                continue
            self._fast_accesses.setdefault(attr, _StateField(
                module=ctx.module, cls="", attr=attr,
                relpath=ctx.relpath, line=anchor.lineno,
                col=anchor.col_offset + 1))
