"""Checker registry: every project rule reprolint ships."""

from __future__ import annotations

from typing import List, Tuple, Type

from ..core import Checker, PARSE_RULE, RuleSpec
from .async_safety import AsyncSafetyChecker
from .determinism import DeterminismChecker
from .dtype import DtypeChecker
from .envreg import EnvRegistryChecker
from .exceptions import ExceptionHygieneChecker
from .parity import ParityChecker

#: Registration order is reporting order for equal (path, line, col).
ALL_CHECKERS: Tuple[Type[Checker], ...] = (
    DeterminismChecker,
    DtypeChecker,
    ParityChecker,
    EnvRegistryChecker,
    ExceptionHygieneChecker,
    AsyncSafetyChecker,
)


def all_rules() -> List[RuleSpec]:
    """Every rule id the tool can emit, sorted by id.

    Includes the generated-kernel gate rules (REP7xx), which are
    emitted by the codegen hook and the ``--kernels`` sweep rather
    than a per-file checker.
    """
    from ..kernelgate import KERNEL_RULES

    rules: List[RuleSpec] = [PARSE_RULE]
    for checker in ALL_CHECKERS:
        rules.extend(checker.rules)
    rules.extend(KERNEL_RULES)
    return sorted(rules, key=lambda rule: rule.id)
