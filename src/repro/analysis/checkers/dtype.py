"""numpy dtype-safety rules (REP2xx) for the numeric kernel modules.

The vectorized engine core packs 2-bit counters, BIT codes and block
indices into ``uint8``/``int64`` arrays whose exact widths the parity
contract depends on.  An array constructed without an explicit
``dtype=`` inherits whatever numpy infers from the values — which can
change between platforms (Windows defaults ``int32``) or silently
upcast when a literal changes — so the kernel modules are held to
explicit-dtype discipline, and mixed-width scalar arithmetic is
flagged where it would trigger an implicit upcast.

REP202 rides on the :mod:`repro.analysis.flow` dataflow tier: a
value's width is tracked through assignments via reaching definitions,
so ``x = np.int64(n)`` two statements (or one loop join) before
``x + np.int32(m)`` is the same finding as writing the two
constructors side by side.  A name only carries a width when *every*
definition reaching the use agrees on it — disagreeing or opaque
definitions make the width unknown, never a guess.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, List, Optional

from ..core import Checker, FileContext, Finding, ImportMap, RuleSpec
from ..flow import FunctionFlow, _walk_in_scope

MISSING_DTYPE = RuleSpec(
    id="REP201",
    name="array-missing-dtype",
    summary="numpy array constructor without an explicit dtype= in a "
            "kernel module.",
    hint="Pass dtype= explicitly; inferred dtypes are platform- and "
         "value-dependent.",
)

MIXED_WIDTH = RuleSpec(
    id="REP202",
    name="mixed-int-width",
    summary="Arithmetic or comparison mixing explicitly different "
            "integer widths (implicit upcast).",
    hint="Cast one side explicitly so the result width is stated, not "
         "inferred.",
)

#: Constructors whose inferred dtype is value-dependent.
_INFERRING_CTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "arange", "fromiter", "frombuffer",
})

#: Scalar-constructor names carrying an explicit width.
_WIDTH_CTORS = frozenset({
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "intp", "uintp", "bool_", "float32", "float64",
})


class DtypeChecker(Checker):
    """REP201 / REP202 inside ``config.dtype_modules``."""

    rules = (MISSING_DTYPE, MIXED_WIDTH)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module not in self.config.dtype_modules:
            return ()
        flow = ctx.flow()
        imports = flow.imports
        findings: List[Finding] = []
        # REP201 is a per-callsite contract; the whole tree is fair
        # game regardless of scope.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_ctor(ctx, node, imports, findings)
        # REP202 inside functions rides on reaching definitions.
        for func_flow in flow.functions.values():
            for stmt in func_flow.func.body:
                for node in _walk_in_scope(stmt):
                    self._dispatch_mix(ctx, node, imports, findings,
                                       func_flow)
        # Module/class level code has no local dataflow; widths are
        # judged syntactically as before.
        for node in _walk_outside_functions(ctx.tree):
            self._dispatch_mix(ctx, node, imports, findings, None)
        return findings

    def _dispatch_mix(self, ctx: FileContext, node: ast.AST,
                      imports: ImportMap, findings: List[Finding],
                      flow: Optional[FunctionFlow]) -> None:
        if isinstance(node, ast.BinOp):
            self._check_mix(ctx, node, node.left, node.right,
                            imports, findings, flow)
        elif isinstance(node, ast.Compare):
            left = node.left
            for comparator in node.comparators:
                self._check_mix(ctx, node, left, comparator,
                                imports, findings, flow)
                left = comparator

    def _check_ctor(self, ctx: FileContext, node: ast.Call,
                    imports: ImportMap,
                    findings: List[Finding]) -> None:
        dotted = imports.resolve(node.func)
        if dotted is None or not dotted.startswith("numpy."):
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in _INFERRING_CTORS:
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # np.array(x, np.int64): dtype may be passed positionally as
        # the second argument for array/asarray/full/empty/....
        positional_dtype = {"array": 1, "asarray": 1,
                            "ascontiguousarray": 1, "zeros": 1,
                            "ones": 1, "empty": 1, "full": 2,
                            "fromiter": 1, "frombuffer": 1}
        slot = positional_dtype.get(leaf)
        if slot is not None and len(node.args) > slot:
            return
        findings.append(ctx.finding(
            MISSING_DTYPE, node,
            f"numpy.{leaf}(...) without an explicit dtype="))

    def _check_mix(self, ctx: FileContext, node: ast.AST,
                   left: ast.expr, right: ast.expr, imports: ImportMap,
                   findings: List[Finding],
                   flow: Optional[FunctionFlow]) -> None:
        lw = _explicit_width(left, imports, flow)
        rw = _explicit_width(right, imports, flow)
        if lw is not None and rw is not None and lw != rw:
            findings.append(ctx.finding(
                MIXED_WIDTH, node,
                f"operation mixes numpy.{lw} with numpy.{rw} "
                f"(implicit upcast decides the result width)"))


def _walk_outside_functions(tree: ast.Module) -> Iterable[ast.AST]:
    """Walk the tree skipping function bodies (class bodies stay)."""
    stack: List[ast.AST] = [tree]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _explicit_width(node: ast.expr, imports: ImportMap,
                    flow: Optional[FunctionFlow] = None,
                    seen: FrozenSet[int] = frozenset()
                    ) -> Optional[str]:
    """The provable numpy width of an expression, or None.

    Widths come from ``np.<width>(...)`` constructor calls and
    ``x.astype(np.<width>)`` casts; with ``flow``, a bare name carries
    a width when every definition reaching the use resolves to the
    same one (the ``seen`` set breaks self-referential definition
    cycles like ``x = x`` — a cycle proves nothing, so it resolves to
    unknown).
    """
    if isinstance(node, ast.Call):
        dotted = imports.resolve(node.func)
        if dotted is not None and dotted.startswith("numpy."):
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in _WIDTH_CTORS:
                return leaf
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "astype" and node.args:
            target = imports.resolve(node.args[0])
            if target is not None and target.startswith("numpy."):
                leaf = target.rsplit(".", 1)[-1]
                if leaf in _WIDTH_CTORS:
                    return leaf
        return None
    if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
            and flow is not None:
        definitions = flow.reaching(node)
        if not definitions:
            return None
        width: Optional[str] = None
        for definition in definitions:
            if definition.index in seen or definition.value is None:
                return None
            def_width = _explicit_width(
                definition.value, imports, flow,
                seen | {definition.index})
            if def_width is None or \
                    (width is not None and def_width != width):
                return None
            width = def_width
        return width
    return None


#: Re-exported for the flow-engine unit tests.
__all__ = ["DtypeChecker", "MISSING_DTYPE", "MIXED_WIDTH",
           "_explicit_width"]
