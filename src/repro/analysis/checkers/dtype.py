"""numpy dtype-safety rules (REP2xx) for the numeric kernel modules.

The vectorized engine core packs 2-bit counters, BIT codes and block
indices into ``uint8``/``int64`` arrays whose exact widths the parity
contract depends on.  An array constructed without an explicit
``dtype=`` inherits whatever numpy infers from the values — which can
change between platforms (Windows defaults ``int32``) or silently
upcast when a literal changes — so the kernel modules are held to
explicit-dtype discipline, and mixed-width scalar arithmetic is
flagged where it would trigger an implicit upcast.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..core import Checker, FileContext, Finding, ImportMap, RuleSpec

MISSING_DTYPE = RuleSpec(
    id="REP201",
    name="array-missing-dtype",
    summary="numpy array constructor without an explicit dtype= in a "
            "kernel module.",
    hint="Pass dtype= explicitly; inferred dtypes are platform- and "
         "value-dependent.",
)

MIXED_WIDTH = RuleSpec(
    id="REP202",
    name="mixed-int-width",
    summary="Arithmetic or comparison mixing explicitly different "
            "integer widths (implicit upcast).",
    hint="Cast one side explicitly so the result width is stated, not "
         "inferred.",
)

#: Constructors whose inferred dtype is value-dependent.
_INFERRING_CTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "arange", "fromiter", "frombuffer",
})

#: Scalar-constructor names carrying an explicit width.
_WIDTH_CTORS = frozenset({
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "intp", "uintp", "bool_", "float32", "float64",
})


class DtypeChecker(Checker):
    """REP201 / REP202 inside ``config.dtype_modules``."""

    rules = (MISSING_DTYPE, MIXED_WIDTH)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module not in self.config.dtype_modules:
            return ()
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_ctor(ctx, node, imports, findings)
            elif isinstance(node, ast.BinOp):
                self._check_mix(ctx, node, node.left, node.right,
                                imports, findings)
            elif isinstance(node, ast.Compare):
                left = node.left
                for comparator in node.comparators:
                    self._check_mix(ctx, node, left, comparator,
                                    imports, findings)
                    left = comparator
        return findings

    def _check_ctor(self, ctx: FileContext, node: ast.Call,
                    imports: ImportMap,
                    findings: List[Finding]) -> None:
        dotted = imports.resolve(node.func)
        if dotted is None or not dotted.startswith("numpy."):
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in _INFERRING_CTORS:
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # np.array(x, np.int64): dtype may be passed positionally as
        # the second argument for array/asarray/full/empty/....
        positional_dtype = {"array": 1, "asarray": 1,
                            "ascontiguousarray": 1, "zeros": 1,
                            "ones": 1, "empty": 1, "full": 2,
                            "fromiter": 1, "frombuffer": 1}
        slot = positional_dtype.get(leaf)
        if slot is not None and len(node.args) > slot:
            return
        findings.append(ctx.finding(
            MISSING_DTYPE, node,
            f"numpy.{leaf}(...) without an explicit dtype="))

    def _check_mix(self, ctx: FileContext, node: ast.AST,
                   left: ast.expr, right: ast.expr, imports: ImportMap,
                   findings: List[Finding]) -> None:
        lw = _explicit_width(left, imports)
        rw = _explicit_width(right, imports)
        if lw is not None and rw is not None and lw != rw:
            findings.append(ctx.finding(
                MIXED_WIDTH, node,
                f"operation mixes numpy.{lw} with numpy.{rw} "
                f"(implicit upcast decides the result width)"))


def _explicit_width(node: ast.expr,
                    imports: ImportMap) -> Optional[str]:
    """Dtype name when ``node`` is ``np.<width>(...)``, else None."""
    if not isinstance(node, ast.Call):
        return None
    dotted = imports.resolve(node.func)
    if dotted is None or not dotted.startswith("numpy."):
        return None
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf if leaf in _WIDTH_CTORS else None
