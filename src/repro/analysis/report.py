"""Finding renderers: human one-line-per-finding and JSON."""

from __future__ import annotations

import json

from .core import AnalysisResult

#: Schema version for the JSON report (CI artifacts parse this).
JSON_SCHEMA_VERSION = 1


def render_human(result: AnalysisResult) -> str:
    """flake8-style report plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    lines.append(f"{total} {noun} ({result.n_files} files checked)")
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (sorted findings, rule counts)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "n_files": result.n_files,
        "counts": result.counts,
        "findings": [finding.to_dict()
                     for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
