"""Finding renderers: human one-line-per-finding and JSON."""

from __future__ import annotations

import json

from .core import AnalysisResult

#: Schema version for the JSON report (CI artifacts parse this).
#: v2: findings carry a ``family`` field; the payload footer carries
#: per-family checker wall-time under ``timings_s``.
JSON_SCHEMA_VERSION = 2


def render_human(result: AnalysisResult) -> str:
    """flake8-style report plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    lines.append(f"{total} {noun} ({result.n_files} files checked)")
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (sorted findings, rule counts).

    The ``timings_s`` footer records cumulative checker wall-time per
    rule family so a checker performance regression is visible by
    diffing two CI artifacts.
    """
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "n_files": result.n_files,
        "counts": result.counts,
        "findings": [finding.to_dict()
                     for finding in result.findings],
        "timings_s": result.timings_s,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
