"""Generated-kernel verification gate (REP7xx).

The compiled backend exec-compiles shape-specialized kernel source at
runtime (:mod:`repro.core.backends.codegen`), which means that source
never passes through the on-disk lint walk: a template bug could ship
an implicit-dtype constructor or a data-dependent Python branch that
drifts from the numpy reference residual, and no checker would see it.

This module closes the hole from both ends:

* **generation time** — :func:`gate_generated_kernel` is called by the
  kernel loader for every source it is about to ``exec``.  Results are
  memoized by the kernel digest (a digest names immutable content, so
  one verdict is forever).  Under ``REPRO_KERNEL_GATE=enforce`` (the
  default) a dirty kernel raises :class:`KernelGateError` instead of
  compiling; ``warn`` reports to stderr and continues; ``off``
  disables the gate.
* **sweep time** — ``python -m repro.analysis --kernels <cache>``
  re-lints every persisted kernel artifact, so CI can audit a cache
  populated by a real warm sweep.

Findings are reported under a synthetic ``<generated:digest>`` path
and flow through the same post-filter as file findings, so
``--select``/``--ignore`` prefixes and ``# reprolint: disable=RULE``
pragmas behave uniformly.

The rules enforce the template contract rather than general style:
generated kernels execute in an injected namespace (``np`` *is* numpy
by construction — no import resolution needed) and may only use the
template op set, because every op in that set has a proven-bit-exact
counterpart in the reference residual.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig
from .core import Finding, RuleSpec, filter_findings

KERNEL_UNPARSEABLE = RuleSpec(
    id="REP701",
    name="kernel-unparseable",
    summary="Generated kernel source cannot be parsed.",
    hint="The codegen template emitted invalid Python; fix the "
         "template and bump KERNEL_VERSION.",
)

KERNEL_OP_WHITELIST = RuleSpec(
    id="REP702",
    name="kernel-op-whitelist",
    summary="Generated kernel uses an operation outside the template "
            "op set.",
    hint="Every op in a generated kernel needs a proven-bit-exact "
         "counterpart in the reference residual; extend the whitelist "
         "in repro.analysis.kernelgate only together with the "
         "template and its parity tests.",
)

KERNEL_DATA_BRANCH = RuleSpec(
    id="REP703",
    name="kernel-data-branch",
    summary="Data-dependent Python branching in a generated kernel.",
    hint="Branch only on folded constants or emptiness guards "
         "(x.shape[0] == 0); data-dependent control flow belongs in "
         "vectorized masks, where it cannot drift from the reference "
         "residual.",
)

KERNEL_DTYPE = RuleSpec(
    id="REP704",
    name="kernel-implicit-dtype",
    summary="Array constructor without an explicit dtype in a "
            "generated kernel.",
    hint="Fold the dtype into the template (dtype=np.int64 / "
         "dtype=bool); platform-dependent default widths break "
         "bit-exactness across hosts.",
)

KERNEL_IMPORT = RuleSpec(
    id="REP705",
    name="kernel-import",
    summary="Import statement in a generated kernel.",
    hint="Kernels execute in an injected namespace (np, PenaltyKind, "
         "seed helpers); an import reaches outside that contract and "
         "escapes the determinism audit.",
)

KERNEL_RULES: Tuple[RuleSpec, ...] = (
    KERNEL_UNPARSEABLE, KERNEL_OP_WHITELIST, KERNEL_DATA_BRANCH,
    KERNEL_DTYPE, KERNEL_IMPORT,
)

# ----------------------------------------------------------------------
# The template contract
# ----------------------------------------------------------------------

#: ``np.<name>`` calls the templates may emit.  np.random/np.datetime
#: and friends are unreachable by construction.
ALLOWED_NP = frozenset({
    "nonzero", "concatenate", "arange", "count_nonzero", "ones",
    "array", "zeros",
})

#: Backend replay primitives (each has a scalar reference twin).
ALLOWED_BACKEND = frozenset({"replay", "charge", "decode_select_entry"})

#: Injected helpers and plain builtins the templates use.
ALLOWED_NAME_CALLS = frozenset({
    "seed_targets", "seed_combined", "DualSelectEntry",
    "int", "zip", "range", "dict",
})

#: Method calls allowed on arbitrary receivers.
ALLOWED_METHODS = frozenset({"tolist", "astype", "sum", "items",
                             "append"})

#: ``np`` constructors that infer a platform-dependent dtype when none
#: is given (the generated-code mirror of the REP201 table).
INFERRING_NP = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "arange", "fromiter", "frombuffer",
})


def synthetic_path(digest: str) -> str:
    """The report path for a generated kernel's findings."""
    return f"<generated:{digest}>"


def _np_attr(node: ast.expr) -> Optional[str]:
    """``name`` for an ``np.name`` chain (namespace contract)."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "np":
        return node.attr
    return None


def _finding(rule: RuleSpec, path: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=rule.id, path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message, hint=rule.hint)


def _call_allowed(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ALLOWED_NAME_CALLS
    np_name = _np_attr(func)
    if np_name is not None:
        return np_name in ALLOWED_NP
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name) \
                and func.value.id == "backend":
            return func.attr in ALLOWED_BACKEND
        return func.attr in ALLOWED_METHODS
    return False


def _call_label(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<call>"


def _branch_test_allowed(test: ast.expr) -> bool:
    """Sanctioned branch forms: constant compares and empties.

    The templates branch only on (a) emptiness guards
    (``x.shape[0] == 0``), (b) loop-index routing against folded
    constants (``k < HALF``), (c) a bare count name in a conditional
    expression (``... if n_imm else 0``), and (d) ``e is None`` inside
    seed comprehensions.  Everything else is data-dependent control
    flow that can drift from the vectorized reference.
    """
    if isinstance(test, ast.Name):
        return True
    if isinstance(test, ast.Compare):
        if not all(isinstance(cmp, ast.Constant)
                   for cmp in test.comparators):
            return False
        left = test.left
        if isinstance(left, ast.Name):
            return True
        # x.shape[0] == 0 — the emptiness guard.
        if isinstance(left, ast.Subscript) \
                and isinstance(left.value, ast.Attribute) \
                and left.value.attr == "shape":
            return True
    return False


def _comprehension_iter_allowed(node: ast.expr) -> bool:
    if isinstance(node, (ast.Name, ast.Attribute)):
        return True
    if isinstance(node, ast.Call):
        return _call_allowed(node)
    return False


def _structural_findings(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []

    # Top level: a docstring and exactly one `def kernel`.
    body = list(tree.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    for stmt in body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            findings.append(_finding(
                KERNEL_IMPORT, path, stmt,
                "import statement in generated kernel"))
        elif not (isinstance(stmt, ast.FunctionDef)
                  and stmt.name == "kernel"):
            findings.append(_finding(
                KERNEL_OP_WHITELIST, path, stmt,
                f"unexpected top-level "
                f"{type(stmt).__name__.lower()} statement "
                f"(template emits a docstring and one `def kernel`)"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) \
                and node not in tree.body:
            findings.append(_finding(
                KERNEL_IMPORT, path, node,
                "import statement in generated kernel"))
        elif isinstance(node, ast.Call):
            if not _call_allowed(node):
                findings.append(_finding(
                    KERNEL_OP_WHITELIST, path, node,
                    f"call to {_call_label(node)}() is outside the "
                    f"template op set"))
            else:
                np_name = _np_attr(node.func)
                if np_name in INFERRING_NP and not any(
                        kw.arg == "dtype" for kw in node.keywords):
                    findings.append(_finding(
                        KERNEL_DTYPE, path, node,
                        f"np.{np_name} without an explicit dtype"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda, ast.ClassDef)):
            if not (isinstance(node, ast.FunctionDef)
                    and node.name == "kernel"
                    and node in tree.body):
                findings.append(_finding(
                    KERNEL_OP_WHITELIST, path, node,
                    "nested definition is outside the template op "
                    "set"))
        elif isinstance(node, ast.While):
            findings.append(_finding(
                KERNEL_DATA_BRANCH, path, node,
                "while loop in generated kernel"))
        elif isinstance(node, (ast.If, ast.IfExp)):
            if not _branch_test_allowed(node.test):
                findings.append(_finding(
                    KERNEL_DATA_BRANCH, path, node,
                    "branch condition is not a folded-constant "
                    "compare or emptiness guard"))
        elif isinstance(node, (ast.For,)):
            if not _comprehension_iter_allowed(node.iter):
                findings.append(_finding(
                    KERNEL_DATA_BRANCH, path, node,
                    "for loop over a non-template iterable"))
        elif isinstance(node, ast.comprehension):
            if not _comprehension_iter_allowed(node.iter):
                findings.append(_finding(
                    KERNEL_DATA_BRANCH, path, node,
                    "comprehension over a non-template iterable"))
            for cond in node.ifs:
                if not _branch_test_allowed(cond):
                    findings.append(_finding(
                        KERNEL_DATA_BRANCH, path, cond,
                        "comprehension filter is not a "
                        "folded-constant compare"))
    return findings


def lint_kernel_source(source: str, digest: str,
                       config: Optional[LintConfig] = None,
                       select: Sequence[str] = (),
                       ignore: Sequence[str] = ()) -> List[Finding]:
    """Lint one generated kernel source, post-filtered uniformly.

    Findings carry the synthetic ``<generated:digest>`` path;
    ``select``/``ignore`` prefixes and per-line pragmas in the
    generated source are honored exactly as for on-disk files.
    """
    path = synthetic_path(digest)
    cfg = config if config is not None else LintConfig()
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        raw: List[Finding] = [Finding(
            rule=KERNEL_UNPARSEABLE.id, path=path,
            line=int(line), col=1,
            message=f"cannot parse generated kernel: {exc}",
            hint=KERNEL_UNPARSEABLE.hint)]
    else:
        raw = _structural_findings(tree, path)
    return filter_findings(raw, cfg, tuple(select), tuple(ignore),
                           {path: lines})


# ----------------------------------------------------------------------
# The generation-time gate
# ----------------------------------------------------------------------

class KernelGateError(RuntimeError):
    """A generated kernel failed the REP7xx verification gate."""

    def __init__(self, digest: str,
                 findings: Sequence[Finding]) -> None:
        self.digest = digest
        self.findings = tuple(findings)
        rendered = "\n".join(f.render() for f in self.findings)
        super().__init__(
            f"generated kernel {digest} failed the lint gate "
            f"({len(self.findings)} finding"
            f"{'s' if len(self.findings) != 1 else ''}):\n{rendered}")


#: (digest, content-hash) -> verdict memo.  The spec digest names the
#: *intended* content; hashing the actual source as well means a
#: tampered disk artifact and its clean regeneration never share a
#: verdict even though they share a digest.
_GATE_MEMO: Dict[Tuple[str, str], Tuple[Finding, ...]] = {}

GATE_MODES = ("off", "warn", "enforce")


def gate_generated_kernel(source: str, digest: str,
                          mode: str = "enforce") -> Tuple[Finding, ...]:
    """Lint a kernel about to be exec-compiled; memoized by digest.

    Returns the findings (empty for a clean kernel).  ``enforce``
    raises :class:`KernelGateError` on any finding; ``warn`` prints
    them to stderr and continues; ``off`` skips linting entirely.
    """
    if mode not in GATE_MODES:
        raise ValueError(f"unknown kernel gate mode: {mode!r} "
                         f"(expected one of {GATE_MODES})")
    if mode == "off":
        return ()
    import hashlib
    key = (digest,
           hashlib.sha256(source.encode("utf-8")).hexdigest()[:16])
    findings = _GATE_MEMO.get(key)
    if findings is None:
        findings = tuple(lint_kernel_source(source, digest))
        _GATE_MEMO[key] = findings
    if findings:
        if mode == "enforce":
            raise KernelGateError(digest, findings)
        import sys
        for finding in findings:
            print(f"reprolint: {finding.render()}", file=sys.stderr)
    return findings


def clear_gate_memo() -> None:
    """Reset the digest memo (tests only)."""
    _GATE_MEMO.clear()


# ----------------------------------------------------------------------
# The --kernels sweep over persisted artifacts
# ----------------------------------------------------------------------

def iter_kernel_artifacts(root: Path) -> List[Path]:
    """Persisted kernel sources under ``root``.

    Accepts either a cache root (``<cache>/compiled/kernels`` is
    searched) or the kernel directory itself.
    """
    kernel_dir = root / "compiled" / "kernels"
    if not kernel_dir.is_dir():
        kernel_dir = root
    if not kernel_dir.is_dir():
        return []
    return sorted(p for p in kernel_dir.glob("*.py") if p.is_file())


def _artifact_digest(path: Path) -> str:
    """Digest part of a ``<kind>-<digest>.py`` artifact name."""
    stem = path.stem
    if "-" in stem:
        return stem.rsplit("-", 1)[1]
    return stem


def lint_kernel_cache(root: Path,
                      config: Optional[LintConfig] = None,
                      select: Sequence[str] = (),
                      ignore: Sequence[str] = ()
                      ) -> Tuple[List[Finding], int]:
    """Re-lint every persisted kernel artifact under ``root``.

    Returns ``(findings, n_kernels)``.  Unreadable artifacts surface
    as REP701 — a cache that cannot be audited is not a clean cache.
    """
    findings: List[Finding] = []
    artifacts = iter_kernel_artifacts(root)
    for path in artifacts:
        digest = _artifact_digest(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(
                rule=KERNEL_UNPARSEABLE.id,
                path=synthetic_path(digest), line=1, col=1,
                message=f"cannot read kernel artifact {path}: {exc}",
                hint=KERNEL_UNPARSEABLE.hint))
            continue
        findings.extend(lint_kernel_source(
            source, digest, config=config, select=select,
            ignore=ignore))
    findings.sort(key=Finding.sort_key)
    return findings, len(artifacts)


def _kernel_sources_digest_ordered(root: Path) -> Iterable[Tuple[str, str]]:
    """(digest, source) pairs for tests and tooling."""
    for path in iter_kernel_artifacts(root):
        yield _artifact_digest(path), path.read_text(encoding="utf-8")
