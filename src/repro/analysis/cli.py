"""reprolint command line: ``python -m repro.analysis [paths...]``.

Exit codes follow the sanitizer convention the CI job keys off:

* ``0`` — analysis ran and found nothing;
* ``1`` — analysis ran and produced findings;
* ``2`` — usage or configuration error (nothing was analysed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .checkers import all_rules
from .config import ConfigError, LintConfig, load_config
from .core import AnalysisResult, run_analysis
from .kernelgate import lint_kernel_cache
from .report import render_human, render_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: project-specific static analysis "
                    "enforcing determinism, dtype-safety and "
                    "scalar<->fast parity contracts.",
        epilog="Configuration is read from [tool.reprolint] in the "
               "nearest pyproject.toml; see docs/static-analysis.md "
               "for the rule catalogue.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "the configured paths, src/repro)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule prefixes to enable "
                             "exclusively (e.g. REP1,REP301)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule prefixes to "
                             "disable")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of "
                             "stdout (a human summary still prints)")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml to read "
                             "[tool.reprolint] from")
    parser.add_argument("--isolated", action="store_true",
                        help="ignore pyproject configuration and run "
                             "with built-in defaults (fixture corpora "
                             "are linted this way, since the project "
                             "config excludes them)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--kernels", default=None, metavar="CACHE",
                        help="instead of linting files, re-lint every "
                             "persisted generated-kernel artifact "
                             "under CACHE (a cache root or the "
                             "compiled/kernels directory) through the "
                             "REP7xx gate rules")
    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [item.strip() for item in raw.split(",") if item.strip()]


def _resolve_paths(args_paths: Sequence[str],
                   config: LintConfig) -> List[Path]:
    if args_paths:
        return [Path(path) for path in args_paths]
    return [config.project_root / path for path in config.paths]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    try:
        config = load_config(
            explicit=Path(args.config) if args.config else None,
            isolated=args.isolated)
    except ConfigError as exc:
        print(f"reprolint: configuration error: {exc}",
              file=sys.stderr)
        return 2

    if args.kernels is not None:
        root = Path(args.kernels)
        if not root.exists():
            print(f"reprolint: no such kernel cache: {root}",
                  file=sys.stderr)
            return 2
        findings, n_kernels = lint_kernel_cache(
            root, config=config,
            select=tuple(_split(args.select) or ()),
            ignore=tuple(_split(args.ignore) or ()))
        result = AnalysisResult(findings=findings, n_files=n_kernels)
    else:
        paths = _resolve_paths(args.paths, config)
        missing = [path for path in paths if not path.exists()]
        if missing:
            names = ", ".join(str(path) for path in missing)
            print(f"reprolint: no such path: {names}", file=sys.stderr)
            return 2

        result = run_analysis(paths, config, select=_split(args.select),
                              ignore=_split(args.ignore))

    if args.format == "json":
        report = render_json(result)
    else:
        report = render_human(result)

    if args.output:
        Path(args.output).write_text(report + "\n")
        total = len(result.findings)
        noun = "finding" if total == 1 else "findings"
        print(f"reprolint: wrote {total} {noun} to {args.output} "
              f"({result.n_files} files checked)")
    else:
        print(report)
    return 1 if result.findings else 0
