"""reprolint configuration: defaults plus ``[tool.reprolint]`` loading.

Configuration lives with the project in ``pyproject.toml`` so the CLI,
CI, and the test suite all see the same rule scoping.  The defaults
below are the project's real settings — running with ``--isolated``
(no pyproject) behaves identically except for the project-specific
exclude and per-path-ignore tables, which only make sense relative to
a concrete tree.

TOML parsing uses the stdlib ``tomllib`` (Python 3.11+) and degrades to
pure defaults on older interpreters rather than requiring a third-party
parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple


class ConfigError(Exception):
    """Invalid ``[tool.reprolint]`` contents."""


@dataclass(frozen=True)
class LintConfig:
    """Every knob the framework and the project checkers read."""

    #: Directory paths/relpaths are resolved against (pyproject's home).
    project_root: Path = field(default_factory=Path.cwd)

    #: Default lint targets, relative to the project root.
    paths: Tuple[str, ...] = ("src/repro",)
    #: Project-relative path prefixes never linted.
    exclude: Tuple[str, ...] = ()
    #: Enabled rule prefixes (empty = all rules).
    select: Tuple[str, ...] = ()
    #: Disabled rule prefixes.
    ignore: Tuple[str, ...] = ()
    #: Path prefix -> rule prefixes ignored under it (e.g. relaxing the
    #: determinism family for tests, which may freely touch the clock
    #: and the environment).
    per_path_ignores: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict)

    # -- determinism (REP1xx) ------------------------------------------
    #: Packages where the determinism rules REP101-REP103 apply.
    determinism_packages: Tuple[str, ...] = (
        "repro.core", "repro.predictors", "repro.trace")
    #: Modules (exact or package prefix) sanctioned to read the process
    #: environment directly (REP104 applies everywhere else).
    env_read_allowed: Tuple[str, ...] = (
        "repro.core.engine_mode", "repro.runtime", "repro.envvars")

    # -- dtype-safety (REP2xx) -----------------------------------------
    #: Numeric-kernel modules held to explicit-dtype discipline.
    dtype_modules: Tuple[str, ...] = (
        "repro.core.kernels", "repro.core.fast")

    # -- parity contract (REP3xx) --------------------------------------
    #: Scalar engine modules whose ``*Engine.__init__`` state fields
    #: must have fast-engine counterparts.
    parity_scalar_modules: Tuple[str, ...] = (
        "repro.core.single", "repro.core.dual", "repro.core.multi",
        "repro.core.two_ahead")
    #: The vectorized engine module that must mirror the scalar state.
    parity_fast_module: str = "repro.core.fast"
    #: Scalar-only state fields exempt from the contract (diagnostics
    #: the fast path never needs).  Shrink-only: new engine state must
    #: be taught to the fast engine, not exempted.
    parity_exempt: Tuple[str, ...] = ("recovery_log",)

    # -- env registry (REP4xx) -----------------------------------------
    #: Module declaring every REPRO_* variable (repro.envvars.REGISTRY).
    env_registry_module: str = "repro.envvars"
    #: Project-relative docs that must mention each declared variable.
    env_docs: Tuple[str, ...] = ("README.md", "docs")

    # -- exception hygiene (REP5xx) ------------------------------------
    #: Modules allowed to catch BaseException (resilience wrappers).
    exception_sanctioned: Tuple[str, ...] = ("repro.runtime.resilience",)

    # -- async safety (REP6xx) -----------------------------------------
    #: Packages whose ``async def`` bodies are held to the event-loop
    #: discipline rules (blocking calls, lock-held awaits, swallowed
    #: cancellation).
    async_packages: Tuple[str, ...] = ("repro.serve",)


def _str_tuple(value: object, key: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or \
            not all(isinstance(item, str) for item in value):
        raise ConfigError(f"[tool.reprolint] {key} must be a list "
                          f"of strings")
    return tuple(value)


def _apply_table(config: LintConfig, table: Mapping[str, object],
                 project_root: Path) -> LintConfig:
    updates: Dict[str, object] = {"project_root": project_root}
    simple_lists = {
        "paths": "paths",
        "exclude": "exclude",
        "select": "select",
        "ignore": "ignore",
    }
    for key, attr in simple_lists.items():
        if key in table:
            updates[attr] = _str_tuple(table[key], key)

    ppi = table.get("per-path-ignores")
    if ppi is not None:
        if not isinstance(ppi, dict):
            raise ConfigError("[tool.reprolint] per-path-ignores must "
                              "be a table of path -> rule list")
        updates["per_path_ignores"] = {
            str(prefix): _str_tuple(rules, f"per-path-ignores.{prefix}")
            for prefix, rules in ppi.items()
        }

    nested = {
        ("determinism", "packages"): "determinism_packages",
        ("determinism", "env-allowed"): "env_read_allowed",
        ("dtype", "modules"): "dtype_modules",
        ("parity", "scalar-modules"): "parity_scalar_modules",
        ("parity", "exempt"): "parity_exempt",
        ("env", "docs"): "env_docs",
        ("exceptions", "sanctioned"): "exception_sanctioned",
        ("async", "packages"): "async_packages",
    }
    for (section, key), attr in nested.items():
        sub = table.get(section)
        if isinstance(sub, dict) and key in sub:
            updates[attr] = _str_tuple(sub[key], f"{section}.{key}")
    for section, key, attr in (
            ("parity", "fast-module", "parity_fast_module"),
            ("env", "registry-module", "env_registry_module")):
        sub = table.get(section)
        if isinstance(sub, dict) and key in sub:
            value = sub[key]
            if not isinstance(value, str):
                raise ConfigError(f"[tool.reprolint] {section}.{key} "
                                  f"must be a string")
            updates[attr] = value
    return replace(config, **updates)  # type: ignore[arg-type]


def _toml_loads(text: str, source: Path) -> Optional[Mapping[str, object]]:
    """Parse TOML with the stdlib parser; None when it is unavailable.

    ``tomllib`` landed in Python 3.11; on older interpreters the tool
    degrades to built-in defaults instead of requiring a third-party
    parser.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        return None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"invalid TOML in {source}: {exc}") from None


def from_pyproject(pyproject: Path) -> LintConfig:
    """Config from one ``pyproject.toml`` (defaults if no table)."""
    root = pyproject.parent.resolve()
    base = LintConfig(project_root=root)
    try:
        text = pyproject.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read {pyproject}: {exc}") from None
    data = _toml_loads(text, pyproject)
    if data is None:
        return base
    tool = data.get("tool")
    table = tool.get("reprolint") if isinstance(tool, dict) else None
    if table is None:
        return base
    if not isinstance(table, dict):
        raise ConfigError("[tool.reprolint] must be a table")
    return _apply_table(base, table, root)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Optional[Path] = None,
                explicit: Optional[Path] = None,
                isolated: bool = False) -> LintConfig:
    """Resolve the active config the way the CLI does.

    ``isolated`` skips pyproject discovery entirely; ``explicit`` names
    a pyproject file; otherwise the nearest pyproject above ``start``
    (default: the working directory) is used, falling back to pure
    defaults when none exists.
    """
    if isolated:
        return LintConfig(project_root=(start or Path.cwd()).resolve())
    if explicit is not None:
        if not explicit.is_file():
            raise ConfigError(f"config file not found: {explicit}")
        return from_pyproject(explicit)
    found = find_pyproject(start or Path.cwd())
    if found is None:
        return LintConfig(project_root=(start or Path.cwd()).resolve())
    return from_pyproject(found)
