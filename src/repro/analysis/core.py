"""reprolint framework core: findings, file walking, checker dispatch.

The framework is deliberately small: a checker is a class with a
``rules`` tuple (:class:`RuleSpec`), a per-file hook
(:meth:`Checker.check_file`) receiving a parsed :class:`FileContext`,
and an optional :meth:`Checker.finish` hook for cross-file contracts
(parity, env registry).  :func:`run_analysis` walks the requested
paths, runs every registered checker, and post-filters the raw findings
through rule selection (``--select``/``--ignore``), per-path ignore
tables, and per-line ``# reprolint: disable=RULE`` pragmas.

Rule identifiers are ``REP`` + three digits; the hundreds digit groups
them by checker (1xx determinism, 2xx dtype-safety, 3xx parity
contract, 4xx env registry, 5xx exception hygiene).  Selection matches
by prefix, so ``--select REP1`` enables every determinism rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig

SEVERITY_ERROR = "error"


@dataclass(frozen=True)
class RuleSpec:
    """Identity and documentation of one lint rule."""

    id: str
    name: str
    summary: str
    hint: str = ""


#: Pseudo-rule reported for files the framework itself cannot parse.
PARSE_RULE = RuleSpec(
    id="REP001",
    name="syntax-error",
    summary="File could not be parsed as Python.",
    hint="Fix the syntax error; unparseable files cannot be analysed.",
)


@dataclass
class Finding:
    """One structured lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: str = SEVERITY_ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text


@dataclass
class FileContext:
    """One parsed source file handed to every checker."""

    path: Path
    relpath: str
    module: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def finding(self, rule: RuleSpec, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        """Finding anchored at ``node`` in this file."""
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint if hint is None else hint,
        )


class Checker:
    """Base class: per-file visitation plus an optional finish phase."""

    rules: Tuple[RuleSpec, ...] = ()

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self) -> Iterable[Finding]:
        return ()


class ImportMap:
    """Local-name → dotted-origin map for one module's imports.

    Tracks ``import x``, ``import x as y`` and ``from x import y [as z]``
    at any nesting level, so attribute chains like ``np.random.rand``
    resolve to canonical dotted names (``numpy.random.rand``) no matter
    how the module was aliased.  Relative imports and unknown heads
    resolve to ``None`` — checkers only act on names they can prove.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.names[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an attribute/name chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.names.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


def module_name(relpath: str) -> str:
    """Dotted module name of a project-relative ``.py`` path.

    Paths inside a ``repro`` package tree (``src/repro/...``, or fixture
    trees like ``tests/analysis/fixtures/repro/...``) map to their
    ``repro.*`` dotted name, so path-scoped rules apply to fixtures the
    same way they apply to the real tree.  Anything else maps to its
    plain dotted relative path.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[last:]
    return ".".join(parts)


def in_packages(module: str, packages: Sequence[str]) -> bool:
    """True when ``module`` is any listed package or inside one."""
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def rule_matches(rule: str, patterns: Sequence[str]) -> bool:
    """Prefix match: ``REP1`` matches ``REP104``; exact ids match too."""
    return any(rule.startswith(pattern) for pattern in patterns if pattern)


def rule_enabled(rule: str, select: Sequence[str],
                 ignore: Sequence[str]) -> bool:
    if select and not rule_matches(rule, select):
        return False
    return not rule_matches(rule, ignore)


_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def pragma_codes(line: str) -> Tuple[str, ...]:
    """Rule ids disabled by an inline pragma on ``line`` (may be 'all')."""
    match = _PRAGMA_RE.search(line)
    if not match:
        return ()
    return tuple(code.strip() for code in match.group(1).split(",")
                 if code.strip())


def _suppressed(finding: Finding, lines: Optional[Tuple[str, ...]],
                project_root: Path) -> bool:
    if lines is None:
        try:
            text = (project_root / finding.path).read_text()
        except OSError:
            return False
        lines = tuple(text.splitlines())
    if not 1 <= finding.line <= len(lines):
        return False
    codes = pragma_codes(lines[finding.line - 1])
    return "all" in codes or rule_matches(finding.rule, codes)


def iter_python_files(paths: Sequence[Path],
                      config: LintConfig) -> List[Path]:
    """Deterministically ordered ``.py`` files under ``paths``.

    ``config.exclude`` entries are project-relative path prefixes;
    matching files are skipped even when a parent directory was passed
    explicitly.
    """
    seen: set = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = _relpath(candidate, config.project_root)
            if any(rel == entry or rel.startswith(entry.rstrip("/") + "/")
                   for entry in config.exclude):
                continue
            out.append(candidate)
    return out


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: List[Finding]
    n_files: int

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))


def run_analysis(paths: Sequence[Path], config: LintConfig,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> AnalysisResult:
    """Lint ``paths`` with every registered checker, post-filtered.

    ``select``/``ignore`` override the config's lists when given (the
    CLI passes its flags through here).
    """
    from .checkers import ALL_CHECKERS

    chosen_select = tuple(select) if select is not None else config.select
    chosen_ignore = tuple(ignore) if ignore is not None else config.ignore

    files = iter_python_files(paths, config)
    checkers: List[Checker] = [cls(config) for cls in ALL_CHECKERS]
    raw: List[Finding] = []
    lines_by_rel: Dict[str, Tuple[str, ...]] = {}

    for path in files:
        rel = _relpath(path, config.project_root)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            raw.append(Finding(
                rule=PARSE_RULE.id, path=rel, line=line, col=1,
                message=f"cannot parse file: {exc}",
                hint=PARSE_RULE.hint))
            continue
        ctx = FileContext(path=path, relpath=rel, module=module_name(rel),
                          tree=tree, lines=tuple(source.splitlines()))
        lines_by_rel[rel] = ctx.lines
        for checker in checkers:
            raw.extend(checker.check_file(ctx))

    for checker in checkers:
        raw.extend(checker.finish())

    findings: List[Finding] = []
    for finding in raw:
        if not rule_enabled(finding.rule, chosen_select, chosen_ignore):
            continue
        if any(finding.path.startswith(prefix)
               and rule_matches(finding.rule, rules)
               for prefix, rules in config.per_path_ignores.items()):
            continue
        if _suppressed(finding, lines_by_rel.get(finding.path),
                       config.project_root):
            continue
        findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return AnalysisResult(findings=findings, n_files=len(files))
