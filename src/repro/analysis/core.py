"""reprolint framework core: findings, file walking, checker dispatch.

The framework is deliberately small: a checker is a class with a
``rules`` tuple (:class:`RuleSpec`), a per-file hook
(:meth:`Checker.check_file`) receiving a parsed :class:`FileContext`,
and an optional :meth:`Checker.finish` hook for cross-file contracts
(parity, env registry).  :func:`run_analysis` walks the requested
paths, runs every registered checker, and post-filters the raw findings
through rule selection (``--select``/``--ignore``), per-path ignore
tables, and per-line ``# reprolint: disable=RULE`` pragmas.

Rule identifiers are ``REP`` + three digits; the hundreds digit groups
them by checker (1xx determinism, 2xx dtype-safety, 3xx parity
contract, 4xx env registry, 5xx exception hygiene, 6xx async-safety,
7xx generated-kernel contract).  Selection matches by prefix, so
``--select REP1`` enables every determinism rule.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from .config import LintConfig

if TYPE_CHECKING:
    from .flow import ModuleFlow

SEVERITY_ERROR = "error"

#: Human-readable family label per hundreds digit of the rule id.
FAMILIES: Dict[str, str] = {
    "0": "framework",
    "1": "determinism",
    "2": "dtype",
    "3": "parity",
    "4": "env",
    "5": "exceptions",
    "6": "async",
    "7": "kernel",
}


def rule_family(rule: str) -> str:
    """Family label of a rule id (``REP601`` → ``async``)."""
    digit = rule[3:4] if rule.startswith("REP") else ""
    return FAMILIES.get(digit, "unknown")


@dataclass(frozen=True)
class RuleSpec:
    """Identity and documentation of one lint rule."""

    id: str
    name: str
    summary: str
    hint: str = ""


#: Pseudo-rule reported for files the framework itself cannot parse.
PARSE_RULE = RuleSpec(
    id="REP001",
    name="syntax-error",
    summary="File could not be parsed as Python.",
    hint="Fix the syntax error; unparseable files cannot be analysed.",
)


@dataclass
class Finding:
    """One structured lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: str = SEVERITY_ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def family(self) -> str:
        return rule_family(self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text


@dataclass
class FileContext:
    """One parsed source file handed to every checker."""

    path: Path
    relpath: str
    module: str
    tree: ast.Module
    lines: Tuple[str, ...]
    _flow: Optional["ModuleFlow"] = field(default=None, repr=False,
                                          compare=False)

    def flow(self) -> "ModuleFlow":
        """This file's dataflow analysis, built once and shared.

        Every checker that needs CFG/reaching-defs/call-summary data
        calls this; the first caller pays the construction cost.
        """
        if self._flow is None:
            from .flow import ModuleFlow
            self._flow = ModuleFlow(self.tree, self.module)
        return self._flow

    def finding(self, rule: RuleSpec, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        """Finding anchored at ``node`` in this file."""
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint if hint is None else hint,
        )


class Checker:
    """Base class: per-file visitation plus an optional finish phase."""

    rules: Tuple[RuleSpec, ...] = ()

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self) -> Iterable[Finding]:
        return ()


class ImportMap:
    """Local-name → dotted-origin map for one module's imports.

    Tracks ``import x``, ``import x as y`` and ``from x import y [as z]``
    at any nesting level, so attribute chains like ``np.random.rand``
    resolve to canonical dotted names (``numpy.random.rand``) no matter
    how the module was aliased.  When the owning module's dotted name is
    supplied, relative imports resolve against it (``from ..runtime
    import resilience`` inside ``repro.serve.service`` resolves to
    ``repro.runtime.resilience``); without it, relative imports and
    unknown heads resolve to ``None`` — checkers only act on names they
    can prove.
    """

    def __init__(self, tree: ast.AST,
                 module: Optional[str] = None) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.names[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module
                if node.level:
                    base = _resolve_relative(module, node.level,
                                             node.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{base}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an attribute/name chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.names.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


def _resolve_relative(module: Optional[str], level: int,
                      target: Optional[str]) -> Optional[str]:
    """Base package of a relative import seen from ``module``.

    ``module`` is the importing module's dotted name (not its package):
    one leading dot strips the module's own last component, each extra
    dot strips one more.  Packages analysed through their ``__init__``
    lose a level here (the dotted name does not say it is a package);
    the resulting miss resolves to ``None``-like unknown names, never a
    wrong positive for the dotted-prefix rules.
    """
    if module is None:
        return None
    parts = module.split(".")
    if level > len(parts):
        return None
    base_parts = parts[:len(parts) - level]
    if target:
        base_parts.append(target)
    if not base_parts:
        return None
    return ".".join(base_parts)


def module_name(relpath: str) -> str:
    """Dotted module name of a project-relative ``.py`` path.

    Paths inside a ``repro`` package tree (``src/repro/...``, or fixture
    trees like ``tests/analysis/fixtures/repro/...``) map to their
    ``repro.*`` dotted name, so path-scoped rules apply to fixtures the
    same way they apply to the real tree.  Anything else maps to its
    plain dotted relative path.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[last:]
    return ".".join(parts)


def in_packages(module: str, packages: Sequence[str]) -> bool:
    """True when ``module`` is any listed package or inside one."""
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def rule_matches(rule: str, patterns: Sequence[str]) -> bool:
    """Prefix match: ``REP1`` matches ``REP104``; exact ids match too."""
    return any(rule.startswith(pattern) for pattern in patterns if pattern)


def rule_enabled(rule: str, select: Sequence[str],
                 ignore: Sequence[str]) -> bool:
    if select and not rule_matches(rule, select):
        return False
    return not rule_matches(rule, ignore)


_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def pragma_codes(line: str) -> Tuple[str, ...]:
    """Rule ids disabled by an inline pragma on ``line`` (may be 'all')."""
    match = _PRAGMA_RE.search(line)
    if not match:
        return ()
    return tuple(code.strip() for code in match.group(1).split(",")
                 if code.strip())


def _suppressed(finding: Finding, lines: Optional[Tuple[str, ...]],
                project_root: Path) -> bool:
    if lines is None:
        try:
            text = (project_root / finding.path).read_text()
        except OSError:
            return False
        lines = tuple(text.splitlines())
    if not 1 <= finding.line <= len(lines):
        return False
    codes = pragma_codes(lines[finding.line - 1])
    return "all" in codes or rule_matches(finding.rule, codes)


def iter_python_files(paths: Sequence[Path],
                      config: LintConfig) -> List[Path]:
    """Deterministically ordered ``.py`` files under ``paths``.

    ``config.exclude`` entries are project-relative path prefixes;
    matching files are skipped even when a parent directory was passed
    explicitly.
    """
    seen: set = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = _relpath(candidate, config.project_root)
            if any(rel == entry or rel.startswith(entry.rstrip("/") + "/")
                   for entry in config.exclude):
                continue
            out.append(candidate)
    return out


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: List[Finding]
    n_files: int
    #: Cumulative checker wall-time per rule family, for the JSON
    #: report footer (checker regressions show up in CI logs).
    timings_s: Dict[str, float] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))


def filter_findings(raw: Iterable[Finding], config: LintConfig,
                    select: Sequence[str], ignore: Sequence[str],
                    lines_by_rel: Dict[str, Tuple[str, ...]]
                    ) -> List[Finding]:
    """Post-filter raw findings: selection, per-path tables, pragmas.

    One code path for every finding source — files on disk and
    generated kernel sources alike — so ``--select``/``--ignore``
    prefixes and ``# reprolint: disable=RULE`` pragmas behave
    uniformly.  ``lines_by_rel`` supplies source lines for paths that
    do not exist on disk (synthetic ``<generated:...>`` names).
    """
    findings: List[Finding] = []
    for finding in raw:
        if not rule_enabled(finding.rule, select, ignore):
            continue
        if any(finding.path.startswith(prefix)
               and rule_matches(finding.rule, rules)
               for prefix, rules in config.per_path_ignores.items()):
            continue
        if _suppressed(finding, lines_by_rel.get(finding.path),
                       config.project_root):
            continue
        findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def checker_family(checker: Checker) -> str:
    """Rule family a checker's wall-time is attributed to."""
    if checker.rules:
        return rule_family(checker.rules[0].id)
    return "unknown"


def run_analysis(paths: Sequence[Path], config: LintConfig,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> AnalysisResult:
    """Lint ``paths`` with every registered checker, post-filtered.

    ``select``/``ignore`` override the config's lists when given (the
    CLI passes its flags through here).
    """
    from .checkers import ALL_CHECKERS

    chosen_select = tuple(select) if select is not None else config.select
    chosen_ignore = tuple(ignore) if ignore is not None else config.ignore

    files = iter_python_files(paths, config)
    checkers: List[Checker] = [cls(config) for cls in ALL_CHECKERS]
    raw: List[Finding] = []
    lines_by_rel: Dict[str, Tuple[str, ...]] = {}
    timings: Dict[str, float] = {}

    def timed(checker: Checker, produce: Iterable[Finding]) -> None:
        start = time.perf_counter()
        raw.extend(produce)
        family = checker_family(checker)
        timings[family] = (timings.get(family, 0.0)
                           + time.perf_counter() - start)

    for path in files:
        rel = _relpath(path, config.project_root)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            raw.append(Finding(
                rule=PARSE_RULE.id, path=rel, line=line, col=1,
                message=f"cannot parse file: {exc}",
                hint=PARSE_RULE.hint))
            continue
        ctx = FileContext(path=path, relpath=rel, module=module_name(rel),
                          tree=tree, lines=tuple(source.splitlines()))
        lines_by_rel[rel] = ctx.lines
        for checker in checkers:
            timed(checker, checker.check_file(ctx))

    for checker in checkers:
        timed(checker, checker.finish())

    findings = filter_findings(raw, config, chosen_select, chosen_ignore,
                               lines_by_rel)
    return AnalysisResult(
        findings=findings, n_files=len(files),
        timings_s={k: round(v, 4) for k, v in sorted(timings.items())})
