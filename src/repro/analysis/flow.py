"""Per-function dataflow: CFG, reaching definitions, call summaries.

The original reprolint checkers are syntactic — they judge one AST node
at a time.  That is enough for "``np.zeros`` without a dtype" but blind
to anything that flows *between* statements: a width pinned on one line
and lost two assignments later, a lock acquired in one block and held
across an ``await`` in another, a sync helper that buries a
``time.sleep`` three calls deep under an ``async def``.

This module is the shared dataflow tier those judgements run on:

* :func:`build_cfg` — a per-function control-flow graph of basic
  blocks with explicit edges for branches, loops (including back
  edges), ``break``/``continue``, and the may-raise edges from every
  ``try``-body statement into its handlers;
* :class:`FunctionFlow` — classic reaching-definitions over that CFG
  (worklist to fixpoint) plus def-use chains: for every ``Name`` load,
  which definitions may reach it, and for every definition, where it
  is used;
* :class:`ModuleFlow` — one object per file, built lazily by
  :meth:`repro.analysis.core.FileContext.flow` and shared by every
  checker, carrying a per-function call-context summary
  (:class:`FunctionSummary`: ``is_async`` / ``may_block`` /
  ``acquires_lock``) with ``may_block`` closed transitively over the
  module-local call graph.

Nested function bodies are analysed as their own functions; the
enclosing function's graph treats the ``def`` as a single definition
of the name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple, Union)

from .core import ImportMap

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Dotted callables that block the calling thread (event-loop poison
#: under ``async def``).  Extended per-project via config.
BLOCKING_CALLS: FrozenSet[str] = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid", "os.wait",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})

#: Dotted-prefix package roots whose entry points run whole sweeps —
#: never to be called directly from an event loop.
BLOCKING_PREFIXES: Tuple[str, ...] = (
    "repro.runtime.resilience.",
    "repro.runtime.executor.",
    "repro.workloads.",
)

#: Method names that block regardless of receiver type.  ``result`` is
#: concurrent.futures / asyncio Future; ``shutdown`` and ``join`` wait
#: for worker threads; a bare builtin ``open`` is sync file IO.
BLOCKING_METHODS: FrozenSet[str] = frozenset({
    "result", "shutdown", "join",
    "read_text", "read_bytes", "write_text", "write_bytes",
})

#: Constructors whose instances are thread locks (sync acquire).
LOCK_CTORS: FrozenSet[str] = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


@dataclass(frozen=True)
class Definition:
    """One definition of a local name."""

    index: int
    name: str
    #: AST node the definition anchors to (target, arg, or statement).
    node: ast.AST
    #: Right-hand side when the definition is a single-name assignment
    #: (``x = <expr>``); None for opaque defs (args, loops, del, ...).
    value: Optional[ast.expr] = None


@dataclass
class BasicBlock:
    """A straight-line run of statements with explicit CFG edges."""

    index: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Definition extraction
# ----------------------------------------------------------------------

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def _walk_in_scope(node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` that does not descend into nested function scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_BARRIERS):
                continue
            stack.append(child)


def _target_names(target: ast.expr) -> List[ast.expr]:
    """The ``Name`` nodes a (possibly nested) assignment target binds."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[ast.expr] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # Attribute / Subscript stores bind no local name


def _stmt_definitions(stmt: ast.stmt) -> List[Tuple[str, ast.AST,
                                                    Optional[ast.expr]]]:
    """(name, anchor, value) triples this statement defines, in order."""
    defs: List[Tuple[str, ast.AST, Optional[ast.expr]]] = []
    if isinstance(stmt, ast.Assign):
        single = (len(stmt.targets) == 1
                  and isinstance(stmt.targets[0], ast.Name))
        for target in stmt.targets:
            for name_node in _target_names(target):
                assert isinstance(name_node, ast.Name)
                defs.append((name_node.id, name_node,
                             stmt.value if single else None))
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            defs.append((stmt.target.id, stmt.target, stmt.value))
        elif isinstance(stmt.target, ast.Name):
            return []  # bare annotation binds nothing
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            defs.append((stmt.target.id, stmt.target, None))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name_node in _target_names(stmt.target):
            assert isinstance(name_node, ast.Name)
            defs.append((name_node.id, name_node, None))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name_node in _target_names(item.optional_vars):
                    assert isinstance(name_node, ast.Name)
                    defs.append((name_node.id, name_node,
                                 item.context_expr
                                 if isinstance(item.optional_vars,
                                               ast.Name) else None))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        defs.append((stmt.name, stmt, None))
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            local = alias.asname or alias.name.split(".")[0]
            defs.append((local, stmt, None))
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            defs.append((alias.asname or alias.name, stmt, None))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            for name_node in _target_names(target):
                assert isinstance(name_node, ast.Name)
                defs.append((name_node.id, name_node, None))
    # Walrus definitions anywhere in the statement's expressions.
    for node in _walk_in_scope(stmt):
        if isinstance(node, ast.NamedExpr) \
                and isinstance(node.target, ast.Name):
            defs.append((node.target.id, node.target, node.value))
    return defs


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

class _CFGBuilder:
    """Builds the block graph for one function body."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = [BasicBlock(0), BasicBlock(1)]
        self.entry = 0
        self.exit = 1
        self.current = self._new_block()
        self._link(self.entry, self.current)
        self.reachable = True
        #: (continue_target, break_targets-accumulator) per open loop.
        self._loops: List[Tuple[int, List[int]]] = []
        #: Handler-entry block lists of enclosing try statements.
        self._handlers: List[List[int]] = []

    # -- plumbing -------------------------------------------------------

    def _new_block(self) -> int:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _link(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def _start_block(self, *preds: int) -> int:
        block = self._new_block()
        for pred in preds:
            self._link(pred, block)
        return block

    def _append(self, stmt: ast.stmt) -> None:
        """Place one straight-line statement, splitting inside try."""
        if not self.reachable:
            self.current = self._new_block()  # dead code: no preds
            self.reachable = True
        if self._handlers:
            # Statements inside a try body may raise after any prefix:
            # give each its own block with an edge into every handler.
            if self.blocks[self.current].stmts:
                self.current = self._start_block(self.current)
            self.blocks[self.current].stmts.append(stmt)
            for handler_entry in self._handlers[-1]:
                self._link(self.current, handler_entry)
        else:
            self.blocks[self.current].stmts.append(stmt)

    # -- statements -----------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> None:
        self._visit_body(body)
        if self.reachable:
            self._link(self.current, self.exit)

    def _visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._append(stmt)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._link(self.current, self.exit)
            self.reachable = False
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)  # may-raise edges added by _append
            if not self._handlers:
                self._link(self.current, self.exit)
            self.reachable = False
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self._loops:
                self._loops[-1][1].append(self.current)
            self.reachable = False
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self._loops:
                self._link(self.current, self._loops[-1][0])
            self.reachable = False
        else:
            self._append(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(stmt)  # the test evaluates in the current block
        cond_block = self.current
        cond_reachable = self.reachable

        self.current = self._start_block(cond_block)
        self.reachable = cond_reachable
        self._visit_body(stmt.body)
        then_end = self.current if self.reachable else None

        else_end: Optional[int]
        if stmt.orelse:
            self.current = self._start_block(cond_block)
            self.reachable = cond_reachable
            self._visit_body(stmt.orelse)
            else_end = self.current if self.reachable else None
        else:
            else_end = cond_block

        join = self._new_block()
        for end in (then_end, else_end):
            if end is not None:
                self._link(end, join)
        self.current = join
        self.reachable = bool(self.blocks[join].preds)

    def _visit_while(self, stmt: ast.While) -> None:
        header = self._start_block(self.current)
        self.blocks[header].stmts.append(stmt)  # test re-evaluates here
        if self._handlers:
            for handler_entry in self._handlers[-1]:
                self._link(header, handler_entry)
        breaks: List[int] = []
        self._loops.append((header, breaks))
        self.current = self._start_block(header)
        self.reachable = True
        self._visit_body(stmt.body)
        if self.reachable:
            self._link(self.current, header)  # back edge
        self._loops.pop()

        after = self._new_block()
        self._link(header, after)  # loop test goes false
        if stmt.orelse:
            self.current = after
            self.reachable = True
            self._visit_body(stmt.orelse)
            after = self.current
        for brk in breaks:
            self._link(brk, after if not stmt.orelse else after)
        if stmt.orelse:
            # break skips the else clause: link breaks past it.
            post = self._new_block()
            self._link(after, post)
            for brk in breaks:
                self._link(brk, post)
            after = post
        self.current = after
        self.reachable = bool(self.blocks[after].preds)

    def _visit_for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        header = self._start_block(self.current)
        self.blocks[header].stmts.append(stmt)  # iter + target binding
        if self._handlers:
            for handler_entry in self._handlers[-1]:
                self._link(header, handler_entry)
        breaks: List[int] = []
        self._loops.append((header, breaks))
        self.current = self._start_block(header)
        self.reachable = True
        self._visit_body(stmt.body)
        if self.reachable:
            self._link(self.current, header)
        self._loops.pop()

        after = self._new_block()
        self._link(header, after)  # iterator exhausted
        if stmt.orelse:
            self.current = after
            self.reachable = True
            self._visit_body(stmt.orelse)
            post = self._new_block()
            if self.reachable:
                self._link(self.current, post)
            for brk in breaks:
                self._link(brk, post)
            after = post
        else:
            for brk in breaks:
                self._link(brk, after)
        self.current = after
        self.reachable = bool(self.blocks[after].preds)

    def _visit_try(self, stmt: ast.Try) -> None:
        handler_entries = [self._new_block() for _ in stmt.handlers]
        pre = self.current
        pre_reachable = self.reachable
        # An exception may fire before any try-body statement runs.
        for handler_entry in handler_entries:
            self._link(pre, handler_entry)

        self._handlers.append(handler_entries)
        self.current = self._start_block(pre)
        self.reachable = pre_reachable
        self._visit_body(stmt.body)
        body_end = self.current if self.reachable else None
        self._handlers.pop()

        ends: List[int] = []
        if body_end is not None:
            if stmt.orelse:
                self.current = self._start_block(body_end)
                self.reachable = True
                self._visit_body(stmt.orelse)
                if self.reachable:
                    ends.append(self.current)
            else:
                ends.append(body_end)

        for handler, handler_entry in zip(stmt.handlers, handler_entries):
            self.current = handler_entry
            self.reachable = True
            if handler.name is not None:
                # The bound exception name is a definition anchored at
                # the handler itself.
                self.blocks[handler_entry].stmts.append(handler)
            self._visit_body(handler.body)
            if self.reachable:
                ends.append(self.current)

        join = self._new_block()
        for end in ends:
            self._link(end, join)
        self.current = join
        self.reachable = bool(self.blocks[join].preds)
        if stmt.finalbody:
            # Approximation: the finally body runs on the normal paths;
            # its statements land after the join.
            if not self.reachable:
                # finally still runs on the exceptional path.
                self.reachable = True
                self._link(pre, join)
            self._visit_body(stmt.finalbody)


def build_cfg(func: FunctionNode) -> Tuple[List[BasicBlock], int, int]:
    """(blocks, entry index, exit index) for one function body."""
    builder = _CFGBuilder()
    builder.build(func.body)
    return builder.blocks, builder.entry, builder.exit


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------

class FunctionFlow:
    """Reaching definitions and def-use chains for one function."""

    def __init__(self, func: FunctionNode, qualname: str) -> None:
        self.func = func
        self.qualname = qualname
        self.is_async = isinstance(func, ast.AsyncFunctionDef)
        self.blocks, self.entry, self.exit = build_cfg(func)

        self.definitions: List[Definition] = []
        self._params: List[int] = []
        for arg in self._all_args(func.args):
            self._params.append(self._add_def(arg.arg, arg, None))

        #: block index -> ordered (def ids defined by each statement).
        self._block_defs: List[List[List[int]]] = []
        for block in self.blocks:
            per_stmt: List[List[int]] = []
            for stmt in block.stmts:
                if isinstance(stmt, ast.ExceptHandler):
                    ids = ([self._add_def(stmt.name, stmt, None)]
                           if stmt.name else [])
                else:
                    ids = [self._add_def(name, node, value)
                           for name, node, value
                           in _stmt_definitions(stmt)]
                per_stmt.append(ids)
            self._block_defs.append(per_stmt)

        self.block_in: List[Dict[str, FrozenSet[int]]] = \
            self._solve_reaching()
        #: id(ast.Name load) -> reaching definition ids.
        self.use_defs: Dict[int, FrozenSet[int]] = {}
        #: definition id -> Name loads it reaches.
        self.def_uses: Dict[int, List[ast.Name]] = {
            d.index: [] for d in self.definitions}
        #: id(statement) -> containing block index.
        self.stmt_block: Dict[int, int] = {}
        self._chain_uses()

    # -- construction helpers -------------------------------------------

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        every: List[ast.arg] = []
        every.extend(getattr(args, "posonlyargs", []))
        every.extend(args.args)
        if args.vararg:
            every.append(args.vararg)
        every.extend(args.kwonlyargs)
        if args.kwarg:
            every.append(args.kwarg)
        return every

    def _add_def(self, name: str, node: ast.AST,
                 value: Optional[ast.expr]) -> int:
        definition = Definition(len(self.definitions), name, node, value)
        self.definitions.append(definition)
        return definition.index

    # -- dataflow -------------------------------------------------------

    def _transfer(self, state: Dict[str, FrozenSet[int]],
                  block_index: int) -> Dict[str, FrozenSet[int]]:
        out = dict(state)
        for def_ids in self._block_defs[block_index]:
            for def_id in def_ids:
                out[self.definitions[def_id].name] = frozenset({def_id})
        return out

    def _solve_reaching(self) -> List[Dict[str, FrozenSet[int]]]:
        n = len(self.blocks)
        entry_state: Dict[str, FrozenSet[int]] = {}
        for def_id in self._params:
            entry_state[self.definitions[def_id].name] = \
                frozenset({def_id})
        block_in: List[Dict[str, FrozenSet[int]]] = [{} for _ in range(n)]
        block_out: List[Dict[str, FrozenSet[int]]] = [{} for _ in range(n)]
        block_in[self.entry] = entry_state
        block_out[self.entry] = self._transfer(entry_state, self.entry)

        work = list(range(n))
        while work:
            index = work.pop(0)
            if index != self.entry:
                merged: Dict[str, FrozenSet[int]] = {}
                for pred in self.blocks[index].preds:
                    for name, ids in block_out[pred].items():
                        merged[name] = merged.get(name, frozenset()) | ids
                block_in[index] = merged
            new_out = self._transfer(block_in[index], index)
            if new_out != block_out[index]:
                block_out[index] = new_out
                for succ in self.blocks[index].succs:
                    if succ not in work:
                        work.append(succ)
        return block_in

    def _chain_uses(self) -> None:
        for block in self.blocks:
            state = dict(self.block_in[block.index])
            for stmt, def_ids in zip(block.stmts,
                                     self._block_defs[block.index]):
                self.stmt_block[id(stmt)] = block.index
                if not isinstance(stmt, ast.ExceptHandler):
                    for node in _walk_in_scope(stmt):
                        if isinstance(node, ast.Name) \
                                and isinstance(node.ctx, ast.Load):
                            ids = state.get(node.id)
                            if ids is not None:
                                self.use_defs[id(node)] = ids
                                for def_id in ids:
                                    self.def_uses[def_id].append(node)
                for def_id in def_ids:
                    state[self.definitions[def_id].name] = \
                        frozenset({def_id})

    # -- public queries -------------------------------------------------

    def reaching(self, name_node: ast.Name) -> Tuple[Definition, ...]:
        """Definitions that may reach this ``Name`` load."""
        ids = self.use_defs.get(id(name_node), frozenset())
        return tuple(self.definitions[i] for i in sorted(ids))

    def uses_of(self, def_id: int) -> Tuple[ast.Name, ...]:
        """Every ``Name`` load a definition may reach."""
        return tuple(self.def_uses.get(def_id, ()))

    def reachable_from(self, block_index: int) -> Set[int]:
        """Blocks reachable from ``block_index`` (inclusive)."""
        seen: Set[int] = set()
        stack = [block_index]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blocks[current].succs)
        return seen


# ----------------------------------------------------------------------
# Call-context summaries
# ----------------------------------------------------------------------

@dataclass
class FunctionSummary:
    """What a caller needs to know about one function."""

    qualname: str
    name: str
    is_async: bool
    #: Dotted blocking calls made directly (human-readable evidence).
    direct_blocking: Tuple[str, ...] = ()
    #: Local callee names (module functions or Class.method).
    local_calls: Tuple[str, ...] = ()
    acquires_lock: bool = False
    #: Closed transitively over the module-local call graph.
    may_block: bool = False

    @property
    def blocking_evidence(self) -> str:
        return ", ".join(self.direct_blocking)


def _is_blocking_dotted(dotted: str,
                        extra: Sequence[str] = ()) -> bool:
    if dotted in BLOCKING_CALLS or dotted in extra:
        return True
    return any(dotted.startswith(prefix) for prefix in BLOCKING_PREFIXES)


class ModuleFlow:
    """Every function's :class:`FunctionFlow` plus call summaries."""

    def __init__(self, tree: ast.Module, module: str,
                 extra_blocking: Sequence[str] = ()) -> None:
        self.module = module
        self.imports = ImportMap(tree, module=module)
        #: id(function node) -> its flow analysis.
        self.functions: Dict[int, FunctionFlow] = {}
        #: qualname -> summary.
        self.summaries: Dict[str, FunctionSummary] = {}
        self._extra_blocking = tuple(extra_blocking)
        self._collect(tree.body, prefix="")
        self._close_may_block()

    # -- collection -----------------------------------------------------

    def _collect(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                flow = FunctionFlow(stmt, qualname)
                self.functions[id(stmt)] = flow
                self.summaries[qualname] = self._summarize(stmt, qualname)
                self._collect(stmt.body, prefix=qualname + ".")
            elif isinstance(stmt, ast.ClassDef):
                self._collect(stmt.body, prefix=stmt.name + ".")
            elif isinstance(stmt, (ast.If, ast.Try, ast.With,
                                   ast.For, ast.While)):
                self._collect(_nested_stmts(stmt), prefix=prefix)

    def _summarize(self, func: FunctionNode,
                   qualname: str) -> FunctionSummary:
        blocking: List[str] = []
        calls: List[str] = []
        acquires = False
        class_prefix = (qualname.rsplit(".", 1)[0] + "."
                        if "." in qualname else "")
        for node in _walk_in_scope_body(func):
            if isinstance(node, ast.Call):
                dotted = self.imports.resolve(node.func)
                if dotted is not None:
                    if _is_blocking_dotted(dotted, self._extra_blocking):
                        blocking.append(dotted)
                    if dotted in LOCK_CTORS:
                        acquires = True
                local = self._local_callee(node.func, class_prefix)
                if local is not None:
                    calls.append(local)
                if _is_blocking_method(node):
                    blocking.append(_method_label(node))
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "acquire":
                    acquires = True
            elif isinstance(node, (ast.With,)):
                if any(self.lock_like(item.context_expr, func)
                       for item in node.items):
                    acquires = True
        return FunctionSummary(
            qualname=qualname,
            name=qualname.rsplit(".", 1)[-1],
            is_async=isinstance(func, ast.AsyncFunctionDef),
            direct_blocking=tuple(blocking),
            local_calls=tuple(dict.fromkeys(calls)),
            acquires_lock=acquires,
        )

    def _local_callee(self, func_expr: ast.expr,
                      class_prefix: str) -> Optional[str]:
        """Qualname of a module-local callee, when resolvable."""
        if isinstance(func_expr, ast.Name):
            return func_expr.id
        if isinstance(func_expr, ast.Attribute) \
                and isinstance(func_expr.value, ast.Name) \
                and func_expr.value.id in ("self", "cls"):
            return class_prefix + func_expr.attr if class_prefix else None
        return None

    def _close_may_block(self) -> None:
        for summary in self.summaries.values():
            summary.may_block = bool(summary.direct_blocking)
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                if summary.may_block:
                    continue
                for callee in summary.local_calls:
                    target = self.summaries.get(callee)
                    if target is not None and target.may_block \
                            and not target.is_async:
                        summary.may_block = True
                        changed = True
                        break

    # -- queries --------------------------------------------------------

    def flow_of(self, func: FunctionNode) -> FunctionFlow:
        """The per-function analysis for a function node."""
        return self.functions[id(func)]

    def summary_for_call(self, call: ast.Call,
                         enclosing: str) -> Optional[FunctionSummary]:
        """Module-local summary of a call's target, when resolvable."""
        class_prefix = (enclosing.rsplit(".", 1)[0] + "."
                        if "." in enclosing else "")
        local = self._local_callee(call.func, class_prefix)
        if local is None:
            return None
        return self.summaries.get(local)

    def lock_like(self, expr: ast.expr,
                  func: Optional[FunctionNode] = None) -> bool:
        """True when ``expr`` evaluates to a (sync) thread lock.

        Direct constructor calls are recognised syntactically; a bare
        name is resolved through the function's reaching definitions,
        so ``lock = threading.Lock()`` two statements earlier still
        counts — the dataflow half of the judgement.
        """
        if isinstance(expr, ast.Call):
            dotted = self.imports.resolve(expr.func)
            return dotted is not None and dotted in LOCK_CTORS
        if isinstance(expr, ast.Name) and func is not None:
            flow = self.functions.get(id(func))
            if flow is None:
                return False
            reaching = flow.reaching(expr)
            if not reaching:
                return False
            values = [d.value for d in reaching]
            return all(value is not None and self.lock_like(value)
                       for value in values)
        return False


def _nested_stmts(stmt: ast.stmt) -> List[ast.stmt]:
    """Statement bodies directly nested under a compound statement."""
    out: List[ast.stmt] = []
    for name in ("body", "orelse", "finalbody"):
        out.extend(getattr(stmt, name, []) or [])
    for handler in getattr(stmt, "handlers", []) or []:
        out.extend(handler.body)
    return out


def _walk_in_scope_body(func: FunctionNode) -> Iterable[ast.AST]:
    """Walk a function's own body, skipping nested function scopes."""
    for stmt in func.body:
        yield from _walk_in_scope(stmt)


def _is_blocking_method(call: ast.Call) -> bool:
    """Heuristic: a method call that blocks the calling thread.

    ``open(...)`` (sync file IO), ``fut.result()``, ``pool.shutdown()``
    with ``wait=True`` (the default), ``thread.join()`` and the
    ``pathlib`` read/write helpers.  ``shutdown(wait=False)`` does not
    block and is not flagged.
    """
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return True
    if not isinstance(call.func, ast.Attribute):
        return False
    attr = call.func.attr
    if attr not in BLOCKING_METHODS:
        return False
    if attr == "join" and call.args:
        return False  # str.join(iterable); thread/queue join take none
    if attr == "shutdown":
        for kw in call.keywords:
            if kw.arg == "wait" \
                    and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is False:
                return False
    return True


def _method_label(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return f"{call.func.id}(...)"
    assert isinstance(call.func, ast.Attribute)
    return f".{call.func.attr}(...)"
