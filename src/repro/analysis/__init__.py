"""reprolint — project-specific static analysis for the repro tree.

An AST-based checker framework (``python -m repro.analysis``) that
turns the repo's dynamic guarantees into static, pre-merge contracts:

* **determinism** (REP1xx) — no ambient RNG, wall-clock reads,
  hash-ordered iteration, or stray ``os.environ`` reads in the
  deterministic core;
* **dtype-safety** (REP2xx) — explicit ``dtype=`` discipline and no
  implicit integer-width upcasts in the numeric kernel modules;
* **parity contract** (REP3xx) — scalar engine state fields and the
  fast engine's snapshot/replay set stay in one-to-one correspondence;
* **env registry** (REP4xx) — every ``REPRO_*`` variable is declared
  in :mod:`repro.envvars` and documented;
* **exception hygiene** (REP5xx) — broad exception trapping only in
  the sanctioned resilience wrappers.

See ``docs/static-analysis.md`` for the full rule catalogue and
``[tool.reprolint]`` in ``pyproject.toml`` for the project
configuration.
"""

from __future__ import annotations

from .checkers import ALL_CHECKERS, all_rules
from .config import ConfigError, LintConfig, from_pyproject, load_config
from .core import (
    AnalysisResult,
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    run_analysis,
)
from .report import render_human, render_json

__all__ = [
    "ALL_CHECKERS",
    "AnalysisResult",
    "Checker",
    "ConfigError",
    "FileContext",
    "Finding",
    "LintConfig",
    "RuleSpec",
    "all_rules",
    "from_pyproject",
    "load_config",
    "render_human",
    "render_json",
    "run_analysis",
]
