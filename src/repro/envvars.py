"""Central registry of every ``REPRO_*`` environment variable.

Every runtime knob the project reads from the environment is declared
here, with documentation, so there is exactly one place to discover
them.  The reprolint rule ``REP401`` (see :mod:`repro.analysis`)
statically verifies that every ``REPRO_*`` name appearing anywhere in
the source is declared in this registry, and ``REP402`` verifies that
every declared entry is documented in the README or under ``docs/``.

Modules that *parse* their variable (validation, defaults, typed
accessors) keep doing so at their own config entry points — this module
only owns the declarations and the raw read used by modules that are
not themselves sanctioned config entry points (reprolint ``REP104``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable.

    Attributes:
        name: The exact ``REPRO_*`` variable name.
        summary: One-line description of what the variable controls.
        default: Human-readable behaviour when unset.
        owner: Dotted module that validates and consumes the variable.
    """

    name: str
    summary: str
    default: str
    owner: str


#: Every environment variable the project reads, alphabetically.
REGISTRY: Tuple[EnvVar, ...] = (
    EnvVar(
        name="REPRO_BACKEND",
        summary="Kernel backend for the fast engine tier: 'numpy' "
                "(pure-numpy kernels), 'compiled' (exec-generated "
                "shape-specialized kernels) or 'numba' (njit loops; "
                "degrades to 'compiled' when numba is absent); all "
                "bit-identical.",
        default="numpy",
        owner="repro.core.backends",
    ),
    EnvVar(
        name="REPRO_CACHE_DIR",
        summary="Persistent disk-cache root for traces, blocks, "
                "compiled arrays and sweep journals ('off' disables).",
        default="~/.cache/repro",
        owner="repro.runtime.cache",
    ),
    EnvVar(
        name="REPRO_CACHE_MAX_BYTES",
        summary="Size budget for the persistent disk cache; "
                "least-recently-used artifacts are evicted beyond it.",
        default="2 GiB",
        owner="repro.runtime.cache",
    ),
    EnvVar(
        name="REPRO_CELL_TIMEOUT",
        summary="Per-cell deadline in seconds for parallel sweeps; a "
                "cell over the deadline is killed and retried.",
        default="no deadline",
        owner="repro.runtime.resilience",
    ),
    EnvVar(
        name="REPRO_ENGINE",
        summary="Fetch-engine implementation: 'fast' (vectorized "
                "kernels) or 'scalar' (reference loops), bit-identical.",
        default="fast",
        owner="repro.core.engine_mode",
    ),
    EnvVar(
        name="REPRO_FAULT_SPEC",
        summary="Deterministic fault-injection spec for resilience "
                "testing (e.g. 'crash:cell=3;hang:cell=5').",
        default="no injected faults",
        owner="repro.runtime.faults",
    ),
    EnvVar(
        name="REPRO_JOBS",
        summary="Worker processes for sweep fan-out (integer or "
                "'auto'); serial when unset.",
        default="serial",
        owner="repro.runtime.executor",
    ),
    EnvVar(
        name="REPRO_KERNEL_GATE",
        summary="Generated-kernel lint gate in the compiled backend: "
                "'enforce' (reject kernels with REP7xx findings), "
                "'warn' (report to stderr and continue) or 'off'.",
        default="enforce",
        owner="repro.core.backends.codegen",
    ),
    EnvVar(
        name="REPRO_PROFILE",
        summary="When truthy, print per-cell phase timings to stderr "
                "and record them in sweep reports.",
        default="off",
        owner="repro.runtime.profile",
    ),
    EnvVar(
        name="REPRO_QA_SEED",
        summary="Base seed for the repro.qa differential-fuzzing "
                "campaigns and the test suite's seeded randomness.",
        default="5",
        owner="repro.qa",
    ),
    EnvVar(
        name="REPRO_RESUME",
        summary="Resume labeled sweeps from their checkpoint journal "
                "('0'/'off' forces recomputation).",
        default="on",
        owner="repro.runtime.resilience",
    ),
    EnvVar(
        name="REPRO_RETRIES",
        summary="Retry budget per sweep cell before the sweep reports "
                "a failure.",
        default="2",
        owner="repro.runtime.resilience",
    ),
    EnvVar(
        name="REPRO_SERVE_BATCH",
        summary="Max requests the prediction service dispatches per "
                "sweep batch.",
        default="32",
        owner="repro.serve.config",
    ),
    EnvVar(
        name="REPRO_SERVE_BREAKER_COOLDOWN",
        summary="Seconds an open per-workload circuit breaker waits "
                "before half-opening for a probe request.",
        default="5.0",
        owner="repro.serve.config",
    ),
    EnvVar(
        name="REPRO_SERVE_BREAKER_THRESHOLD",
        summary="Consecutive fast-path failures that trip a workload "
                "family's circuit breaker.",
        default="5",
        owner="repro.serve.config",
    ),
    EnvVar(
        name="REPRO_SERVE_DEADLINE",
        summary="Default per-request deadline in seconds for the "
                "prediction service ('off' disables).",
        default="no deadline",
        owner="repro.serve.config",
    ),
    EnvVar(
        name="REPRO_SERVE_QUEUE",
        summary="Bounded admission-queue depth of the prediction "
                "service; a full queue sheds with a typed overload.",
        default="256",
        owner="repro.serve.config",
    ),
    EnvVar(
        name="REPRO_SHARDS",
        summary="Shard count for sweep fan-out (integer or 'auto'); "
                ">1 routes sweeps through the work-stealing shard "
                "scheduler with per-shard journal checkpoints.",
        default="unsharded",
        owner="repro.runtime.shard",
    ),
    EnvVar(
        name="REPRO_SHARD_POLICY",
        summary="Cell->shard partition policy for sharded sweeps: "
                "'hash' (stable digest), 'range' (contiguous blocks) "
                "or 'size' (cost-balanced LPT greedy).",
        default="size",
        owner="repro.runtime.shard",
    ),
    EnvVar(
        name="REPRO_TRACER",
        summary="Trace-capture tier: 'fast' (vectorized tiered tracer) "
                "or 'scalar' (reference interpreter), bit-identical.",
        default="fast",
        owner="repro.cpu.tracer_mode",
    ),
    EnvVar(
        name="REPRO_TRACE_CACHE",
        summary="Legacy flat trace-cache directory, still honoured "
                "alongside the digest-keyed REPRO_CACHE_DIR cache.",
        default="disabled",
        owner="repro.workloads.base",
    ),
    EnvVar(
        name="REPRO_TRACE_CHUNK",
        summary="Records per compressed chunk when traces are captured "
                "in streaming mode (bounds peak capture memory).",
        default="1048576",
        owner="repro.trace.chunks",
    ),
    EnvVar(
        name="REPRO_TRACE_LEN",
        summary="Dynamic instruction budget per workload for the "
                "experiment runners (>= 1000).",
        default="120000",
        owner="repro.experiments.common",
    ),
    EnvVar(
        name="REPRO_TRACE_STREAM",
        summary="Instruction-budget threshold above which trace capture "
                "streams chunks to disk instead of materializing.",
        default="10000000",
        owner="repro.workloads.base",
    ),
)

_BY_NAME = {var.name: var for var in REGISTRY}


def registered_names() -> Tuple[str, ...]:
    """Declared variable names, in registry order."""
    return tuple(var.name for var in REGISTRY)


def describe(name: str) -> EnvVar:
    """The registry entry for ``name`` (KeyError if undeclared)."""
    return _BY_NAME[name]


def read(name: str) -> Optional[str]:
    """Raw value of a *declared* variable (None when unset).

    The sanctioned environment read for modules outside the runtime
    config entry points: reading through the registry guarantees the
    variable is declared and therefore documented.
    """
    if name not in _BY_NAME:
        raise KeyError(
            f"{name} is not declared in repro.envvars.REGISTRY; "
            f"declare it there (with docs) before reading it")
    return os.environ.get(name)
