"""``gcc`` analog (SPECint95 126.gcc).

The original compiles C: long chains of type/opcode tests over IR nodes,
worklist traversals, hash-based value numbering — large irregular branchy
code operating on pointer-linked structures.

The analog runs a three-pass "compiler" over a pseudo-random IR held in
parallel arrays (opcode, two operands, a const flag): constant folding
(if-else chains over opcodes), value numbering through a probed hash table,
and dead-code elimination via a backward liveness sweep.  Every pass is
dominated by data-dependent multi-way branching, gcc's signature.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import hash_combine, rand_into, seed_rng

N_NODES = 1024
OP = 0                 # opcode array
ARG1 = 2048
ARG2 = 4096
FLAG = 6144            # 1 = constant
LIVE = 8192
VN_KEYS = 10240
VN_BITS = 10
OUTER = 1_000_000

# IR opcodes: 0 const, 1 add, 2 sub, 3 mul, 4 load, 5 store, 6 cmp,
# 7 branch, 8 call, 9 phi
N_IROPS = 10


@REGISTRY.register("gcc", SUITE_INT,
                   "compiler passes: folding, value numbering, DCE")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the pass-pipeline iterations."""
    b = ProgramBuilder(name="gcc", data_size=1 << 14)

    r_i = "r3"
    r_op = "r4"
    r_a1 = "r5"
    r_a2 = "r6"
    r_t0 = "r10"
    r_t1 = "r11"
    r_h = "r12"
    r_live = "r13"

    def node_load(dest, base, idx):
        b.asm.li(r_t0, base)
        b.asm.add(r_t0, r_t0, idx)
        b.asm.ld(dest, r_t0, 0)

    def node_store(src, base, idx):
        b.asm.li(r_t0, base)
        b.asm.add(r_t0, r_t0, idx)
        b.asm.st(src, r_t0, 0)

    with b.function("gen_ir"):
        # Skewed opcode mix: arithmetic and memory dominate, like real IR.
        with b.for_range(r_i, 0, N_NODES):
            rand_into(b, r_op, 16)
            # Map 16 raw values onto 10 opcodes with a skew (values >= 10
            # fold back into the common ops 1/4/0/6/1/2).
            b.asm.li(r_t1, N_IROPS)
            with b.if_("ge", r_op, r_t1):
                b.asm.andi(r_op, r_op, 7)
            node_store(r_op, OP, r_i)
            rand_into(b, r_t1, N_NODES)
            node_store(r_t1, ARG1, r_i)
            rand_into(b, r_t1, N_NODES)
            node_store(r_t1, ARG2, r_i)
            rand_into(b, r_t1, 4)
            b.asm.slti(r_t1, r_t1, 1)       # flag = (rand < 1): 25% const
            node_store(r_t1, FLAG, r_i)
            node_store("r0", LIVE, r_i)     # reset liveness for this IR

    with b.function("fold_pass"):
        # Constant folding: opcode dispatch via an if-else chain.
        with b.for_range(r_i, 0, N_NODES):
            node_load(r_op, OP, r_i)
            node_load(r_a1, ARG1, r_i)
            node_load(r_a2, ARG2, r_i)
            b.asm.li(r_t1, 1)
            with b.if_else("eq", r_op, r_t1) as is_add:
                # add: fold when both args flagged const.
                node_load(r_t1, FLAG, r_a1)
                with b.if_("ne", r_t1, "r0"):
                    node_load(r_t1, FLAG, r_a2)
                    with b.if_("ne", r_t1, "r0"):
                        b.asm.li(r_t1, 0)        # becomes a const node
                        node_store(r_t1, OP, r_i)
                        b.asm.li(r_t1, 1)
                        node_store(r_t1, FLAG, r_i)
                is_add.otherwise()
                b.asm.li(r_t1, 3)
                with b.if_("eq", r_op, r_t1):    # mul by const 0/1 strength
                    node_load(r_t1, FLAG, r_a2)
                    with b.if_("ne", r_t1, "r0"):
                        b.asm.li(r_t1, 1)        # demote to add
                        node_store(r_t1, OP, r_i)
                b.asm.li(r_t1, 6)
                with b.if_("eq", r_op, r_t1):    # cmp of node with itself
                    with b.if_("eq", r_a1, r_a2):
                        b.asm.li(r_t1, 0)
                        node_store(r_t1, OP, r_i)
                        b.asm.li(r_t1, 1)
                        node_store(r_t1, FLAG, r_i)

    with b.function("value_number"):
        # Fresh table per pass — also guarantees the probe loops terminate
        # (the live key count can never exceed the node count).
        with b.for_range(r_i, 0, 1 << VN_BITS):
            b.asm.li(r_t0, VN_KEYS)
            b.asm.add(r_t0, r_t0, r_i)
            b.asm.st("r0", r_t0, 0)
        # Hash (op, a1, a2); collisions probe linearly, hits mark the node.
        with b.for_range(r_i, 0, N_NODES):
            node_load(r_op, OP, r_i)
            node_load(r_a1, ARG1, r_i)
            node_load(r_a2, ARG2, r_i)
            hash_combine(b, r_h, r_a1, r_a2, VN_BITS)
            b.asm.add(r_h, r_h, r_op)
            b.asm.andi(r_h, r_h, (1 << VN_BITS) - 1)
            # key = op * N_NODES + a1 + 1 (nonzero)
            b.asm.li(r_t1, N_NODES)
            b.asm.mul(r_t1, r_op, r_t1)
            b.asm.add(r_t1, r_t1, r_a1)
            b.asm.addi(r_t1, r_t1, 1)
            probe = b.asm.unique_label("vn_probe")
            done = b.asm.unique_label("vn_done")
            b.asm.place(probe)
            b.asm.li(r_t0, VN_KEYS)
            b.asm.add(r_t0, r_t0, r_h)
            b.asm.ld(r_a2, r_t0, 0)
            b.asm.beq(r_a2, "r0", done)          # empty: insert
            b.asm.beq(r_a2, r_t1, done)          # hit
            b.asm.addi(r_h, r_h, 1)
            b.asm.andi(r_h, r_h, (1 << VN_BITS) - 1)
            b.asm.j(probe)
            b.asm.place(done)
            b.asm.li(r_t0, VN_KEYS)
            b.asm.add(r_t0, r_t0, r_h)
            b.asm.st(r_t1, r_t0, 0)

    with b.function("dce_pass"):
        # Backward liveness: stores/branches/calls are roots; arithmetic
        # survives only if a later node marked its args live.
        with b.for_range(r_i, N_NODES - 1, -1, step=-1):
            node_load(r_op, OP, r_i)
            b.asm.li(r_live, 0)
            b.asm.li(r_t1, 5)
            with b.if_("ge", r_op, r_t1):        # store/cmp/branch/call/phi
                b.asm.li(r_live, 1)
            node_load(r_t1, LIVE, r_i)
            with b.if_("ne", r_t1, "r0"):
                b.asm.li(r_live, 1)
            with b.if_("ne", r_live, "r0"):
                node_load(r_a1, ARG1, r_i)
                node_load(r_a2, ARG2, r_i)
                b.asm.li(r_t1, 1)
                node_store(r_t1, LIVE, r_a1)
                node_store(r_t1, LIVE, r_a2)

    with b.function("main"):
        seed_rng(b, 0x6CC)
        with b.for_range("r15", 0, outer):
            b.call("gen_ir")
            b.call("fold_pass")
            b.call("value_number")
            b.call("dce_pass")

    return b.build()
