"""Workload registry facade: suites, lookup, cached fetch inputs.

Importing this module loads every workload analog.  The 18 programs mirror
the SPEC95 suite the paper evaluates (8 SPECint95, 10 SPECfp95).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import FetchInput
from ..icache.geometry import CacheGeometry
from .base import REGISTRY, Workload

# Importing registers each analog with REGISTRY.
from . import applu      # noqa: F401
from . import apsi       # noqa: F401
from . import compress   # noqa: F401
from . import fpppp      # noqa: F401
from . import gcc        # noqa: F401
from . import go         # noqa: F401
from . import hydro2d    # noqa: F401
from . import ijpeg      # noqa: F401
from . import li         # noqa: F401
from . import m88ksim    # noqa: F401
from . import mgrid      # noqa: F401
from . import perl       # noqa: F401
from . import su2cor     # noqa: F401
from . import swim       # noqa: F401
from . import tomcatv    # noqa: F401
from . import turb3d     # noqa: F401
from . import vortex     # noqa: F401
from . import wave5      # noqa: F401

#: SPECint95 programs in the paper's Figure 9 order.
SPECINT95: List[str] = ["gcc", "compress", "go", "ijpeg", "li", "m88ksim",
                        "perl", "vortex"]
#: SPECfp95 programs in the paper's Figure 9 order.
SPECFP95: List[str] = ["applu", "apsi", "fpppp", "hydro2d", "mgrid",
                       "su2cor", "swim", "tomcatv", "turb3d", "wave5"]
#: The full suite.
SPEC95: List[str] = SPECFP95 + SPECINT95

_fetch_inputs = {}


def get_workload(name: str) -> Workload:
    """Look up a registered workload by SPEC95 program name."""
    return REGISTRY.get(name)


def workload_names(suite: Optional[str] = None) -> List[str]:
    """All registered names, optionally one suite (``"int"``/``"fp"``)."""
    return REGISTRY.names(suite)


def load_trace(name: str, max_instructions: int):
    """Execute (cached) and return the workload's trace."""
    return REGISTRY.trace(name, max_instructions)


def load_fetch_input(name: str, geometry: CacheGeometry,
                     max_instructions: int) -> FetchInput:
    """Cached (trace + static + segmentation) bundle for one workload.

    Traces are cached per (name, budget) and segmentations per geometry on
    top, so parameter sweeps re-run neither the interpreter nor the
    segmenter.
    """
    key = (name, max_instructions, geometry)
    if key not in _fetch_inputs:
        trace = REGISTRY.trace(name, max_instructions)
        static = REGISTRY.program(name).static_code()
        _fetch_inputs[key] = FetchInput.from_trace(trace, static, geometry)
    return _fetch_inputs[key]


def clear_caches() -> None:
    """Drop all cached programs, traces and fetch inputs (tests)."""
    REGISTRY.clear_caches()
    _fetch_inputs.clear()
