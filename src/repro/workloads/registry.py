"""Workload registry facade: suites, lookup, cached fetch inputs.

Importing this module loads every workload analog.  The 18 programs mirror
the SPEC95 suite the paper evaluates (8 SPECint95, 10 SPECfp95).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..core.config import FetchInput
from ..icache.geometry import CacheGeometry
from ..runtime import cache as disk_cache, profile
from ..trace.blocks import segment_blocks
from .base import REGISTRY, Workload

# Importing registers each analog with REGISTRY.
from . import applu      # noqa: F401
from . import apsi       # noqa: F401
from . import compress   # noqa: F401
from . import fpppp      # noqa: F401
from . import gcc        # noqa: F401
from . import go         # noqa: F401
from . import hydro2d    # noqa: F401
from . import ijpeg      # noqa: F401
from . import kmp        # noqa: F401
from . import li         # noqa: F401
from . import m88ksim    # noqa: F401
from . import mgrid      # noqa: F401
from . import perl       # noqa: F401
from . import su2cor     # noqa: F401
from . import swim       # noqa: F401
from . import tomcatv    # noqa: F401
from . import turb3d     # noqa: F401
from . import vortex     # noqa: F401
from . import wave5      # noqa: F401

#: SPECint95 programs in the paper's Figure 9 order.
SPECINT95: List[str] = ["gcc", "compress", "go", "ijpeg", "li", "m88ksim",
                        "perl", "vortex"]
#: SPECfp95 programs in the paper's Figure 9 order.
SPECFP95: List[str] = ["applu", "apsi", "fpppp", "hydro2d", "mgrid",
                       "su2cor", "swim", "tomcatv", "turb3d", "wave5"]
#: The full suite.
SPEC95: List[str] = SPECFP95 + SPECINT95

#: Bound on the in-memory fetch-input cache.  Entries hold full trace +
#: segmentation arrays, so an unbounded sweep over many geometries/budgets
#: would grow without limit; 64 comfortably covers 18 workloads x the
#: three paper geometries with headroom for custom sweeps.
FETCH_INPUT_CACHE_MAX = 64

_fetch_inputs: "OrderedDict" = OrderedDict()


def get_workload(name: str) -> Workload:
    """Look up a registered workload by SPEC95 program name."""
    return REGISTRY.get(name)


def workload_names(suite: Optional[str] = None) -> List[str]:
    """All registered names, optionally one suite (``"int"``/``"fp"``)."""
    return REGISTRY.names(suite)


def load_trace(name: str, max_instructions: int):
    """Execute (cached) and return the workload's trace."""
    return REGISTRY.trace(name, max_instructions)


def load_fetch_input(name: str, geometry: CacheGeometry,
                     max_instructions: int) -> FetchInput:
    """Cached (trace + static + segmentation) bundle for one workload.

    Traces are cached per (name, budget) and segmentations per geometry on
    top, so parameter sweeps re-run neither the interpreter nor the
    segmenter.  Both layers sit on the persistent disk cache of
    :mod:`repro.runtime.cache`, so warm processes skip them entirely; the
    in-memory layer is LRU-bounded at :data:`FETCH_INPUT_CACHE_MAX`.
    """
    key = (name, max_instructions, geometry)
    cached = _fetch_inputs.get(key)
    if cached is not None:
        _fetch_inputs.move_to_end(key)
        return cached
    trace = REGISTRY.trace(name, max_instructions)
    static = REGISTRY.program(name).static_code()
    digest = REGISTRY.digest(name)
    with profile.phase("segment"):
        blocks = disk_cache.load_blocks(trace, geometry, name,
                                        max_instructions, digest)
        if blocks is None:
            blocks = segment_blocks(trace, geometry)
            disk_cache.store_blocks(blocks, name, max_instructions, digest)
    fetch_input = FetchInput(trace=trace, static=static, geometry=geometry,
                             blocks=blocks)
    # Identity for the persistent compiled-arrays cache layered on top by
    # repro.core.kernels.compile_fetch_input; the digest makes workload
    # edits invalidate compiled blocks exactly like traces and blocks.
    fetch_input.cache_key = (name, max_instructions, digest)
    _fetch_inputs[key] = fetch_input
    while len(_fetch_inputs) > FETCH_INPUT_CACHE_MAX:
        _fetch_inputs.popitem(last=False)
    return fetch_input


def clear_caches() -> None:
    """Drop all cached programs, traces and fetch inputs (tests).

    Also purges the persistent disk cache (``REPRO_CACHE_DIR``), so a
    clear really does force the next run back through the interpreter.
    """
    REGISTRY.clear_caches()
    _fetch_inputs.clear()
    disk_cache.purge()
