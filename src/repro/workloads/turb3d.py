"""``turb3d`` analog (SPECfp95 125.turb3d).

The original simulates isotropic turbulence with 3D FFTs: butterfly loops
at log2(N) strides plus bit-reversal permutation.  Loop bounds dominate;
the bit-reversal swap test (i < rev(i)) is the one non-loop branch, with a
fixed learnable pattern.

The analog runs radix-2 integer butterfly passes over a length-256 signal
with a twiddle-free kernel, preceded by the bit-reversal permutation, the
whole transform repeated and alternated with a pointwise "nonlinear term"
pass (square and scale) as the time loop.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

LOG_N = 8
N = 1 << LOG_N
RE = 0
IM = N
OUTER = 1_000_000


def _bit_reverse(value: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@REGISTRY.register("turb3d", SUITE_FP,
                   "FFT butterflies with bit-reversal permutation")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the transform timesteps."""
    b = ProgramBuilder(name="turb3d", data_size=1 << 11)

    r_i = "r3"
    r_j = "r4"
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_b2 = "r13"
    r_rev = "r14"

    with b.function("bit_reverse", leaf=True):
        # rev = bit-reverse of i, computed with an unrolled shift chain;
        # swap when i < rev (the fixed ~50% pattern real FFTs have).
        with b.for_range(r_i, 0, N):
            b.asm.li(r_rev, 0)
            b.asm.mv(r_t0, r_i)
            for _ in range(LOG_N):
                b.asm.slli(r_rev, r_rev, 1)
                b.asm.andi(r_t1, r_t0, 1)
                b.asm.or_(r_rev, r_rev, r_t1)
                b.asm.srli(r_t0, r_t0, 1)
            with b.if_("lt", r_i, r_rev):
                b.asm.addi(r_t0, r_i, RE)
                b.asm.ld(r_a, r_t0, 0)
                b.asm.addi(r_t1, r_rev, RE)
                b.asm.ld(r_b2, r_t1, 0)
                b.asm.st(r_b2, r_t0, 0)
                b.asm.st(r_a, r_t1, 0)

    # One function per butterfly stage (fixed strides, like an unrolled
    # FFT driver loop).
    for stage in range(LOG_N):
        half = 1 << stage
        step = half * 2
        with b.function(f"stage_{stage}", leaf=True):
            with b.for_range(r_i, 0, N, step=step):
                for k in range(half):
                    b.asm.addi(r_t0, r_i, RE + k)
                    b.asm.ld(r_a, r_t0, 0)
                    b.asm.ld(r_b2, r_t0, half)
                    b.asm.add(r_t1, r_a, r_b2)
                    b.asm.sub(r_a, r_a, r_b2)
                    b.asm.st(r_t1, r_t0, 0)
                    b.asm.st(r_a, r_t0, half)
                    if half > 4:
                        break  # cap the unroll; remaining lanes loop below
                if half > 4:
                    with b.for_range(r_j, 1, half):
                        b.asm.add(r_t0, r_i, r_j)
                        b.asm.addi(r_t0, r_t0, RE)
                        b.asm.ld(r_a, r_t0, 0)
                        b.asm.ld(r_b2, r_t0, half)
                        b.asm.add(r_t1, r_a, r_b2)
                        b.asm.sub(r_a, r_a, r_b2)
                        b.asm.st(r_t1, r_t0, 0)
                        b.asm.st(r_a, r_t0, half)

    with b.function("nonlinear", leaf=True):
        # Pointwise u <- (u*u) >> 8, bounded (the convective term analog).
        with b.for_range(r_i, 0, N):
            b.asm.addi(r_t0, r_i, RE)
            b.asm.ld(r_a, r_t0, 0)
            b.asm.mul(r_a, r_a, r_a)
            b.asm.srli(r_a, r_a, 8)
            b.asm.andi(r_a, r_a, 1023)
            b.asm.st(r_a, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x7B3D)
        with b.for_range(r_i, 0, N):
            rand_into(b, r_t1, 1024)
            b.asm.addi(r_t0, r_i, RE)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("bit_reverse")
            for stage in range(LOG_N):
                b.call(f"stage_{stage}")
            b.call("nonlinear")

    return b.build()
