"""``su2cor`` analog (SPECfp95 103.su2cor).

The original computes quark-gluon correlation functions on a 4D lattice
via Monte-Carlo: strided gather loops, small matrix-vector kernels and
reduction sums.  Branches are loop bounds plus an acceptance test.

The analog sweeps a flattened lattice with stride patterns, applies a 2x2
fixed-point matrix kernel per site pair, accumulates a correlation
reduction, and applies a Metropolis-style acceptance branch driven by the
LCG (skewed ~75% accept, mildly unpredictable — the Monte-Carlo flavour).
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

SITES = 1024
FIELD_A = 0
FIELD_B = 1024
CORR = 2048
OUTER = 1_000_000
STRIDES = (1, 4, 16, 64)


@REGISTRY.register("su2cor", SUITE_FP,
                   "lattice correlation sweeps with acceptance branches")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the Monte-Carlo sweeps."""
    b = ProgramBuilder(name="su2cor", data_size=1 << 12)

    r_i = "r3"
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_b2 = "r13"
    r_sum = "r14"
    r_pair = "r15"

    # Emit one sweep function per stride (fixed strides keep the loops
    # simple counted loops, like the unrolled lattice directions).
    for stride in STRIDES:
        with b.function(f"sweep_{stride}", leaf=True):
            b.asm.li(r_sum, 0)
            with b.for_range(r_i, 0, SITES - stride):
                # Gather the site pair.
                b.asm.addi(r_t0, r_i, FIELD_A)
                b.asm.ld(r_a, r_t0, 0)
                b.asm.addi(r_t0, r_i, FIELD_A + stride)
                b.asm.ld(r_b2, r_t0, 0)
                # 2x2 fixed-point kernel: (a,b) -> (3a+b, a-3b) >> 2
                b.asm.muli(r_t0, r_a, 3)
                b.asm.add(r_t0, r_t0, r_b2)
                b.asm.muli(r_t1, r_b2, 3)
                b.asm.sub(r_t1, r_a, r_t1)
                b.asm.srli(r_t0, r_t0, 2)
                b.asm.srli(r_t1, r_t1, 2)
                b.asm.andi(r_t0, r_t0, 1023)
                # Metropolis acceptance near equilibrium: ~94% accept.
                rand_into(b, r_pair, 16)
                b.asm.li("r24", 15)
                with b.if_("lt", r_pair, "r24"):
                    b.asm.addi(r_t1, r_i, FIELD_B)
                    b.asm.st(r_t0, r_t1, 0)
                # Correlation reduction.
                b.asm.add(r_sum, r_sum, r_t0)
            # Store the stride's correlation.
            b.asm.li(r_t0, CORR)
            b.asm.st(r_sum, r_t0, 0)

    with b.function("exchange", leaf=True):
        # Swap A and B fields (streaming copy, fully predictable).
        with b.for_range(r_i, 0, SITES):
            b.asm.addi(r_t0, r_i, FIELD_B)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.addi(r_t0, r_i, FIELD_A)
            b.asm.st(r_t1, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x52C0)
        with b.for_range(r_i, 0, 2 * SITES):
            rand_into(b, r_t1, 1024)
            b.asm.mv(r_t0, r_i)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            for stride in STRIDES:
                b.call(f"sweep_{stride}")
            b.call("exchange")

    return b.build()
