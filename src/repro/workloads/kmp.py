"""``kmp`` workload: Morris-Pratt and Knuth-Morris-Pratt string search.

Not a SPEC95 analog — a *verification* workload whose dynamic branch
counts are analytically known.  Each pass draws a skewed binary pattern
and text from the shared LCG, builds the Morris-Pratt failure function
(weak borders) and the KMP strong failure function in ISA code, then
scans the text with both automata, accumulating character-comparison
and match counters at fixed memory addresses.

What makes it useful as an oracle:

* Morris-Pratt performs between ``n`` and ``2n - 1`` character
  comparisons per scan of an ``n``-symbol text — the classic amortized
  bound, independent of pattern or text content;
* the strong failure function only ever *removes* guaranteed-mismatch
  comparisons, so the KMP counter can never exceed the MP counter;
* both automata must report exactly the same match count.

:func:`repro.qa.invariants.kmp_search_bounds` checks all three against
a live run, and the golden-model test replays the LCG in Python and
compares every counter and table bit for bit.  The search loops
themselves are irregular, data-dependent branch code — the same
character that makes the SPECint analogs hard for target arrays.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_EXTRA
from .codegen import rand_into, seed_rng

# Data-memory layout (words).
TEXT = 0
TEXT_LEN = 2048
PATTERN = 2048
PAT_LEN = 8
FAIL_MP = 2112       # weak borders, indexed by matched count (0..PAT_LEN)
FAIL_KMP = 2176      # strong failure function, same indexing
MP_COMP = 2240       # accumulated MP character comparisons
MP_MATCH = 2241      # accumulated MP match count
KMP_COMP = 2242      # accumulated KMP character comparisons
KMP_MATCH = 2243     # accumulated KMP match count
PASSES = 2244        # completed passes
N_SYMBOLS = 2        # binary alphabet: rich borders, frequent matches
OUTER_PASSES = 10_000  # effectively unbounded; the trace budget truncates

SEED = 0x5EED


def _skewed_symbol(b: ProgramBuilder, dest: str) -> None:
    """``dest = min(two uniform draws)`` — biased toward symbol 0."""
    rand_into(b, dest, N_SYMBOLS)
    rand_into(b, "r19", N_SYMBOLS)
    with b.if_("lt", "r19", dest):
        b.asm.mv(dest, "r19")


@REGISTRY.register("kmp", SUITE_EXTRA,
                   "Morris-Pratt/KMP text search with analytic "
                   "comparison-count bounds")
def build(outer: int = OUTER_PASSES) -> Program:
    """Build the workload; ``outer`` bounds the search passes (tests use
    small bounds to run to HALT for golden-model comparison)."""
    b = ProgramBuilder(name="kmp", data_size=1 << 13)

    r_i = "r3"        # loop index
    r_j = "r4"        # matched-prefix length / border scratch
    r_t = "r5"        # current text/pattern symbol
    r_a = "r6"        # address scratch
    r_v = "r7"        # value scratch
    r_comp = "r8"     # per-call comparison accumulator
    r_match = "r9"    # per-call match accumulator
    r_table = "r13"   # argument: failure-table base
    r_caddr = "r14"   # argument: comparison-counter address
    r_maddr = "r15"   # argument: match-counter address
    r_outer = "r16"   # outer pass counter (not clobbered by callees)

    with b.function("fill_pattern", leaf=True):
        with b.for_range(r_i, 0, PAT_LEN):
            _skewed_symbol(b, r_t)
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_i)
            b.asm.st(r_t, r_a, 0)

    with b.function("fill_text", leaf=True):
        with b.for_range(r_i, 0, TEXT_LEN):
            _skewed_symbol(b, r_t)
            b.asm.li(r_a, TEXT)
            b.asm.add(r_a, r_a, r_i)
            b.asm.st(r_t, r_a, 0)

    with b.function("build_fail", leaf=True):
        # Weak borders: FAIL_MP[j] = longest proper border of P[:j].
        b.asm.li(r_a, FAIL_MP)
        b.asm.st("r0", r_a, 0)
        b.asm.st("r0", r_a, 1)
        b.asm.li(r_j, 0)                      # k = border so far
        with b.for_range(r_i, 1, PAT_LEN):
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_i)
            b.asm.ld(r_t, r_a, 0)             # P[j]
            shrink_top = b.asm.unique_label("shrink")
            shrink_done = b.asm.unique_label("shrink_done")
            b.asm.place(shrink_top)
            b.asm.beq(r_j, "r0", shrink_done)
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_j)
            b.asm.ld(r_v, r_a, 0)             # P[k]
            b.asm.beq(r_t, r_v, shrink_done)
            b.asm.li(r_a, FAIL_MP)
            b.asm.add(r_a, r_a, r_j)
            b.asm.ld(r_j, r_a, 0)             # k = FAIL_MP[k]
            b.asm.j(shrink_top)
            b.asm.place(shrink_done)
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_j)
            b.asm.ld(r_v, r_a, 0)
            with b.if_("eq", r_t, r_v):       # extend the border
                b.asm.addi(r_j, r_j, 1)
            b.asm.addi(r_v, r_i, 1)
            b.asm.li(r_a, FAIL_MP)
            b.asm.add(r_a, r_a, r_v)
            b.asm.st(r_j, r_a, 0)             # FAIL_MP[j+1] = k

    with b.function("build_strong", leaf=True):
        # FAIL_KMP[j]: on a mismatch after j matched symbols, the next
        # matched count that is not a guaranteed re-mismatch.
        b.asm.li(r_a, FAIL_KMP)
        b.asm.st("r0", r_a, 0)
        with b.for_range(r_i, 1, PAT_LEN):
            b.asm.li(r_a, FAIL_MP)
            b.asm.add(r_a, r_a, r_i)
            b.asm.ld(r_j, r_a, 0)             # f = FAIL_MP[j]
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_i)
            b.asm.ld(r_t, r_a, 0)             # P[j]
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_j)
            b.asm.ld(r_v, r_a, 0)             # P[f]
            with b.if_("eq", r_t, r_v):
                # P[f] == P[j]: retrying P[f] must mismatch too — skip
                # straight to the already-final FAIL_KMP[f].
                b.asm.li(r_a, FAIL_KMP)
                b.asm.add(r_a, r_a, r_j)
                b.asm.ld(r_j, r_a, 0)
            b.asm.li(r_a, FAIL_KMP)
            b.asm.add(r_a, r_a, r_i)
            b.asm.st(r_j, r_a, 0)
        # After a full match there is no mismatched symbol to skip
        # against: restart from the weak border of the whole pattern.
        b.asm.li(r_a, FAIL_MP)
        b.asm.ld(r_j, r_a, PAT_LEN)
        b.asm.li(r_a, FAIL_KMP)
        b.asm.st(r_j, r_a, PAT_LEN)

    with b.function("search", leaf=True):
        # In: r13 = failure-table base, r14/r15 = counter addresses.
        b.asm.li(r_comp, 0)
        b.asm.li(r_match, 0)
        b.asm.li(r_j, 0)
        with b.for_range(r_i, 0, TEXT_LEN):
            b.asm.li(r_a, TEXT)
            b.asm.add(r_a, r_a, r_i)
            b.asm.ld(r_t, r_a, 0)             # t = T[i]
            try_top = b.asm.unique_label("try")
            hit = b.asm.unique_label("hit")
            next_i = b.asm.unique_label("next_i")
            b.asm.place(try_top)
            b.asm.addi(r_comp, r_comp, 1)     # one character comparison
            b.asm.li(r_a, PATTERN)
            b.asm.add(r_a, r_a, r_j)
            b.asm.ld(r_v, r_a, 0)             # P[j]
            b.asm.beq(r_t, r_v, hit)
            b.asm.beq(r_j, "r0", next_i)      # j == 0: advance the text
            b.asm.add(r_a, r_table, r_j)
            b.asm.ld(r_j, r_a, 0)             # j = F[j]
            b.asm.j(try_top)
            b.asm.place(hit)
            b.asm.addi(r_j, r_j, 1)
            b.asm.li(r_v, PAT_LEN)
            b.asm.bne(r_j, r_v, next_i)
            b.asm.addi(r_match, r_match, 1)   # full occurrence
            b.asm.add(r_a, r_table, r_v)
            b.asm.ld(r_j, r_a, 0)             # j = F[m]
            b.asm.place(next_i)
        b.asm.ld(r_v, r_caddr, 0)
        b.asm.add(r_v, r_v, r_comp)
        b.asm.st(r_v, r_caddr, 0)
        b.asm.ld(r_v, r_maddr, 0)
        b.asm.add(r_v, r_v, r_match)
        b.asm.st(r_v, r_maddr, 0)

    with b.function("main"):
        seed_rng(b, SEED)
        with b.for_range(r_outer, 0, outer):
            b.call("fill_pattern")
            b.call("fill_text")
            b.call("build_fail")
            b.call("build_strong")
            b.asm.li(r_table, FAIL_MP)
            b.asm.li(r_caddr, MP_COMP)
            b.asm.li(r_maddr, MP_MATCH)
            b.call("search")
            b.asm.li(r_table, FAIL_KMP)
            b.asm.li(r_caddr, KMP_COMP)
            b.asm.li(r_maddr, KMP_MATCH)
            b.call("search")
            b.asm.li(r_a, PASSES)
            b.asm.ld(r_v, r_a, 0)
            b.asm.addi(r_v, r_v, 1)
            b.asm.st(r_v, r_a, 0)

    return b.build()
