"""``hydro2d`` analog (SPECfp95 104.hydro2d).

The original solves hydrodynamical Navier-Stokes equations on a 2D grid:
flux computations in alternating directions with limiter/clipping logic.
Mostly counted loops, plus data-dependent min/max limiter branches.

The analog alternates row and column flux sweeps over a density grid with
a flux limiter (two compare branches per cell whose outcome depends on the
local gradient sign — skewed but data-dependent).
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import clamp, rand_into, seed_rng

N = 32
RHO = 0
FLUX = N * N
OUTER = 1_000_000


@REGISTRY.register("hydro2d", SUITE_FP,
                   "directional flux sweeps with limiter branches")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the timestep count."""
    b = ProgramBuilder(name="hydro2d", data_size=1 << 12)

    r_i = "r3"
    r_j = "r4"
    r_t0 = "r10"
    r_t1 = "r11"
    r_l = "r12"       # left/up value
    r_c = "r13"       # centre
    r_r = "r14"       # right/down value
    r_g = "r15"       # gradient

    def cell_addr(dest, grid, row, col):
        b.asm.muli(dest, row, N)
        b.asm.add(dest, dest, col)
        b.asm.addi(dest, dest, grid)

    def flux_body(row, col, dr, dc):
        # Load the 3-point neighbourhood along the sweep direction.
        cell_addr(r_t0, RHO, row, col)
        b.asm.ld(r_c, r_t0, 0)
        b.asm.ld(r_l, r_t0, -(dr * N + dc))
        b.asm.ld(r_r, r_t0, dr * N + dc)
        # Gradient and minmod-style limiter.
        b.asm.sub(r_g, r_r, r_c)
        b.asm.sub(r_t1, r_c, r_l)
        # limiter: if gradients disagree in sign, flux = 0
        b.asm.mul(r_t0, r_g, r_t1)
        with b.if_("lt", r_t0, "r0"):
            b.asm.li(r_g, 0)
        with b.if_("ne", r_g, "r0"):
            # take the smaller magnitude (minmod)
            with b.if_("gt", r_g, r_t1):
                with b.if_("gt", r_t1, "r0"):
                    b.asm.mv(r_g, r_t1)
        # Update: rho += g/4 (fixed point), clipped to stay physical.
        b.asm.muli(r_g, r_g, 1)
        b.asm.srli(r_t1, r_g, 2)
        b.asm.add(r_c, r_c, r_t1)
        clamp(b, r_c, 0, 4095)
        cell_addr(r_t0, FLUX, row, col)
        b.asm.st(r_c, r_t0, 0)

    with b.function("sweep_rows", leaf=True):
        with b.for_range(r_i, 1, N - 1):
            with b.for_range(r_j, 1, N - 1):
                flux_body(r_i, r_j, 0, 1)

    with b.function("sweep_cols", leaf=True):
        with b.for_range(r_j, 1, N - 1):
            with b.for_range(r_i, 1, N - 1):
                flux_body(r_i, r_j, 1, 0)

    with b.function("commit", leaf=True):
        with b.for_range(r_i, 0, N * N):
            b.asm.addi(r_t0, r_i, FLUX)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.addi(r_t0, r_i, RHO)
            b.asm.st(r_t1, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x4D20)
        # A smooth initial density (random walk), so gradient signs have
        # spatial coherence — hydrodynamic fields are not white noise.
        b.asm.li(r_c, 2048)
        with b.for_range(r_i, 0, N * N):
            rand_into(b, r_t1, 64)
            b.asm.add(r_c, r_c, r_t1)
            b.asm.addi(r_c, r_c, -31)
            clamp(b, r_c, 0, 4095)
            b.asm.addi(r_t0, r_i, RHO)
            b.asm.st(r_c, r_t0, 0)
            b.asm.addi(r_t0, r_i, FLUX)
            b.asm.st(r_c, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("sweep_rows")
            b.call("commit")
            b.call("sweep_cols")
            b.call("commit")

    return b.build()
