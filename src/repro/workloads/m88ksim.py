"""``m88ksim`` analog (SPECint95 124.m88ksim).

The original simulates a Motorola 88100: a fetch/decode/execute loop whose
branches follow the simulated program's instruction mix — a long if-else
decode chain, register-file updates, and a simulated-branch unit.

The analog interprets a pseudo-random "guest" instruction stream with a
realistic opcode mix (ALU-heavy, ~20% memory, ~15% branches).  Decode is a
nested compare chain (m88ksim decodes by field tests, not jump tables);
guest branches are resolved against guest register values, so the host
branch behaviour is data-dependent in the same layered way.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import rand_into, seed_rng

GUEST_CODE = 0        # encoded guest instructions
# Short guest program: like a real guest workload, the simulated
# instruction sequence repeats (the guest spends its time in loops), so
# the host's decode-branch sequence is learnable — m88ksim's actual
# behaviour, not a random-opcode stress test.
GUEST_LEN = 96
GUEST_REGS = 2048     # 32 guest registers
GUEST_MEM = 2100
GUEST_MEM_LEN = 1024
OUTER = 1_000_000

# Guest opcode classes: 0 add, 1 sub, 2 and, 3 or, 4 shift, 5 load,
# 6 store, 7 beq, 8 bne, 9 nop


@REGISTRY.register("m88ksim", SUITE_INT,
                   "CPU simulator: decode chain + guest branch resolution")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the simulate passes (tests use
    small bounds to run to HALT for golden-model comparison)."""
    b = ProgramBuilder(name="m88ksim", data_size=1 << 13)

    r_pc = "r3"       # guest PC
    r_inst = "r4"
    r_op = "r5"
    r_rd = "r6"
    r_rs = "r7"
    r_a = "r12"
    r_bv = "r13"
    r_t0 = "r10"
    r_t1 = "r11"

    def guest_reg_load(dest, reg_idx):
        b.asm.li(r_t0, GUEST_REGS)
        b.asm.add(r_t0, r_t0, reg_idx)
        b.asm.ld(dest, r_t0, 0)

    def guest_reg_store(src, reg_idx):
        b.asm.li(r_t0, GUEST_REGS)
        b.asm.add(r_t0, r_t0, reg_idx)
        b.asm.st(src, r_t0, 0)

    with b.function("gen_guest"):
        # Encoded word: op*4096 + rd*128 + rs*4 + extra(2 bits).
        with b.for_range("r15", 0, GUEST_LEN):
            rand_into(b, r_op, 32)
            # Skew: 0-15 -> alu (op & 3 or 4), 16-21 -> load, 22-26 ->
            # store, 27-30 -> branches, 31 -> nop.
            b.asm.li(r_t1, 16)
            with b.if_else("lt", r_op, r_t1) as cls:
                b.asm.andi(r_op, r_op, 4 + 3)   # 0..7 -> alu incl shift
                b.asm.li(r_t1, 5)
                with b.if_("ge", r_op, r_t1):
                    b.asm.andi(r_op, r_op, 3)
                cls.otherwise()
                b.asm.li(r_t1, 22)
                with b.if_else("lt", r_op, r_t1) as c2:
                    b.asm.li(r_op, 5)            # load
                    c2.otherwise()
                    b.asm.li(r_t1, 27)
                    with b.if_else("lt", r_op, r_t1) as c3:
                        b.asm.li(r_op, 6)        # store
                        c3.otherwise()
                        b.asm.li(r_t1, 31)
                        with b.if_else("lt", r_op, r_t1) as c4:
                            b.asm.andi(r_op, r_op, 1)
                            b.asm.addi(r_op, r_op, 7)   # beq/bne
                            c4.otherwise()
                            b.asm.li(r_op, 9)    # nop
            b.asm.muli(r_inst, r_op, 4096)
            rand_into(b, r_t1, 32)
            b.asm.muli(r_t1, r_t1, 128)
            b.asm.add(r_inst, r_inst, r_t1)
            rand_into(b, r_t1, 32)
            b.asm.muli(r_t1, r_t1, 4)
            b.asm.add(r_inst, r_inst, r_t1)
            rand_into(b, r_t1, 4)
            b.asm.add(r_inst, r_inst, r_t1)
            b.asm.li(r_t0, GUEST_CODE)
            b.asm.add(r_t0, r_t0, "r15")
            b.asm.st(r_inst, r_t0, 0)

    with b.function("simulate", leaf=True):
        b.asm.li(r_pc, 0)
        loop = b.asm.unique_label("sim_loop")
        done = b.asm.unique_label("sim_done")
        b.asm.place(loop)
        b.asm.li(r_t1, GUEST_LEN)
        b.asm.bge(r_pc, r_t1, done)
        # Fetch + field decode.
        b.asm.li(r_t0, GUEST_CODE)
        b.asm.add(r_t0, r_t0, r_pc)
        b.asm.ld(r_inst, r_t0, 0)
        b.asm.addi(r_pc, r_pc, 1)
        b.asm.srli(r_op, r_inst, 12)
        b.asm.srli(r_rd, r_inst, 7)
        b.asm.andi(r_rd, r_rd, 31)
        b.asm.srli(r_rs, r_inst, 2)
        b.asm.andi(r_rs, r_rs, 31)
        # Decode chain (most frequent first, like m88ksim's decoder).
        next_label = b.asm.unique_label("sim_next")

        def op_case(value):
            return b.if_("eq", r_op, _imm(value))

        def _imm(value):
            b.asm.li(r_t1, value)
            return r_t1

        with op_case(0):                      # add
            guest_reg_load(r_a, r_rs)
            guest_reg_load(r_bv, r_rd)
            b.asm.add(r_a, r_a, r_bv)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(1):                      # sub
            guest_reg_load(r_a, r_rs)
            guest_reg_load(r_bv, r_rd)
            b.asm.sub(r_a, r_bv, r_a)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(2):                      # and
            guest_reg_load(r_a, r_rs)
            guest_reg_load(r_bv, r_rd)
            b.asm.and_(r_a, r_a, r_bv)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(3):                      # or
            guest_reg_load(r_a, r_rs)
            guest_reg_load(r_bv, r_rd)
            b.asm.or_(r_a, r_a, r_bv)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(4):                      # shift
            guest_reg_load(r_a, r_rs)
            b.asm.andi(r_t1, r_inst, 3)
            b.asm.srl(r_a, r_a, r_t1)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(5):                      # load
            guest_reg_load(r_a, r_rs)
            b.asm.andi(r_a, r_a, GUEST_MEM_LEN - 1)
            b.asm.li(r_t0, GUEST_MEM)
            b.asm.add(r_t0, r_t0, r_a)
            b.asm.ld(r_a, r_t0, 0)
            guest_reg_store(r_a, r_rd)
            b.asm.j(next_label)
        with op_case(6):                      # store
            guest_reg_load(r_a, r_rs)
            b.asm.andi(r_a, r_a, GUEST_MEM_LEN - 1)
            guest_reg_load(r_bv, r_rd)
            b.asm.li(r_t0, GUEST_MEM)
            b.asm.add(r_t0, r_t0, r_a)
            b.asm.st(r_bv, r_t0, 0)
            b.asm.j(next_label)
        with op_case(7):                      # beq: skip ahead 3 if equal
            guest_reg_load(r_a, r_rs)
            guest_reg_load(r_bv, r_rd)
            with b.if_("eq", r_a, r_bv):
                b.asm.addi(r_pc, r_pc, 3)
            b.asm.j(next_label)
        with op_case(8):                      # bne: skip back is too risky;
            guest_reg_load(r_a, r_rs)         # skip ahead 5 if different
            guest_reg_load(r_bv, r_rd)
            with b.if_("ne", r_a, r_bv):
                b.asm.addi(r_pc, r_pc, 5)
            b.asm.j(next_label)
        # nop and unknown fall through.
        b.asm.place(next_label)
        b.asm.j(loop)
        b.asm.place(done)

    with b.function("main"):
        seed_rng(b, 0x88100)
        # Guest registers and memory start pseudo-random.
        with b.for_range("r15", 0, 32):
            rand_into(b, r_t1, 64)
            b.asm.li(r_t0, GUEST_REGS)
            b.asm.add(r_t0, r_t0, "r15")
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r15", 0, GUEST_MEM_LEN):
            rand_into(b, r_t1, 64)
            b.asm.li(r_t0, GUEST_MEM)
            b.asm.add(r_t0, r_t0, "r15")
            b.asm.st(r_t1, r_t0, 0)
        b.call("gen_guest")
        with b.for_range("r16", 0, outer):
            b.call("simulate")

    return b.build()
