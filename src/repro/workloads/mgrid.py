"""``mgrid`` analog (SPECfp95 107.mgrid).

The original is a multigrid Poisson solver: smoothing sweeps at a hierarchy
of resolutions, restriction to coarser grids and prolongation back.  Its
loops run at power-of-two strides with tiny trip counts at the coarse end —
the characteristic "nested counted loops at many scales".

The analog runs the same V-cycle shape over a 1D hierarchy: smooth at
stride s, restrict to stride 2s, down to the coarsest level, then
prolongate back — all fixed-point, all counted loops.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

SIZE = 1024
GRID = 0
TEMP = 1024
LEVELS = (1, 2, 4, 8, 16)
OUTER = 1_000_000


@REGISTRY.register("mgrid", SUITE_FP,
                   "multigrid V-cycle: strided smoothing at many scales")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the V-cycles."""
    b = ProgramBuilder(name="mgrid", data_size=1 << 12)

    r_i = "r3"
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_c = "r13"

    for stride in LEVELS:
        with b.function(f"smooth_{stride}", leaf=True):
            # u[i] = (u[i-s] + 2u[i] + u[i+s]) / 4 at this level.
            with b.for_range(r_i, stride, SIZE - stride, step=stride):
                b.asm.addi(r_t0, r_i, GRID)
                b.asm.ld(r_c, r_t0, 0)
                b.asm.ld(r_a, r_t0, -stride)
                b.asm.add(r_a, r_a, r_c)
                b.asm.add(r_a, r_a, r_c)
                b.asm.ld(r_t1, r_t0, stride)
                b.asm.add(r_a, r_a, r_t1)
                b.asm.srli(r_a, r_a, 2)
                b.asm.st(r_a, r_t0, 0)

        with b.function(f"restrict_{stride}", leaf=True):
            # Average pairs into the temp field at double stride.
            with b.for_range(r_i, 0, SIZE - stride, step=2 * stride):
                b.asm.addi(r_t0, r_i, GRID)
                b.asm.ld(r_a, r_t0, 0)
                b.asm.ld(r_t1, r_t0, stride)
                b.asm.add(r_a, r_a, r_t1)
                b.asm.srli(r_a, r_a, 1)
                b.asm.addi(r_t0, r_i, TEMP)
                b.asm.st(r_a, r_t0, 0)

        with b.function(f"prolong_{stride}", leaf=True):
            # Interpolate temp back into the grid.
            with b.for_range(r_i, 0, SIZE - 2 * stride, step=2 * stride):
                b.asm.addi(r_t0, r_i, TEMP)
                b.asm.ld(r_a, r_t0, 0)
                b.asm.ld(r_t1, r_t0, 2 * stride)
                b.asm.add(r_t1, r_a, r_t1)
                b.asm.srli(r_t1, r_t1, 1)
                b.asm.addi(r_t0, r_i, GRID)
                b.asm.st(r_a, r_t0, 0)
                b.asm.st(r_t1, r_t0, stride)

    with b.function("main"):
        seed_rng(b, 0x36123)
        with b.for_range(r_i, 0, 2 * SIZE):
            rand_into(b, r_t1, 2048)
            b.asm.mv(r_t0, r_i)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            # Descend the V-cycle...
            for stride in LEVELS:
                b.call(f"smooth_{stride}")
                b.call(f"restrict_{stride}")
            # ...and come back up.
            for stride in reversed(LEVELS):
                b.call(f"prolong_{stride}")
                b.call(f"smooth_{stride}")

    return b.build()
