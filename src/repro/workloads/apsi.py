"""``apsi`` analog (SPECfp95 141.apsi).

The original is a mesoscale weather model: per-column vertical loops for
temperature/wind/pollutant distribution with threshold physics (condensation
when humidity exceeds saturation, stability tests).  Mostly counted loops
with skewed threshold branches.

The analog sweeps columns of a 2D atmosphere; each column runs an upward
pass computing a lapse profile, a threshold test triggering a "condensation"
adjustment arm (~15% of cells), and a downward mixing pass.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import clamp, rand_into, seed_rng

COLS = 64
LEVELS = 24
TEMP = 0                       # temperature field
HUM = COLS * LEVELS            # humidity field
SAT = 2 * COLS * LEVELS        # per-level saturation threshold
OUTER = 1_000_000


@REGISTRY.register("apsi", SUITE_FP,
                   "atmospheric columns with condensation thresholds")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the column sweeps."""
    b = ProgramBuilder(name="apsi", data_size=1 << 12)

    r_col = "r3"
    r_lev = "r4"
    r_t0 = "r10"
    r_t1 = "r11"
    r_tmp = "r12"
    r_hum = "r13"
    r_sat = "r14"
    r_base = "r15"

    def cell(dest, field, base, lev):
        b.asm.add(dest, base, lev)
        b.asm.addi(dest, dest, field)

    with b.function("column_up", leaf=True):
        # In: r_col.  Lapse + condensation test per level.
        b.asm.muli(r_base, r_col, LEVELS)
        with b.for_range(r_lev, 1, LEVELS):
            cell(r_t0, TEMP, r_base, r_lev)
            b.asm.ld(r_tmp, r_t0, -1)
            b.asm.addi(r_tmp, r_tmp, -6)     # lapse rate
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.add(r_tmp, r_tmp, r_t1)
            b.asm.srli(r_tmp, r_tmp, 1)
            b.asm.st(r_tmp, r_t0, 0)
            cell(r_t0, HUM, r_base, r_lev)
            b.asm.ld(r_hum, r_t0, 0)
            b.asm.li(r_t1, SAT)
            b.asm.add(r_t1, r_t1, r_lev)
            b.asm.ld(r_sat, r_t1, 0)
            # Condensation: humidity above saturation (skewed branch).
            with b.if_("gt", r_hum, r_sat):
                b.asm.sub(r_t1, r_hum, r_sat)
                b.asm.srli(r_t1, r_t1, 1)
                b.asm.sub(r_hum, r_hum, r_t1)
                cell(r_t0, HUM, r_base, r_lev)
                b.asm.st(r_hum, r_t0, 0)
                # Latent heat warms the cell.
                cell(r_t0, TEMP, r_base, r_lev)
                b.asm.ld(r_tmp, r_t0, 0)
                b.asm.add(r_tmp, r_tmp, r_t1)
                b.asm.st(r_tmp, r_t0, 0)

    with b.function("column_down", leaf=True):
        # Downward mixing pass.
        b.asm.muli(r_base, r_col, LEVELS)
        with b.for_range(r_lev, LEVELS - 2, -1, step=-1):
            cell(r_t0, HUM, r_base, r_lev)
            b.asm.ld(r_hum, r_t0, 0)
            b.asm.ld(r_t1, r_t0, 1)
            b.asm.add(r_hum, r_hum, r_t1)
            b.asm.srli(r_hum, r_hum, 1)
            clamp(b, r_hum, 0, 2047)
            b.asm.st(r_hum, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0xA951)
        with b.for_range(r_col, 0, COLS * LEVELS):
            rand_into(b, r_t1, 512)
            b.asm.addi(r_t1, r_t1, 200)
            b.asm.addi(r_t0, r_col, TEMP)
            b.asm.st(r_t1, r_t0, 0)
            rand_into(b, r_t1, 1024)
            b.asm.addi(r_t0, r_col, HUM)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range(r_lev, 0, LEVELS):
            # Saturation falls with altitude; ~15% of cells exceed it.
            b.asm.li(r_t1, 980)
            b.asm.muli(r_t0, r_lev, 6)
            b.asm.sub(r_t1, r_t1, r_t0)
            b.asm.li(r_t0, SAT)
            b.asm.add(r_t0, r_t0, r_lev)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            with b.for_range(r_col, 0, COLS):
                b.push(r_col)
                b.call("column_up")
                b.call("column_down")
                b.pop(r_col)

    return b.build()
