"""Shared code-generation helpers for the workload programs.

These emit common idioms — PRNG-filled arrays, hash probes, clipping — as
straight ISA code through the builder.  Register usage is documented per
helper; callers own any registers not listed as clobbered.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..isa.builder import ProgramBuilder
from ..isa.program import Program

#: Conventional registers used across workloads (documented, not enforced).
RNG = "r20"          #: LCG state register
TMP0, TMP1, TMP2 = "r21", "r22", "r23"


def seed_rng(b: ProgramBuilder, seed: int) -> None:
    """Initialise the LCG state register."""
    b.asm.li(RNG, seed & ((1 << 31) - 1) or 1)


def rand_into(b: ProgramBuilder, dest, modulus: int = 0) -> None:
    """Advance the LCG and leave a value in ``dest``.

    With ``modulus`` > 0 the value is reduced to ``[0, modulus)`` — by
    masking when the modulus is a power of two, by ``MOD`` otherwise.
    Clobbers the RNG scratch register.
    """
    b.lcg_step(RNG)
    b.asm.srli(dest, RNG, 13)  # high-ish bits are better distributed
    if modulus > 0:
        if modulus & (modulus - 1) == 0:
            b.asm.andi(dest, dest, modulus - 1)
        else:
            b.asm.li(TMP0, modulus)
            b.asm.mod(dest, dest, TMP0)


def fill_array(b: ProgramBuilder, base: int, length: int, counter,
               value, modulus: int = 0) -> None:
    """Fill ``mem[base : base+length]`` with pseudo-random values.

    ``counter`` and ``value`` are caller-provided registers (clobbered).
    """
    with b.for_range(counter, 0, length):
        rand_into(b, value, modulus)
        b.asm.li(TMP1, base)
        b.asm.add(TMP1, TMP1, counter)
        b.asm.st(value, TMP1, 0)


def clamp(b: ProgramBuilder, reg, low: int, high: int) -> None:
    """Clamp ``reg`` into [low, high] with two conditional branches."""
    b.asm.li(TMP0, low)
    with b.if_("lt", reg, TMP0):
        b.asm.mv(reg, TMP0)
    b.asm.li(TMP0, high)
    with b.if_("gt", reg, TMP0):
        b.asm.mv(reg, TMP0)


def hash_combine(b: ProgramBuilder, dest, a, c, table_bits: int) -> None:
    """``dest = ((a * 31 + c) xor (a >> 7)) mod 2**table_bits``."""
    b.asm.muli(dest, a, 31)
    b.asm.add(dest, dest, c)
    b.asm.srli(TMP0, a, 7)
    b.asm.xor(dest, dest, TMP0)
    b.asm.andi(dest, dest, (1 << table_bits) - 1)


def build_two_pass(make: Callable[[ProgramBuilder, Dict[str, int]], None],
                   name: str, data_size: int = 1 << 15) -> Program:
    """Build a program that needs its own label addresses as constants.

    Workloads with indirect dispatch (interpreters building jump tables of
    handler addresses) cannot know label addresses while emitting code.
    ``make`` is invoked twice: first with an empty address map (every
    lookup yields 0) to learn the layout, then with the real addresses.
    Both passes must emit the same instruction count — true by construction
    since only ``li`` immediates change.
    """
    probe = ProgramBuilder(name=name, data_size=data_size)
    make(probe, {})
    labels = probe.build().labels
    addresses: Dict[str, int] = dict(labels)
    final = ProgramBuilder(name=name, data_size=data_size)
    make(final, addresses)
    program = final.build()
    if len(program) != len(probe.build()):
        raise AssertionError(
            f"two-pass build of {name!r} changed the instruction count")
    return program
