"""Workload abstraction and registration.

A workload is a program in the tiny ISA standing in for one SPEC95 benchmark
(the paper's input set, which we cannot run without SPARC binaries and
Shade).  Each analog is a *real program* — hashing, searching, interpreting,
stencil sweeps — chosen so its dynamic control flow has the character of the
benchmark it replaces: integer codes are irregular and data-dependent,
floating-point codes are dominated by long counted loops.

Workloads are registered by module import (see :mod:`repro.workloads`); the
registry caches built programs and executed traces per process so parameter
sweeps do not re-run the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.program import Program

SUITE_INT = "int"
SUITE_FP = "fp"
#: Non-SPEC workloads: registered (and covered by every parity suite)
#: but outside the paper's Figure 9 program lists.
SUITE_EXTRA = "extra"

_SUITES = (SUITE_INT, SUITE_FP, SUITE_EXTRA)

#: Environment variable: instruction budget above which trace capture
#: streams fixed-size chunks to the disk cache instead of materialising
#: the whole record stream in memory.
STREAM_ENV = "REPRO_TRACE_STREAM"

#: Default streaming threshold (10^7 instructions).
DEFAULT_STREAM_THRESHOLD = 10_000_000


def stream_threshold() -> int:
    """Streaming threshold from ``REPRO_TRACE_STREAM`` (validated)."""
    from .. import envvars

    raw = envvars.read(STREAM_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_STREAM_THRESHOLD
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{STREAM_ENV} must be a positive integer, got {raw!r}") \
            from None
    if value < 1:
        raise ValueError(
            f"{STREAM_ENV} must be a positive integer, got {value}")
    return value


@dataclass(frozen=True)
class Workload:
    """One registered benchmark analog.

    Attributes:
        name: the SPEC95 program this stands in for (e.g. ``compress``).
        suite: ``"int"`` (SPECint95) or ``"fp"`` (SPECfp95).
        description: one line on what the analog computes and why its
            control flow matches the original's character.
        builder: zero-argument callable producing the program.
    """

    name: str
    suite: str
    description: str
    builder: Callable[[], Program]

    def build(self) -> Program:
        """Assemble the workload program (uncached)."""
        program = self.builder()
        return program


class WorkloadRegistry:
    """Name -> workload mapping with program/trace caches."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[Tuple[str, int], object] = {}
        self._digests: Dict[str, str] = {}

    def register(self, name: str, suite: str,
                 description: str) -> Callable:
        """Decorator registering a builder function as a workload."""
        if suite not in _SUITES:
            raise ValueError(f"unknown suite: {suite!r}")

        def wrap(builder: Callable[[], Program]) -> Callable[[], Program]:
            """Register ``builder`` under the decorator's name."""
            if name in self._workloads:
                raise ValueError(f"duplicate workload: {name!r}")
            self._workloads[name] = Workload(name, suite, description,
                                             builder)
            return builder

        return wrap

    def get(self, name: str) -> Workload:
        """Look up a workload, raising KeyError with the known names."""
        try:
            return self._workloads[name]
        except KeyError:
            known = ", ".join(sorted(self._workloads))
            raise KeyError(f"unknown workload {name!r}; known: {known}") \
                from None

    def names(self, suite: Optional[str] = None) -> List[str]:
        """Registered workload names, optionally filtered by suite."""
        return sorted(n for n, w in self._workloads.items()
                      if suite is None or w.suite == suite)

    def program(self, name: str) -> Program:
        """Build (and cache) the workload's program."""
        if name not in self._programs:
            self._programs[name] = self.get(name).build()
        return self._programs[name]

    def digest(self, name: str) -> str:
        """Content hash of the workload's assembled program.

        Keys the persistent cache: editing an analog's code changes its
        digest and silently invalidates every cached artifact.
        """
        if name not in self._digests:
            from ..runtime import cache as disk_cache

            self._digests[name] = disk_cache.program_digest(
                self.program(name))
        return self._digests[name]

    def trace(self, name: str, max_instructions: int):
        """Execute (and cache) the workload's trace.

        Capture goes through the tracer selected by ``REPRO_TRACER``
        (:func:`repro.cpu.capture_machine`).  Budgets at or above
        ``REPRO_TRACE_STREAM`` are captured *streaming*: the fast tracer
        hands bounded record segments to a chunk writer spooling
        straight into the disk cache, and a lazily-read
        :class:`~repro.trace.chunks.ChunkedTrace` is returned instead of
        a materialised trace — peak capture memory is one chunk
        (``REPRO_TRACE_CHUNK`` records) regardless of budget.

        Traces are memoised per process and, unless disabled via
        ``REPRO_CACHE_DIR``, persisted by :mod:`repro.runtime.cache` so
        repeated invocations — including parallel sweep workers — skip
        the interpreter entirely.  The legacy ``REPRO_TRACE_CACHE``
        directory is still honoured when set; capture-version-stamped
        artifacts mean a scalar-era cache entry is quarantined and
        recomputed, never served.
        """
        from ..cpu import capture_machine
        from ..runtime import cache as disk_cache, profile
        from ..trace.record import Trace

        key = (name, max_instructions)
        if key not in self._traces:
            with profile.phase("trace"):
                trace = None
                legacy = self._disk_cache_path(name, max_instructions)
                if legacy is not None and legacy.exists():
                    from ..runtime.cache import READ_ERRORS

                    try:
                        trace = Trace.load(legacy)
                    except READ_ERRORS:
                        # A torn or version-stale legacy artifact must
                        # not abort the sweep: fall through to the
                        # digest-keyed cache or the tracer, then
                        # rewrite it below.
                        trace = None
                        legacy.unlink(missing_ok=True)
                if trace is None:
                    trace = disk_cache.load_trace(name, max_instructions,
                                                  self.digest(name))
                if trace is None \
                        and max_instructions >= stream_threshold():
                    trace = disk_cache.load_chunked_trace(
                        name, max_instructions, self.digest(name))
                    if trace is None:
                        trace = self._capture_chunked(name,
                                                      max_instructions)
                if trace is None:
                    program = self.program(name)
                    trace = capture_machine(program).run(
                        max_instructions=max_instructions).trace
                    disk_cache.store_trace(trace, name, max_instructions,
                                           self.digest(name))
                if legacy is not None and not legacy.exists() \
                        and isinstance(trace, Trace):
                    legacy.parent.mkdir(parents=True, exist_ok=True)
                    trace.save(legacy)
                self._traces[key] = trace
        return self._traces[key]

    def _capture_chunked(self, name: str, max_instructions: int):
        """Stream one capture into the disk cache as a chunk container.

        Returns the resulting
        :class:`~repro.trace.chunks.ChunkedTrace`, or ``None`` when
        streaming is unavailable — the scalar reference tracer has no
        streaming path, and with the disk cache disabled there is
        nowhere durable to spool — in which case the caller falls back
        to materialised capture.
        """
        from ..cpu import use_fast_tracer
        from ..cpu.fast import FastMachine
        from ..runtime import cache as disk_cache
        from ..trace.chunks import (ChunkedTrace, TraceChunkWriter,
                                    chunk_records)

        if not use_fast_tracer():
            return None
        path = disk_cache.chunked_trace_path(name, max_instructions,
                                             self.digest(name))
        if path is None:
            return None
        program = self.program(name)
        per_chunk = chunk_records()
        with TraceChunkWriter(path, entry_pc=program.entry, name=name,
                              records_per_chunk=per_chunk) as writer:
            executed, halted, truncated = FastMachine(
                program).run_streaming(writer,
                                       max_instructions=max_instructions,
                                       flush_records=per_chunk)
            writer.close(executed, truncated=truncated)
        disk_cache.seal_chunked_trace(path)
        return ChunkedTrace(path)

    @staticmethod
    def _disk_cache_path(name: str, max_instructions: int):
        from pathlib import Path

        from .. import envvars

        root = envvars.read("REPRO_TRACE_CACHE")
        if not root:
            return None
        return Path(root) / f"{name}-{max_instructions}.npz"

    def clear_caches(self) -> None:
        """Drop cached programs, traces and digests (tests)."""
        self._programs.clear()
        self._traces.clear()
        self._digests.clear()


#: The process-wide registry the workload modules register into.
REGISTRY = WorkloadRegistry()
