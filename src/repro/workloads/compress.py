"""``compress`` analog (SPECint95 129.compress).

The original is LZW compression: a tight loop hashing (prefix, char) pairs
into a dictionary with open addressing.  Its branch character comes from
data-dependent hash hits/misses and probe-chain lengths over skewed input.

The analog implements the same structure: a skewed pseudo-random symbol
stream, an open-addressed dictionary keyed by (prefix, symbol), hit/miss/
collision branches per input symbol, emitted codes, and periodic dictionary
resets when the code space fills.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import hash_combine, rand_into, seed_rng

# Data-memory layout (words).
INPUT = 0
INPUT_LEN = 2048
KEYS = 4096          # dictionary keys (0 = empty)
VALUES = 8192        # dictionary values (codes)
OUTPUT = 12288
OUTPUT_MASK = 2047
TABLE_BITS = 12
TABLE_SIZE = 1 << TABLE_BITS
MAX_CODE = 3000      # reset threshold (forces periodic dictionary resets)
N_SYMBOLS = 16
OUTER_PASSES = 10_000  # effectively unbounded; the trace budget truncates


@REGISTRY.register("compress", SUITE_INT,
                   "LZW-style dictionary compression with open addressing")
def build(outer: int = OUTER_PASSES) -> Program:
    """Build the analog; ``outer`` bounds the compression passes (tests
    use small bounds to run to HALT for golden-model comparison)."""
    b = ProgramBuilder(name="compress", data_size=1 << 15)

    r_i = "r3"        # input index
    r_prefix = "r4"
    r_char = "r5"
    r_key = "r6"
    r_hash = "r7"
    r_next_code = "r8"
    r_out = "r9"      # output index
    r_t0 = "r10"
    r_t1 = "r11"
    r_found = "r12"

    with b.function("reset_dict", leaf=True):
        # Predictable memset loop, like the original's table clear.
        with b.for_range(r_t0, 0, TABLE_SIZE):
            b.asm.li(r_t1, KEYS)
            b.asm.add(r_t1, r_t1, r_t0)
            b.asm.st("r0", r_t1, 0)

    with b.function("fill_input", leaf=False):
        # Skewed symbols: min of two draws biases toward small values,
        # giving the repetitive character real compressor input has.
        with b.for_range(r_i, 0, INPUT_LEN):
            rand_into(b, r_t0, N_SYMBOLS)
            rand_into(b, r_t1, N_SYMBOLS)
            with b.if_("lt", r_t1, r_t0):
                b.asm.mv(r_t0, r_t1)
            b.asm.li(r_t1, INPUT)
            b.asm.add(r_t1, r_t1, r_i)
            b.asm.st(r_t0, r_t1, 0)

    with b.function("compress_pass"):
        # prefix = input[0]; next_code starts above the symbol alphabet.
        b.asm.li(r_t0, INPUT)
        b.asm.ld(r_prefix, r_t0, 0)
        b.asm.li(r_next_code, N_SYMBOLS + 1)
        b.asm.li(r_out, 0)
        with b.for_range(r_i, 1, INPUT_LEN):
            b.asm.li(r_t0, INPUT)
            b.asm.add(r_t0, r_t0, r_i)
            b.asm.ld(r_char, r_t0, 0)
            # key = (prefix << 4) | char, +1 so 0 means empty.
            b.asm.slli(r_key, r_prefix, 4)
            b.asm.or_(r_key, r_key, r_char)
            b.asm.addi(r_key, r_key, 1)
            hash_combine(b, r_hash, r_prefix, r_char, TABLE_BITS)
            # Probe until the key or an empty slot is found.
            b.asm.li(r_found, 0)
            probe_top = b.asm.unique_label("probe")
            probe_done = b.asm.unique_label("probe_done")
            b.asm.place(probe_top)
            b.asm.li(r_t0, KEYS)
            b.asm.add(r_t0, r_t0, r_hash)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.beq(r_t1, "r0", probe_done)       # empty slot: miss
            b.asm.beq(r_t1, r_key, probe_done)      # hit
            b.asm.addi(r_hash, r_hash, 1)           # linear probing
            b.asm.andi(r_hash, r_hash, TABLE_SIZE - 1)
            b.asm.j(probe_top)
            b.asm.place(probe_done)
            with b.if_else("eq", r_t1, r_key) as hit:
                # Hit: extend the prefix with the stored code.
                b.asm.li(r_t0, VALUES)
                b.asm.add(r_t0, r_t0, r_hash)
                b.asm.ld(r_prefix, r_t0, 0)
                hit.otherwise()
                # Miss: emit prefix, insert (key -> next_code), restart.
                b.asm.andi(r_t0, r_out, OUTPUT_MASK)
                b.asm.li(r_t1, OUTPUT)
                b.asm.add(r_t1, r_t1, r_t0)
                b.asm.st(r_prefix, r_t1, 0)
                b.asm.addi(r_out, r_out, 1)
                b.asm.li(r_t0, KEYS)
                b.asm.add(r_t0, r_t0, r_hash)
                b.asm.st(r_key, r_t0, 0)
                b.asm.li(r_t0, VALUES)
                b.asm.add(r_t0, r_t0, r_hash)
                b.asm.st(r_next_code, r_t0, 0)
                b.asm.addi(r_next_code, r_next_code, 1)
                b.asm.mv(r_prefix, r_char)
                # Dictionary full? Reset (rare, heavily not-taken).
                b.asm.li(r_t0, MAX_CODE)
                with b.if_("ge", r_next_code, r_t0):
                    b.push(r_i)
                    b.call("reset_dict")
                    b.pop(r_i)
                    b.asm.li(r_next_code, N_SYMBOLS + 1)

    with b.function("main"):
        seed_rng(b, 0xC0FFEE)
        b.call("fill_input")
        with b.for_range("r15", 0, outer):
            b.call("compress_pass")

    return b.build()
