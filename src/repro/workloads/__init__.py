"""SPEC95-analog workload programs (see DESIGN.md for the substitution)."""

from .base import REGISTRY, SUITE_FP, SUITE_INT, Workload, WorkloadRegistry
from .registry import (
    SPEC95,
    SPECFP95,
    SPECINT95,
    clear_caches,
    get_workload,
    load_fetch_input,
    load_trace,
    workload_names,
)

__all__ = [
    "REGISTRY",
    "SPEC95",
    "SPECFP95",
    "SPECINT95",
    "SUITE_FP",
    "SUITE_INT",
    "Workload",
    "WorkloadRegistry",
    "clear_caches",
    "get_workload",
    "load_fetch_input",
    "load_trace",
    "workload_names",
]
