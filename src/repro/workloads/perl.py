"""``perl`` analog (SPECint95 134.perl).

The original interprets Perl scripts dominated by string processing:
tokenising, hash lookups of identifiers, and regex-style scanning.  Branch
behaviour mixes short data-dependent scans (character classes, delimiter
tests) with hash-probe hits/misses.

The analog tokenises a pseudo-random "text" of small symbols with a
separator class, interns each token in a probed hash table (counting
occurrences), and runs a naive pattern matcher over the text whose inner
comparison loop aborts at the first mismatch — the classic scan/match
branch profile.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import rand_into, seed_rng

TEXT = 0
TEXT_LEN = 4096
HASH_KEYS = 4096
HASH_COUNTS = 8192
HASH_BITS = 12
PATTERN = 12288
PATTERN_LEN = 3
MATCHES = 12300
MOTIF = 12310
ALPHABET = 27          # 0..25 letters, 26 separator
OUTER = 1_000_000

#: The repeating 64-symbol "script" motif (words + separators).
MOTIF_SYMBOLS = [3, 1, 4, 26, 7, 4, 11, 11, 14, 26, 3, 1, 4, 8, 26, 22,
                 14, 17, 11, 3, 26, 5, 14, 14, 26, 1, 26, 3, 1, 4, 26, 2,
                 0, 19, 26, 18, 8, 19, 26, 12, 0, 19, 26, 5, 14, 14, 26,
                 1, 0, 17, 26, 3, 1, 4, 26, 16, 20, 4, 20, 4, 26, 24, 25,
                 26]


@REGISTRY.register("perl", SUITE_INT,
                   "tokeniser + identifier hash + naive pattern matcher")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the tokenise/match passes
    (tests use small bounds to run to HALT)."""
    b = ProgramBuilder(name="perl", data_size=1 << 14)

    r_i = "r3"
    r_c = "r4"
    r_hash = "r5"
    r_len = "r6"
    r_t0 = "r10"
    r_t1 = "r11"
    r_j = "r12"
    r_hits = "r13"

    with b.function("gen_text"):
        # Real script input is repetitive: emit a fixed 64-symbol motif
        # (words + separators) with occasional pseudo-random mutation, so
        # token scans follow recurring — hence learnable — patterns.
        with b.for_range(r_i, 0, TEXT_LEN):
            b.asm.li(r_t1, len(MOTIF_SYMBOLS))
            b.asm.mod(r_c, r_i, r_t1)
            b.asm.li(r_t0, MOTIF)
            b.asm.add(r_t0, r_t0, r_c)
            b.asm.ld(r_c, r_t0, 0)
            # ~6% mutation keeps the matcher honest.
            rand_into(b, r_t1, 16)
            with b.if_("eq", r_t1, "r0"):
                rand_into(b, r_c, 32)
                b.asm.li(r_t1, 26)
                with b.if_("ge", r_c, r_t1):
                    b.asm.li(r_c, 26)
            b.asm.addi(r_t0, r_i, TEXT)
            b.asm.st(r_c, r_t0, 0)

    with b.function("install_motif", leaf=True):
        for k, sym in enumerate(MOTIF_SYMBOLS):
            b.asm.li(r_t0, MOTIF + k)
            b.asm.li(r_t1, sym)
            b.asm.st(r_t1, r_t0, 0)

    with b.function("tokenise", leaf=True):
        # Scan tokens; rolling-hash each one; probe and count.
        b.asm.li(r_i, 0)
        outer_loop = b.asm.unique_label("tok_outer")
        done = b.asm.unique_label("tok_done")
        b.asm.place(outer_loop)
        b.asm.li(r_t1, TEXT_LEN)
        b.asm.bge(r_i, r_t1, done)
        # Skip separators.
        skip = b.asm.unique_label("tok_skip")
        word = b.asm.unique_label("tok_word")
        b.asm.place(skip)
        b.asm.li(r_t1, TEXT_LEN)
        b.asm.bge(r_i, r_t1, done)
        b.asm.addi(r_t0, r_i, TEXT)
        b.asm.ld(r_c, r_t0, 0)
        b.asm.li(r_t1, 26)
        b.asm.blt(r_c, r_t1, word)
        b.asm.addi(r_i, r_i, 1)
        b.asm.j(skip)
        # Accumulate the token's rolling hash.
        b.asm.place(word)
        b.asm.li(r_hash, 0)
        b.asm.li(r_len, 0)
        grow = b.asm.unique_label("tok_grow")
        end_word = b.asm.unique_label("tok_end")
        b.asm.place(grow)
        b.asm.li(r_t1, TEXT_LEN)
        b.asm.bge(r_i, r_t1, end_word)
        b.asm.addi(r_t0, r_i, TEXT)
        b.asm.ld(r_c, r_t0, 0)
        b.asm.li(r_t1, 26)
        b.asm.bge(r_c, r_t1, end_word)
        b.asm.muli(r_hash, r_hash, 31)
        b.asm.add(r_hash, r_hash, r_c)
        b.asm.addi(r_len, r_len, 1)
        b.asm.addi(r_i, r_i, 1)
        b.asm.j(grow)
        b.asm.place(end_word)
        # Intern: probe the table with (hash+1) as the key.
        b.asm.addi(r_c, r_hash, 1)
        b.asm.andi(r_hash, r_hash, (1 << HASH_BITS) - 1)
        probe = b.asm.unique_label("tok_probe")
        found = b.asm.unique_label("tok_found")
        b.asm.place(probe)
        b.asm.li(r_t0, HASH_KEYS)
        b.asm.add(r_t0, r_t0, r_hash)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.beq(r_t1, "r0", found)
        b.asm.beq(r_t1, r_c, found)
        b.asm.addi(r_hash, r_hash, 1)
        b.asm.andi(r_hash, r_hash, (1 << HASH_BITS) - 1)
        b.asm.j(probe)
        b.asm.place(found)
        b.asm.li(r_t0, HASH_KEYS)
        b.asm.add(r_t0, r_t0, r_hash)
        b.asm.st(r_c, r_t0, 0)
        b.asm.li(r_t0, HASH_COUNTS)
        b.asm.add(r_t0, r_t0, r_hash)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.addi(r_t1, r_t1, 1)
        b.asm.st(r_t1, r_t0, 0)
        b.asm.j(outer_loop)
        b.asm.place(done)

    with b.function("match_pattern", leaf=True):
        # Naive substring search with early-exit inner compares.
        b.asm.li(r_hits, 0)
        with b.for_range(r_i, 0, TEXT_LEN - PATTERN_LEN):
            miss = b.asm.unique_label("pm_miss")
            for k in range(PATTERN_LEN):
                b.asm.addi(r_t0, r_i, TEXT + k)
                b.asm.ld(r_c, r_t0, 0)
                b.asm.li(r_t0, PATTERN + k)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.bne(r_c, r_t1, miss)
            b.asm.addi(r_hits, r_hits, 1)
            b.asm.place(miss)
        b.asm.li(r_t0, MATCHES)
        b.asm.st(r_hits, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x9E51)
        b.call("install_motif")
        b.call("gen_text")
        # A frequent-letter pattern so matches actually occur.
        for k, sym in enumerate((3, 1, 4)):
            b.asm.li(r_t0, PATTERN + k)
            b.asm.li(r_t1, sym)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r15", 0, outer):
            b.call("tokenise")
            b.call("match_pattern")

    return b.build()
