"""``wave5`` analog (SPECfp95 146.wave5).

The original is a 2D particle-in-cell plasma simulation: a particle push
loop (position/velocity updates with boundary reflection tests), charge
deposition onto a grid, and a field solve.  Counted loops dominate; the
reflection branches are rare and skewed.

The analog pushes a particle population in fixed point, reflects at the
domain edges (~5% of particles per step), deposits charge with computed
grid indices, and relaxes the field with a small stencil pass.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

N_PARTICLES = 512
POS = 0
VEL = 512
GRID = 1024
GRID_LEN = 256
DOMAIN = GRID_LEN << 4         # positions are fixed-point (x16)
OUTER = 1_000_000


@REGISTRY.register("wave5", SUITE_FP,
                   "particle-in-cell push/deposit with reflection branches")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the particle timesteps."""
    b = ProgramBuilder(name="wave5", data_size=1 << 11)

    r_i = "r3"
    r_t0 = "r10"
    r_t1 = "r11"
    r_x = "r12"
    r_v = "r13"
    r_cell = "r14"

    with b.function("push", leaf=True):
        with b.for_range(r_i, 0, N_PARTICLES):
            b.asm.addi(r_t0, r_i, POS)
            b.asm.ld(r_x, r_t0, 0)
            b.asm.addi(r_t1, r_i, VEL)
            b.asm.ld(r_v, r_t1, 0)
            # Acceleration from the local field.
            b.asm.srli(r_cell, r_x, 4)
            b.asm.andi(r_cell, r_cell, GRID_LEN - 1)
            b.asm.addi(r_t1, r_cell, GRID)
            b.asm.ld(r_t1, r_t1, 0)
            b.asm.addi(r_t1, r_t1, -128)     # field centred on zero
            b.asm.muli(r_t1, r_t1, 1)
            b.asm.add(r_v, r_v, r_t1)
            # Clip runaway velocities (rare).
            b.asm.li(r_t1, 64)
            with b.if_("gt", r_v, r_t1):
                b.asm.li(r_v, 64)
            b.asm.li(r_t1, -64)
            with b.if_("lt", r_v, r_t1):
                b.asm.li(r_v, -64)
            b.asm.add(r_x, r_x, r_v)
            # Reflect at the walls (skewed, data-dependent).
            with b.if_("lt", r_x, "r0"):
                b.asm.sub(r_x, "r0", r_x)
                b.asm.sub(r_v, "r0", r_v)
            b.asm.li(r_t1, DOMAIN)
            with b.if_("ge", r_x, r_t1):
                b.asm.li(r_t1, 2 * DOMAIN - 1)
                b.asm.sub(r_x, r_t1, r_x)
                b.asm.sub(r_v, "r0", r_v)
            b.asm.addi(r_t0, r_i, POS)
            b.asm.st(r_x, r_t0, 0)
            b.asm.addi(r_t0, r_i, VEL)
            b.asm.st(r_v, r_t0, 0)

    with b.function("deposit", leaf=True):
        # Clear the grid, then scatter particle charge.
        with b.for_range(r_i, 0, GRID_LEN):
            b.asm.addi(r_t0, r_i, GRID)
            b.asm.li(r_t1, 128)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range(r_i, 0, N_PARTICLES):
            b.asm.addi(r_t0, r_i, POS)
            b.asm.ld(r_x, r_t0, 0)
            b.asm.srli(r_cell, r_x, 4)
            b.asm.andi(r_cell, r_cell, GRID_LEN - 1)
            b.asm.addi(r_t0, r_cell, GRID)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.addi(r_t1, r_t1, 1)
            b.asm.st(r_t1, r_t0, 0)

    with b.function("field_solve", leaf=True):
        # One Jacobi smoothing pass over the charge grid.
        with b.for_range(r_i, 1, GRID_LEN - 1):
            b.asm.addi(r_t0, r_i, GRID)
            b.asm.ld(r_x, r_t0, -1)
            b.asm.ld(r_t1, r_t0, 1)
            b.asm.add(r_x, r_x, r_t1)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.add(r_x, r_x, r_t1)
            b.asm.add(r_x, r_x, r_t1)
            b.asm.srli(r_x, r_x, 2)
            b.asm.st(r_x, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x3A5E)
        with b.for_range(r_i, 0, N_PARTICLES):
            rand_into(b, r_t1, DOMAIN)
            b.asm.addi(r_t0, r_i, POS)
            b.asm.st(r_t1, r_t0, 0)
            rand_into(b, r_t1, 64)
            b.asm.addi(r_t1, r_t1, -32)
            b.asm.addi(r_t0, r_i, VEL)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("push")
            b.call("deposit")
            b.call("field_solve")

    return b.build()
