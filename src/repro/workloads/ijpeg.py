"""``ijpeg`` analog (SPECint95 132.ijpeg).

The original is integer JPEG compression: blocked 8x8 transforms with long
arithmetic sequences, quantisation with clipping, and run-length entropy
coding — more regular than the other integer codes but with data-dependent
runs in the encoder.

The analog processes an LCG-generated image in 8x8 blocks: a separable
integer butterfly transform over rows then columns (long straight-line
bodies), quantisation with clamp branches, and a zig-zag run-length encoder
whose zero-run loop lengths depend on the data.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import clamp, rand_into, seed_rng

IMAGE = 0
IMG_W = 64
IMG_H = 32
BLOCK = 4096          # the 8x8 working block
OUTPUT = 4200
OUTPUT_MASK = 1023
OUTER = 1_000_000

ZIGZAG = [0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
          12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
          35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
          58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63]


@REGISTRY.register("ijpeg", SUITE_INT,
                   "blocked integer transform + quantise + RLE encode")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the image passes."""
    b = ProgramBuilder(name="ijpeg", data_size=1 << 13)

    r_bx = "r3"       # block origin x
    r_by = "r4"       # block origin y
    r_i = "r5"
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_b = "r13"
    r_c = "r14"
    r_d = "r15"
    r_out = "r16"
    r_run = "r17"

    with b.function("load_block", leaf=True):
        # Copy the 8x8 tile at (r_bx, r_by) into the working block.
        with b.for_range(r_i, 0, 8):
            for col in range(8):
                b.asm.addi(r_t0, r_by, 0)
                b.asm.add(r_t0, r_t0, r_i)
                b.asm.muli(r_t0, r_t0, IMG_W)
                b.asm.add(r_t0, r_t0, r_bx)
                b.asm.addi(r_t0, r_t0, IMAGE + col)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.muli(r_t0, r_i, 8)
                b.asm.addi(r_t0, r_t0, BLOCK + col)
                b.asm.st(r_t1, r_t0, 0)

    def butterfly_pass(stride: int, base_step: int) -> None:
        # One separable pass: 8 lanes of adds/subs/shifts, unrolled —
        # the long arithmetic blocks that give ijpeg its high IPB.
        with b.for_range(r_i, 0, 8):
            b.asm.muli(r_t0, r_i, base_step)
            b.asm.addi(r_t0, r_t0, BLOCK)
            for k in range(4):
                b.asm.ld(r_a, r_t0, k * stride)
                b.asm.ld(r_b, r_t0, (7 - k) * stride)
                b.asm.add(r_c, r_a, r_b)
                b.asm.sub(r_d, r_a, r_b)
                b.asm.srli(r_c, r_c, 1)
                b.asm.muli(r_d, r_d, 3)
                b.asm.srli(r_d, r_d, 2)
                b.asm.st(r_c, r_t0, k * stride)
                b.asm.st(r_d, r_t0, (7 - k) * stride)

    with b.function("transform", leaf=True):
        butterfly_pass(stride=1, base_step=8)   # rows
        butterfly_pass(stride=8, base_step=1)   # columns

    with b.function("quantise", leaf=True):
        with b.for_range(r_i, 0, 64):
            b.asm.addi(r_t0, r_i, BLOCK)
            b.asm.ld(r_a, r_t0, 0)
            b.asm.srli(r_a, r_a, 3)
            b.asm.addi(r_a, r_a, -8)       # centre around zero
            clamp(b, r_a, -16, 15)
            # Small values quantise to zero (the RLE fuel).
            b.asm.li(r_t1, 3)
            with b.if_("lt", r_a, r_t1):
                b.asm.li(r_t1, -3)
                with b.if_("gt", r_a, r_t1):
                    b.asm.li(r_a, 0)
            b.asm.addi(r_t0, r_i, BLOCK)
            b.asm.st(r_a, r_t0, 0)

    with b.function("encode", leaf=True):
        # Zig-zag scan with run-length coding of zeros.
        b.asm.li(r_run, 0)
        for index in ZIGZAG:
            b.asm.li(r_t0, BLOCK + index)
            b.asm.ld(r_a, r_t0, 0)
            with b.if_else("eq", r_a, "r0") as is_zero:
                b.asm.addi(r_run, r_run, 1)
                is_zero.otherwise()
                # Emit (run, value).
                b.asm.andi(r_t0, r_out, OUTPUT_MASK)
                b.asm.addi(r_t0, r_t0, OUTPUT)
                b.asm.st(r_run, r_t0, 0)
                b.asm.addi(r_out, r_out, 1)
                b.asm.andi(r_t0, r_out, OUTPUT_MASK)
                b.asm.addi(r_t0, r_t0, OUTPUT)
                b.asm.st(r_a, r_t0, 0)
                b.asm.addi(r_out, r_out, 1)
                b.asm.li(r_run, 0)

    with b.function("main"):
        seed_rng(b, 0x1F3C)
        # Synthesize a smooth-ish image: neighbour-correlated noise.
        b.asm.li(r_a, 128)
        with b.for_range(r_i, 0, IMG_W * IMG_H):
            rand_into(b, r_t1, 32)
            b.asm.add(r_a, r_a, r_t1)
            b.asm.addi(r_a, r_a, -15)
            clamp(b, r_a, 0, 255)
            b.asm.addi(r_t0, r_i, IMAGE)
            b.asm.st(r_a, r_t0, 0)
        b.asm.li(r_out, 0)
        with b.for_range("r18", 0, outer):
            with b.for_range(r_by, 0, IMG_H, step=8):
                with b.for_range(r_bx, 0, IMG_W, step=8):
                    b.push(r_bx)
                    b.push(r_by)
                    b.call("load_block")
                    b.call("transform")
                    b.call("quantise")
                    b.call("encode")
                    b.pop(r_by)
                    b.pop(r_bx)

    return b.build()
