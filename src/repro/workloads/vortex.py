"""``vortex`` analog (SPECint95 147.vortex).

The original is an in-memory object database: create/lookup/delete
transactions over indexed object sets.  Its control flow is dominated by
index traversal (binary searches — hard-to-predict comparisons), record
shifting and validation checks.

The analog maintains a sorted key index with binary-search lookups,
insertion with shift-up, deletion with shift-down, and per-record field
validation sweeps, driven by a pseudo-random transaction mix (60% lookup /
30% insert / 10% delete — databases read more than they write).
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import rand_into, seed_rng

INDEX = 0              # sorted keys
CAPACITY = 1024
FIELDS = 2048          # one payload word per slot
COUNT_ADDR = 4090      # current record count
KEY_SPACE = 4096
OUTER = 1_000_000


@REGISTRY.register("vortex", SUITE_INT,
                   "object DB: binary search index, insert/delete shifts")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the transaction count (tests
    use small bounds to run to HALT for golden-model comparison)."""
    b = ProgramBuilder(name="vortex", data_size=1 << 13)

    r_key = "r3"
    r_lo = "r4"
    r_hi = "r5"
    r_mid = "r6"
    r_n = "r7"
    r_pos = "r8"
    r_found = "r9"
    r_t0 = "r10"
    r_t1 = "r11"
    r_i = "r12"

    def load_count(dest):
        b.asm.li(r_t0, COUNT_ADDR)
        b.asm.ld(dest, r_t0, 0)

    def store_count(src):
        b.asm.li(r_t0, COUNT_ADDR)
        b.asm.st(src, r_t0, 0)

    with b.function("bsearch", leaf=True):
        # In: r_key.  Out: r_pos = insertion point, r_found = 1 on hit.
        load_count(r_n)
        b.asm.li(r_lo, 0)
        b.asm.mv(r_hi, r_n)
        b.asm.li(r_found, 0)
        loop = b.asm.unique_label("bs_loop")
        done = b.asm.unique_label("bs_done")
        b.asm.place(loop)
        b.asm.bge(r_lo, r_hi, done)
        b.asm.add(r_mid, r_lo, r_hi)
        b.asm.srli(r_mid, r_mid, 1)
        b.asm.li(r_t0, INDEX)
        b.asm.add(r_t0, r_t0, r_mid)
        b.asm.ld(r_t1, r_t0, 0)
        with b.if_else("eq", r_t1, r_key) as hit:
            b.asm.li(r_found, 1)
            b.asm.mv(r_lo, r_mid)
            b.asm.j(done)
            hit.otherwise()
            with b.if_else("lt", r_t1, r_key) as lower:
                b.asm.addi(r_lo, r_mid, 1)
                lower.otherwise()
                b.asm.mv(r_hi, r_mid)
        b.asm.j(loop)
        b.asm.place(done)
        b.asm.mv(r_pos, r_lo)

    with b.function("insert"):
        # Insert r_key at its sorted position (ignore duplicates).
        b.call("bsearch")
        with b.if_("ne", r_found, "r0"):
            b.return_()
        load_count(r_n)
        b.asm.li(r_t1, CAPACITY)
        with b.if_("ge", r_n, r_t1):
            b.return_()
        # Shift up (predictable back-to-front copy loop).
        b.asm.mv(r_i, r_n)
        shift = b.asm.unique_label("ins_shift")
        done = b.asm.unique_label("ins_done")
        b.asm.place(shift)
        b.asm.ble(r_i, r_pos, done)
        b.asm.li(r_t0, INDEX - 1)
        b.asm.add(r_t0, r_t0, r_i)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.st(r_t1, r_t0, 1)
        b.asm.li(r_t0, FIELDS - 1)
        b.asm.add(r_t0, r_t0, r_i)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.st(r_t1, r_t0, 1)
        b.asm.addi(r_i, r_i, -1)
        b.asm.j(shift)
        b.asm.place(done)
        b.asm.li(r_t0, INDEX)
        b.asm.add(r_t0, r_t0, r_pos)
        b.asm.st(r_key, r_t0, 0)
        b.asm.li(r_t0, FIELDS)
        b.asm.add(r_t0, r_t0, r_pos)
        b.asm.muli(r_t1, r_key, 7)
        b.asm.st(r_t1, r_t0, 0)
        b.asm.addi(r_n, r_n, 1)
        store_count(r_n)

    with b.function("delete"):
        b.call("bsearch")
        with b.if_("eq", r_found, "r0"):
            b.return_()
        load_count(r_n)
        b.asm.addi(r_n, r_n, -1)
        # Shift down over the deleted slot.
        b.asm.mv(r_i, r_pos)
        shift = b.asm.unique_label("del_shift")
        done = b.asm.unique_label("del_done")
        b.asm.place(shift)
        b.asm.bge(r_i, r_n, done)
        b.asm.li(r_t0, INDEX + 1)
        b.asm.add(r_t0, r_t0, r_i)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.st(r_t1, r_t0, -1)
        b.asm.li(r_t0, FIELDS + 1)
        b.asm.add(r_t0, r_t0, r_i)
        b.asm.ld(r_t1, r_t0, 0)
        b.asm.st(r_t1, r_t0, -1)
        b.asm.addi(r_i, r_i, 1)
        b.asm.j(shift)
        b.asm.place(done)
        store_count(r_n)

    with b.function("lookup"):
        b.call("bsearch")
        with b.if_("ne", r_found, "r0"):
            # Validate the payload (a couple of dependent checks).
            b.asm.li(r_t0, FIELDS)
            b.asm.add(r_t0, r_t0, r_pos)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.muli(r_t0, r_key, 7)
            with b.if_("ne", r_t1, r_t0):
                # Repair corrupted payloads (never happens; the untaken
                # arm mirrors vortex's pervasive integrity checks).
                b.asm.li(r_t0, FIELDS)
                b.asm.add(r_t0, r_t0, r_pos)
                b.asm.muli(r_t1, r_key, 7)
                b.asm.st(r_t1, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x50F7)
        store_count("r0")
        b.asm.li("r16", 1)               # previously-touched key
        with b.for_range("r15", 0, outer):
            # Transactions have temporal locality: 3/4 of operations
            # revisit the neighbourhood of the previous key (real database
            # access streams are skewed), so index-walk branch sequences
            # recur; 1/4 jump to a fresh random key.
            rand_into(b, r_t1, 4)
            with b.if_else("eq", r_t1, "r0") as fresh:
                rand_into(b, r_key, KEY_SPACE)
                fresh.otherwise()
                rand_into(b, r_key, 8)
                b.asm.add(r_key, r_key, "r16")
                b.asm.andi(r_key, r_key, KEY_SPACE - 1)
            b.asm.mv("r16", r_key)
            rand_into(b, r_t1, 10)
            b.asm.li(r_t0, 6)
            with b.if_else("lt", r_t1, r_t0) as txn:
                b.call("lookup")                     # 60%
                txn.otherwise()
                b.asm.li(r_t0, 9)
                with b.if_else("lt", r_t1, r_t0) as wr:
                    b.call("insert")                 # 30%
                    wr.otherwise()
                    b.call("delete")                 # 10%

    return b.build()
