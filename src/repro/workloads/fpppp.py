"""``fpppp`` analog (SPECfp95 145.fpppp).

The original computes two-electron integral derivatives for quantum
chemistry and is famous for *enormous* basic blocks — hundreds of
floating-point operations between branches — giving near-perfect branch
prediction and the highest instructions-per-block in the suite.

The analog reproduces exactly that shape: an integral kernel that is one
long unrolled fixed-point expression (~200 ALU operations straight-line)
evaluated per shell quadruple inside a shallow loop nest.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

PARAMS = 0
N_PARAMS = 64
RESULTS = 64
N_SHELLS = 48
OUTER = 1_000_000


@REGISTRY.register("fpppp", SUITE_FP,
                   "quantum chemistry kernel with ~200-op basic blocks")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the shell-quadruple sweeps."""
    b = ProgramBuilder(name="fpppp", data_size=1 << 11)

    r_i = "r3"
    r_j = "r4"
    r_t0 = "r10"
    acc = ["r11", "r12", "r13", "r14", "r15", "r16", "r17", "r18"]

    with b.function("integral_kernel", leaf=True):
        # Load eight parameters selected by (i, j).
        b.asm.add(r_t0, r_i, r_j)
        b.asm.andi(r_t0, r_t0, N_PARAMS - 8 - 1)
        b.asm.addi(r_t0, r_t0, PARAMS)
        for n, reg in enumerate(acc):
            b.asm.ld(reg, r_t0, n)
        # The long straight-line expression: ~25 rounds of 8 dependent
        # ALU operations with rotating operands (~200 ops, no branches).
        for round_idx in range(25):
            a = acc[round_idx % 8]
            c = acc[(round_idx + 3) % 8]
            d = acc[(round_idx + 5) % 8]
            b.asm.mul(a, a, c)
            b.asm.srli(a, a, 7)
            b.asm.add(a, a, d)
            b.asm.xor(c, c, a)
            b.asm.muli(d, d, 3)
            b.asm.srli(d, d, 1)
            b.asm.sub(d, d, c)
            b.asm.add(a, a, d)
        # Fold the lanes and store one result word.
        for reg in acc[1:]:
            b.asm.add(acc[0], acc[0], reg)
        b.asm.andi(acc[0], acc[0], (1 << 20) - 1)
        b.asm.add(r_t0, r_i, r_j)
        b.asm.andi(r_t0, r_t0, N_PARAMS - 1)
        b.asm.addi(r_t0, r_t0, RESULTS)
        b.asm.st(acc[0], r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0xF999)
        with b.for_range(r_i, 0, N_PARAMS):
            rand_into(b, "r11", 1 << 16)
            b.asm.addi(r_t0, r_i, PARAMS)
            b.asm.st("r11", r_t0, 0)
        with b.for_range("r19", 0, outer):
            with b.for_range(r_i, 0, N_SHELLS):
                with b.for_range(r_j, 0, N_SHELLS):
                    b.call("integral_kernel")

    return b.build()
