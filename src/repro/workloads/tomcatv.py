"""``tomcatv`` analog (SPECfp95 101.tomcatv).

The original is a vectorised mesh-generation code: repeated sweeps of
nested i/j loops applying a 9-point stencil to two coordinate grids, plus a
residual-maximum reduction.  Branches are almost entirely loop back-edges —
the high-predictability profile typical of SPECfp95.

The analog performs the same sweeps in fixed-point integer arithmetic over
two N x N grids, with a residual max whose compare is the only
data-dependent branch.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

N = 32
GRID_X = 0
GRID_Y = N * N
RHS = 2 * N * N
OUTER = 1_000_000


@REGISTRY.register("tomcatv", SUITE_FP,
                   "mesh relaxation: 9-point stencil sweeps + residual max")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the relaxation sweeps."""
    b = ProgramBuilder(name="tomcatv", data_size=1 << 13)

    r_i = "r3"
    r_j = "r4"
    r_t0 = "r10"
    r_t1 = "r11"
    r_c = "r12"       # centre value
    r_acc = "r13"
    r_res = "r14"     # residual max
    r_base = "r15"    # row base address

    def cell(dest, grid, row_base, col_off):
        b.asm.add(r_t0, row_base, col_off)
        b.asm.addi(r_t0, r_t0, grid)
        b.asm.ld(dest, r_t0, 0)

    with b.function("sweep", leaf=True):
        b.asm.li(r_res, 0)
        with b.for_range(r_i, 1, N - 1):
            b.asm.muli(r_base, r_i, N)
            with b.for_range(r_j, 1, N - 1):
                # 5 neighbours from X, 4 diagonal from Y: a long
                # straight-line body, tomcatv's signature.
                b.asm.add(r_t1, r_base, r_j)
                cell(r_c, GRID_X, r_base, r_j)
                b.asm.mv(r_acc, r_c)
                cell(r_t1, GRID_X, r_base, r_j)  # reload as mixing value
                b.asm.addi(r_t0, r_j, -1)
                cell(r_t1, GRID_X, r_base, r_t0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_j, 1)
                cell(r_t1, GRID_X, r_base, r_t0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, -N)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_X)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, N)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_X)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, -N - 1)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_Y)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, -N + 1)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_Y)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, N - 1)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_Y)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                b.asm.addi(r_t0, r_base, N + 1)
                b.asm.add(r_t0, r_t0, r_j)
                b.asm.addi(r_t0, r_t0, GRID_Y)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_acc, r_acc, r_t1)
                # new = (acc * 7) >> 6 (fixed-point relaxation weight)
                b.asm.muli(r_acc, r_acc, 7)
                b.asm.srli(r_acc, r_acc, 6)
                # residual = (new - old)^2 tracked as max; squaring keeps
                # the magnitude branch-free, like hardware FP abs.
                b.asm.sub(r_t1, r_acc, r_c)
                b.asm.mul(r_t1, r_t1, r_t1)
                with b.if_("gt", r_t1, r_res):
                    b.asm.mv(r_res, r_t1)
                # write back into RHS (ping-pong happens via copy pass)
                b.asm.add(r_t0, r_base, r_j)
                b.asm.addi(r_t0, r_t0, RHS)
                b.asm.st(r_acc, r_t0, 0)

    with b.function("copy_back", leaf=True):
        with b.for_range(r_i, 1, N - 1):
            b.asm.muli(r_base, r_i, N)
            with b.for_range(r_j, 1, N - 1):
                b.asm.add(r_t0, r_base, r_j)
                b.asm.addi(r_t0, r_t0, RHS)
                b.asm.ld(r_t1, r_t0, 0)
                b.asm.add(r_t0, r_base, r_j)
                b.asm.addi(r_t0, r_t0, GRID_X)
                b.asm.st(r_t1, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x70C47)
        with b.for_range(r_i, 0, N * N):
            rand_into(b, r_t1, 1024)
            b.asm.addi(r_t0, r_i, GRID_X)
            b.asm.st(r_t1, r_t0, 0)
            rand_into(b, r_t1, 1024)
            b.asm.addi(r_t0, r_i, GRID_Y)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("sweep")
            b.call("copy_back")

    return b.build()
