"""``swim`` analog (SPECfp95 102.swim).

The original is a shallow-water finite-difference model: three sweeps per
timestep over U/V/P grids with periodic boundary wrap-around.  Control flow
is almost purely counted loops; the wrap at the grid edge adds one
predictable conditional per row/column.

The analog runs the same three-sweep timestep in fixed point over three
N x N grids with explicit periodic-wrap index fixups.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

N = 32
U = 0
V = N * N
P = 2 * N * N
OUTER = 1_000_000


@REGISTRY.register("swim", SUITE_FP,
                   "shallow-water stencils with periodic wrap branches")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the timesteps."""
    b = ProgramBuilder(name="swim", data_size=1 << 13)

    r_i = "r3"
    r_j = "r4"
    r_ip = "r5"       # i+1 with wrap
    r_jp = "r6"       # j+1 with wrap
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_c = "r13"

    def load(dest, grid, row, col):
        b.asm.muli(r_t0, row, N)
        b.asm.add(r_t0, r_t0, col)
        b.asm.addi(r_t0, r_t0, grid)
        b.asm.ld(dest, r_t0, 0)

    def store(src, grid, row, col):
        b.asm.muli(r_t0, row, N)
        b.asm.add(r_t0, r_t0, col)
        b.asm.addi(r_t0, r_t0, grid)
        b.asm.st(src, r_t0, 0)

    def wrapped_inc(dest, src):
        b.asm.addi(dest, src, 1)
        b.asm.li(r_t1, N)
        with b.if_("ge", dest, r_t1):   # taken once per row: predictable
            b.asm.li(dest, 0)

    def sweep(name, src_a, src_b, dst, weight):
        with b.function(name, leaf=True):
            with b.for_range(r_i, 0, N):
                wrapped_inc(r_ip, r_i)
                with b.for_range(r_j, 0, N):
                    wrapped_inc(r_jp, r_j)
                    load(r_a, src_a, r_i, r_j)
                    load(r_c, src_a, r_ip, r_j)
                    b.asm.add(r_a, r_a, r_c)
                    load(r_c, src_a, r_i, r_jp)
                    b.asm.add(r_a, r_a, r_c)
                    load(r_c, src_b, r_i, r_j)
                    b.asm.sub(r_a, r_a, r_c)
                    load(r_c, src_b, r_ip, r_jp)
                    b.asm.add(r_a, r_a, r_c)
                    b.asm.muli(r_a, r_a, weight)
                    b.asm.srli(r_a, r_a, 3)
                    store(r_a, dst, r_i, r_j)

    sweep("update_u", P, V, U, 3)
    sweep("update_v", U, P, V, 5)
    sweep("update_p", V, U, P, 7)

    with b.function("main"):
        seed_rng(b, 0x5717)
        with b.for_range(r_i, 0, 3 * N * N):
            rand_into(b, r_t1, 512)
            b.asm.mv(r_t0, r_i)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("update_u")
            b.call("update_v")
            b.call("update_p")

    return b.build()
