"""``applu`` analog (SPECfp95 110.applu).

The original solves coupled parabolic/elliptic PDEs with an SSOR scheme:
lower- then upper-triangular sweeps of triple-nested loops applying small
dense block kernels per cell.  Almost every branch is a loop bound.

The analog performs forward and backward SSOR-style sweeps over a 3D
(flattened) grid, each cell combining its three lower (or upper)
neighbours through a fixed 3-tap kernel in fixed point.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_FP
from .codegen import rand_into, seed_rng

NX, NY, NZ = 12, 12, 8
GRID = 0
SIZE = NX * NY * NZ
OUTER = 1_000_000


@REGISTRY.register("applu", SUITE_FP,
                   "SSOR solver: forward/backward triple-nested sweeps")
def build(outer: int = OUTER) -> Program:
    """Build the analog; ``outer`` bounds the SSOR iterations."""
    b = ProgramBuilder(name="applu", data_size=1 << 12)

    r_i = "r3"
    r_j = "r4"
    r_k = "r5"
    r_t0 = "r10"
    r_t1 = "r11"
    r_a = "r12"
    r_c = "r13"

    def index(dest, i, j, k):
        b.asm.muli(dest, i, NY * NZ)
        b.asm.muli(r_t1, j, NZ)
        b.asm.add(dest, dest, r_t1)
        b.asm.add(dest, dest, k)
        b.asm.addi(dest, dest, GRID)

    def kernel(sign: int) -> None:
        index(r_t0, r_i, r_j, r_k)
        b.asm.ld(r_c, r_t0, 0)
        b.asm.muli(r_a, r_c, 4)
        b.asm.ld(r_t1, r_t0, sign * NY * NZ)   # +-x neighbour
        b.asm.add(r_a, r_a, r_t1)
        b.asm.ld(r_t1, r_t0, sign * NZ)        # +-y neighbour
        b.asm.add(r_a, r_a, r_t1)
        b.asm.ld(r_t1, r_t0, sign * 1)         # +-z neighbour
        b.asm.add(r_a, r_a, r_t1)
        b.asm.muli(r_a, r_a, 5)
        b.asm.srli(r_a, r_a, 5)
        b.asm.st(r_a, r_t0, 0)

    with b.function("forward_sweep", leaf=True):
        with b.for_range(r_i, 1, NX):
            with b.for_range(r_j, 1, NY):
                with b.for_range(r_k, 1, NZ):
                    kernel(-1)

    with b.function("backward_sweep", leaf=True):
        with b.for_range(r_i, NX - 2, -1, step=-1):
            with b.for_range(r_j, NY - 2, -1, step=-1):
                with b.for_range(r_k, NZ - 2, -1, step=-1):
                    kernel(+1)

    with b.function("main"):
        seed_rng(b, 0xA991)
        with b.for_range(r_i, 0, SIZE):
            rand_into(b, r_t1, 1024)
            b.asm.mv(r_t0, r_i)
            b.asm.st(r_t1, r_t0, 0)
        with b.for_range("r16", 0, outer):
            b.call("forward_sweep")
            b.call("backward_sweep")

    return b.build()
