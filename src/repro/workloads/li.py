"""``li`` analog (SPECint95 130.li).

The original is a Lisp interpreter: its signature control flow is the
dispatch loop — an indirect jump through a handler table whose target
changes with every bytecode — plus recursive evaluation and list traversal.

The analog is a small stack VM interpreted by ISA code.  A handler jump
table is built at startup (handler addresses become data, the classic
interpreter pattern), and the dispatch ``jr`` jumps through it.  The VM runs
a mix of bytecode programs: an iterative accumulator loop, a recursive
Fibonacci (VM-level CALL/RET exercising a VM return stack), and a list-sum
over cons cells, so the dispatch target sequence is long and varied —
exactly what stresses indirect-target prediction.
"""

from __future__ import annotations

from typing import Dict

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import build_two_pass

# VM opcodes.
OP_HALT = 0
OP_PUSH = 1    # push immediate (next word)
OP_ADD = 2
OP_SUB = 3
OP_DUP = 4
OP_JNZ = 5     # pop; jump to absolute vm address (next word) if non-zero
OP_CALL = 6    # call vm address (next word)
OP_RET = 7
OP_LOAD = 8    # pop address, push mem[HEAP + address]
OP_LT = 9      # push (a < b)
N_OPS = 10

# Data-memory layout.
JUMP_TABLE = 0                 # N_OPS handler addresses
CODE = 64                      # VM bytecode
VM_STACK = 1024                # VM operand stack
VM_CALLS = 2048                # VM call stack
HEAP = 3072                    # cons cells / data for OP_LOAD
HEAP_LEN = 512

OUTER_RUNS = 1_000_000  # budget truncates


def _vm_programs():
    """Assemble the VM bytecode image (word list placed at CODE).

    Returns ``(code, entries)``.  Jump/call targets are patched after
    emission so the layout bookkeeping cannot drift.
    """
    code = []
    patches = []  # (position, key)
    marks = {}

    def emit(*words):
        code.extend(words)

    def mark(key):
        marks[key] = len(code)

    def ref(key):
        patches.append((len(code), key))
        code.append(0)

    # Program A: countdown with mixed arithmetic.
    #   n = 25; loop: n = (n - 2) + 1; if n: loop
    mark("a_entry")
    emit(OP_PUSH, 25)
    mark("a_loop")
    emit(OP_PUSH, 2)
    emit(OP_SUB)
    emit(OP_PUSH, 1)
    emit(OP_ADD)
    emit(OP_DUP)
    emit(OP_JNZ)
    ref("a_loop")
    emit(OP_HALT)

    # Program B: recursive countdown through VM CALL/RET.
    mark("b_entry")
    emit(OP_PUSH, 12)
    emit(OP_CALL)
    ref("b_fn")
    emit(OP_HALT)
    mark("b_fn")            # fn(n): if n: fn(n-1)
    emit(OP_DUP)
    emit(OP_JNZ)
    ref("b_recurse")
    emit(OP_RET)
    mark("b_recurse")
    emit(OP_PUSH, 1)
    emit(OP_SUB)
    emit(OP_CALL)
    ref("b_fn")
    emit(OP_RET)

    # Program C: pointer chase across the heap until a zero cell.
    #   idx = 501; loop: idx = heap[idx]; if idx: loop
    mark("c_entry")
    emit(OP_PUSH, 501)
    mark("c_loop")
    emit(OP_LOAD)
    emit(OP_DUP)
    emit(OP_JNZ)
    ref("c_loop")
    emit(OP_HALT)

    for position, key in patches:
        code[position] = marks[key]
    return code, [marks["a_entry"], marks["b_entry"], marks["c_entry"]]


@REGISTRY.register("li", SUITE_INT,
                   "stack-VM interpreter with indirect handler dispatch")
def build(outer: int = OUTER_RUNS) -> Program:
    """Build the analog; ``outer`` bounds the VM-program runs."""
    code, entries = _vm_programs()

    def make(b: ProgramBuilder, labels: Dict[str, int]) -> None:
        r_pc = "r3"       # VM program counter
        r_sp = "r4"       # VM operand stack pointer
        r_cs = "r5"       # VM call stack pointer
        r_op = "r6"
        r_a = "r7"
        r_b = "r8"
        r_t0 = "r10"
        r_t1 = "r11"

        handlers = ["h_halt", "h_push", "h_add", "h_sub", "h_dup", "h_jnz",
                    "h_call", "h_ret", "h_load", "h_lt"]

        with b.function("vm_init", leaf=True):
            # Install handler addresses into the jump table.
            for i, name in enumerate(handlers):
                b.asm.li(r_t0, labels.get(name, 0))
                b.asm.li(r_t1, JUMP_TABLE + i)
                b.asm.st(r_t0, r_t1, 0)
            # Install the bytecode image.
            for i, word in enumerate(code):
                b.asm.li(r_t0, word)
                b.asm.li(r_t1, CODE + i)
                b.asm.st(r_t0, r_t1, 0)
            # Seed the heap with a pseudo-random but strictly decreasing
            # pointer web (heap[i] < i), so pointer chases provably reach 0.
            value = 1
            for i in range(HEAP_LEN):
                value = (value * 48271 + 11) & 0x7FFFFFFF
                stored = value % i if i > 1 else 0
                b.asm.li(r_t0, stored)
                b.asm.li(r_t1, HEAP + i)
                b.asm.st(r_t0, r_t1, 0)

        with b.function("vm_run", leaf=True):
            # r_pc holds the VM entry address; stacks reset per run.
            b.asm.li(r_sp, VM_STACK)
            b.asm.li(r_cs, VM_CALLS)
            b.asm.label("dispatch")
            b.asm.li(r_t0, CODE)
            b.asm.add(r_t0, r_t0, r_pc)
            b.asm.ld(r_op, r_t0, 0)
            b.asm.addi(r_pc, r_pc, 1)
            b.asm.li(r_t0, JUMP_TABLE)
            b.asm.add(r_t0, r_t0, r_op)
            b.asm.ld(r_t1, r_t0, 0)
            b.asm.jr(r_t1)                      # the signature indirect jump

            b.asm.label("h_push")
            b.asm.li(r_t0, CODE)
            b.asm.add(r_t0, r_t0, r_pc)
            b.asm.ld(r_a, r_t0, 0)
            b.asm.addi(r_pc, r_pc, 1)
            b.asm.st(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, 1)
            b.asm.j("dispatch")

            b.asm.label("h_add")
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_b, r_sp, 0)
            b.asm.add(r_a, r_a, r_b)
            b.asm.st(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, 1)
            b.asm.j("dispatch")

            b.asm.label("h_sub")
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_b, r_sp, 0)
            b.asm.sub(r_a, r_b, r_a)
            b.asm.st(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, 1)
            b.asm.j("dispatch")

            b.asm.label("h_dup")
            b.asm.addi(r_t0, r_sp, -1)
            b.asm.ld(r_a, r_t0, 0)
            b.asm.st(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, 1)
            b.asm.j("dispatch")

            b.asm.label("h_jnz")
            b.asm.li(r_t0, CODE)
            b.asm.add(r_t0, r_t0, r_pc)
            b.asm.ld(r_b, r_t0, 0)              # target
            b.asm.addi(r_pc, r_pc, 1)
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_a, r_sp, 0)
            with b.if_("ne", r_a, "r0"):
                b.asm.mv(r_pc, r_b)
            b.asm.j("dispatch")

            b.asm.label("h_call")
            b.asm.li(r_t0, CODE)
            b.asm.add(r_t0, r_t0, r_pc)
            b.asm.ld(r_b, r_t0, 0)
            b.asm.addi(r_pc, r_pc, 1)
            b.asm.st(r_pc, r_cs, 0)
            b.asm.addi(r_cs, r_cs, 1)
            b.asm.mv(r_pc, r_b)
            b.asm.j("dispatch")

            b.asm.label("h_ret")
            b.asm.addi(r_cs, r_cs, -1)
            b.asm.ld(r_pc, r_cs, 0)
            b.asm.j("dispatch")

            b.asm.label("h_load")
            b.asm.addi(r_t0, r_sp, -1)
            b.asm.ld(r_a, r_t0, 0)
            # Reduce into the heap (keeps every access in range).
            b.asm.li(r_t1, HEAP_LEN)
            b.asm.mod(r_a, r_a, r_t1)
            with b.if_("lt", r_a, "r0"):
                b.asm.li(r_t1, HEAP_LEN)
                b.asm.add(r_a, r_a, r_t1)
            b.asm.li(r_t1, HEAP)
            b.asm.add(r_t1, r_t1, r_a)
            b.asm.ld(r_a, r_t1, 0)
            b.asm.addi(r_t0, r_sp, -1)
            b.asm.st(r_a, r_t0, 0)
            b.asm.j("dispatch")

            b.asm.label("h_lt")
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, -1)
            b.asm.ld(r_b, r_sp, 0)
            b.asm.slt(r_a, r_b, r_a)
            b.asm.st(r_a, r_sp, 0)
            b.asm.addi(r_sp, r_sp, 1)
            b.asm.j("dispatch")

            b.asm.label("h_halt")
            # Fall through to the function epilogue.

        with b.function("main"):
            b.call("vm_init")
            with b.for_range("r15", 0, outer):
                for entry in entries:
                    b.asm.li(r_pc, entry)
                    b.call("vm_run")

    return build_two_pass(make, "li", data_size=1 << 14)
