"""``go`` analog (SPECint95 099.go).

The original plays Go: board-scanning heuristics and recursive group/
territory analysis with highly irregular, data-dependent branching — it has
the worst branch prediction accuracy in SPECint95.

The analog keeps that structure: a 19x19 board seeded pseudo-randomly,
recursive flood-fill to measure group sizes and liberties (4-neighbour
branching on cell contents), and a move-evaluation sweep that scores
candidate points with several data-dependent comparisons per cell.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .base import REGISTRY, SUITE_INT
from .codegen import rand_into, seed_rng

SIZE = 19
CELLS = SIZE * SIZE
BOARD = 0            # 0 empty, 1 black, 2 white
VISITED = 512
SCORES = 1024
OUTER_MOVES = 1_000_000  # effectively unbounded; budget truncates


@REGISTRY.register("go", SUITE_INT,
                   "board heuristics with recursive group flood-fill")
def build(outer: int = OUTER_MOVES) -> Program:
    """Build the analog; ``outer`` bounds the move count (tests use
    small bounds to run to HALT for golden-model comparison)."""
    b = ProgramBuilder(name="go", data_size=1 << 14, stack_words=1 << 12)

    r_cell = "r3"     # flood-fill argument: cell index
    r_color = "r4"    # flood-fill argument: group colour
    r_count = "r5"    # accumulated group size
    r_t0 = "r10"
    r_t1 = "r11"
    r_row = "r12"
    r_col = "r13"
    r_best = "r14"
    r_idx = "r15"
    r_move = "r16"

    # ------------------------------------------------------------------
    # Recursive group flood-fill: counts connected same-colour stones.
    # ------------------------------------------------------------------
    with b.function("flood"):
        # Bounds: cell in [0, CELLS)
        with b.if_("lt", r_cell, "r0"):
            b.return_()
        b.asm.li(r_t0, CELLS)
        with b.if_("ge", r_cell, r_t0):
            b.return_()
        # Already visited?
        b.asm.li(r_t0, VISITED)
        b.asm.add(r_t0, r_t0, r_cell)
        b.asm.ld(r_t1, r_t0, 0)
        with b.if_("ne", r_t1, "r0"):
            b.return_()
        # Same colour?
        b.asm.li(r_t0, BOARD)
        b.asm.add(r_t0, r_t0, r_cell)
        b.asm.ld(r_t1, r_t0, 0)
        with b.if_("ne", r_t1, r_color):
            b.return_()
        # Mark and count.
        b.asm.li(r_t0, VISITED)
        b.asm.add(r_t0, r_t0, r_cell)
        b.asm.li(r_t1, 1)
        b.asm.st(r_t1, r_t0, 0)
        b.asm.addi(r_count, r_count, 1)
        # Recurse over the four neighbours (column checks guard wrap).
        b.push(r_cell)
        b.asm.addi(r_cell, r_cell, -SIZE)   # north
        b.call("flood")
        b.pop(r_cell)
        b.push(r_cell)
        b.asm.addi(r_cell, r_cell, SIZE)    # south
        b.call("flood")
        b.pop(r_cell)
        b.asm.li(r_t0, SIZE)
        b.asm.mod(r_t1, r_cell, r_t0)
        with b.if_("ne", r_t1, "r0"):       # not on west edge
            b.push(r_cell)
            b.asm.addi(r_cell, r_cell, -1)
            b.call("flood")
            b.pop(r_cell)
        b.asm.li(r_t0, SIZE)
        b.asm.mod(r_t1, r_cell, r_t0)
        b.asm.li(r_t0, SIZE - 1)
        with b.if_("ne", r_t1, r_t0):       # not on east edge
            b.push(r_cell)
            b.asm.addi(r_cell, r_cell, 1)
            b.call("flood")
            b.pop(r_cell)

    # ------------------------------------------------------------------
    # Clear the visited map (predictable memset).
    # ------------------------------------------------------------------
    with b.function("clear_visited", leaf=True):
        with b.for_range(r_t0, 0, CELLS):
            b.asm.li(r_t1, VISITED)
            b.asm.add(r_t1, r_t1, r_t0)
            b.asm.st("r0", r_t1, 0)

    # ------------------------------------------------------------------
    # Score sweep: for each cell, a few data-dependent heuristics.
    # ------------------------------------------------------------------
    with b.function("score_board"):
        b.asm.li(r_best, -1)
        with b.for_range(r_idx, 0, CELLS):
            b.asm.li(r_t0, BOARD)
            b.asm.add(r_t0, r_t0, r_idx)
            b.asm.ld(r_t1, r_t0, 0)
            with b.if_("eq", r_t1, "r0"):           # empty point
                # Heuristic: prefer points whose neighbours mix colours.
                b.asm.li(r_move, 0)
                b.asm.li(r_t0, SIZE)
                b.asm.div(r_row, r_idx, r_t0)
                b.asm.mod(r_col, r_idx, r_t0)
                with b.if_("gt", r_row, "r0"):
                    b.asm.li(r_t0, BOARD - SIZE)
                    b.asm.add(r_t0, r_t0, r_idx)
                    b.asm.ld(r_t1, r_t0, 0)
                    b.asm.add(r_move, r_move, r_t1)
                b.asm.li(r_t0, SIZE - 1)
                with b.if_("lt", r_row, r_t0):
                    b.asm.li(r_t0, BOARD + SIZE)
                    b.asm.add(r_t0, r_t0, r_idx)
                    b.asm.ld(r_t1, r_t0, 0)
                    b.asm.add(r_move, r_move, r_t1)
                with b.if_("gt", r_col, "r0"):
                    b.asm.li(r_t0, BOARD - 1)
                    b.asm.add(r_t0, r_t0, r_idx)
                    b.asm.ld(r_t1, r_t0, 0)
                    b.asm.add(r_move, r_move, r_t1)
                b.asm.li(r_t0, SIZE - 1)
                with b.if_("lt", r_col, r_t0):
                    b.asm.li(r_t0, BOARD + 1)
                    b.asm.add(r_t0, r_t0, r_idx)
                    b.asm.ld(r_t1, r_t0, 0)
                    b.asm.add(r_move, r_move, r_t1)
                # Keep the best-scoring point so far.
                with b.if_("gt", r_move, r_best):
                    b.asm.mv(r_best, r_move)
                b.asm.li(r_t0, SCORES)
                b.asm.add(r_t0, r_t0, r_idx)
                b.asm.st(r_move, r_t0, 0)

    with b.function("main"):
        seed_rng(b, 0x60B0A8D)
        # Seed the board: ~1/3 empty, 1/3 black, 1/3 white.
        with b.for_range(r_idx, 0, CELLS):
            rand_into(b, r_t0, 0)
            b.asm.li(r_t1, 3)
            b.asm.mod(r_t0, r_t0, r_t1)
            b.asm.li(r_t1, BOARD)
            b.asm.add(r_t1, r_t1, r_idx)
            b.asm.st(r_t0, r_t1, 0)
        with b.for_range("r18", 0, outer):
            # Place a stone at a random point (alternating colour).
            rand_into(b, r_cell, 512)
            b.asm.li(r_t0, CELLS)
            b.asm.mod(r_cell, r_cell, r_t0)
            b.asm.andi(r_color, "r18", 1)
            b.asm.addi(r_color, r_color, 1)
            b.asm.li(r_t0, BOARD)
            b.asm.add(r_t0, r_t0, r_cell)
            b.asm.st(r_color, r_t0, 0)
            # Measure its group.
            b.call("clear_visited")
            b.asm.li(r_count, 0)
            b.call("flood")
            # Big groups are "captured" — removed from the board — which
            # keeps the position in flux indefinitely (and is what
            # actually happens in Go).  The visited map marks the group.
            b.asm.li(r_t0, 8)
            with b.if_("gt", r_count, r_t0):
                with b.for_range(r_idx, 0, CELLS):
                    b.asm.li(r_t0, VISITED)
                    b.asm.add(r_t0, r_t0, r_idx)
                    b.asm.ld(r_t1, r_t0, 0)
                    with b.if_("ne", r_t1, "r0"):
                        b.asm.li(r_t0, BOARD)
                        b.asm.add(r_t0, r_t0, r_idx)
                        b.asm.st("r0", r_t0, 0)
            # Mid-size groups trigger a full board rescore.
            b.asm.li(r_t0, 4)
            with b.if_("gt", r_count, r_t0):
                b.call("score_board")

    return b.build()
