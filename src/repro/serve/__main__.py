"""Command-line drivers for the prediction service.

Usage::

    python -m repro.serve traffic --seed 5 --requests 2000
    python -m repro.serve chaos --seed 5 --requests 10000
    python -m repro.serve listen --port 8371

``traffic`` measures cache hit-rate and tail latency under a seeded
arrival/skew model; ``chaos`` runs the fault-injected campaign and
exits 1 unless every completed response was bit-exact and every failure
typed; ``listen`` exposes the JSON-lines TCP frontend.  Bad
configuration exits 2, like the main CLI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import chaos as chaos_mod
from . import config as serve_config
from . import net
from .service import PredictionService
from .traffic import (
    ARRIVALS,
    PATTERNS,
    TrafficModel,
    build_universe,
    request_stream,
    run_traffic,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Fault-hardened prediction service: traffic and "
                    "chaos drivers, TCP frontend.",
        epilog="Configuration: REPRO_SERVE_QUEUE, REPRO_SERVE_BATCH, "
               "REPRO_SERVE_DEADLINE, REPRO_SERVE_BREAKER_THRESHOLD, "
               "REPRO_SERVE_BREAKER_COOLDOWN (see docs/robustness.md); "
               "REPRO_FAULT_SPEC injects deterministic service-level "
               "faults.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=5)
        p.add_argument("--requests", type=int, default=2000)
        p.add_argument("--universe", type=int, default=40,
                       help="distinct requests in the sampled universe")
        p.add_argument("--budget", type=int, default=3000,
                       help="instructions per workload trace")
        p.add_argument("--jobs", type=int, default=2,
                       help="sweep worker processes per batch")
        p.add_argument("--queue", type=int, default=None,
                       help="admission queue bound (default: "
                            "REPRO_SERVE_QUEUE)")
        p.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds")

    p = sub.add_parser("traffic", help="measure hit-rate and latency "
                                       "under a seeded traffic model")
    add_common(p)
    p.add_argument("--pattern", choices=PATTERNS, default="zipfian")
    p.add_argument("--arrival", choices=ARRIVALS, default="steady")
    p.add_argument("--burst", type=int, default=32)

    p = sub.add_parser("chaos", help="fault-injected campaign asserting "
                                     "bit-exact or typed outcomes")
    add_common(p)
    p.add_argument("--output", type=Path,
                   default=chaos_mod.DEFAULT_OUTPUT,
                   help="machine-readable campaign summary (JSON)")

    p = sub.add_parser("listen", help="run the JSON-lines TCP frontend")
    p.add_argument("--host", default=net.DEFAULT_HOST)
    p.add_argument("--port", type=int, default=net.DEFAULT_PORT)
    return parser


def _cmd_traffic(args: argparse.Namespace) -> int:
    model = TrafficModel(pattern=args.pattern, arrival=args.arrival,
                         burst=args.burst)
    universe = build_universe(args.seed, args.universe,
                              budget=args.budget)
    indexes = request_stream(model, len(universe), args.requests,
                             args.seed)

    async def _run() -> "object":
        async with PredictionService(queue_limit=args.queue,
                                     jobs=args.jobs,
                                     deadline=args.deadline) as service:
            summary, _ = await run_traffic(service, universe, indexes,
                                           model, deadline=args.deadline)
            return {"traffic": summary.to_dict(),
                    "service": service.summary()}

    print(json.dumps(asyncio.run(_run()), indent=2, sort_keys=True))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    result = chaos_mod.run_chaos(
        seed=args.seed, n_requests=args.requests,
        universe_size=args.universe, budget=args.budget,
        jobs=args.jobs, output=args.output,
        **({"queue_limit": args.queue} if args.queue is not None else {}),
        **({"deadline": args.deadline} if args.deadline is not None
           else {}))
    print(json.dumps({
        "passed": result.passed,
        "n_served_checked": result.n_served_checked,
        "mismatches": len(result.mismatches),
        "untyped_failures": len(result.untyped_failures),
        "traffic": result.traffic,
        "output": str(args.output),
    }, indent=2, sort_keys=True))
    if not result.passed:
        print("chaos campaign FAILED: see mismatches/untyped_failures "
              f"in {args.output}", file=sys.stderr)
        return 1
    return 0


def _cmd_listen(args: argparse.Namespace) -> int:
    print(f"repro.serve listening on {args.host}:{args.port} "
          f"(JSON lines; ^C stops)", file=sys.stderr)
    try:
        asyncio.run(net.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        serve_config.validate()
        if args.command == "traffic":
            return _cmd_traffic(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        return _cmd_listen(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
