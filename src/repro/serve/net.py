"""JSON-lines TCP frontend for the prediction service.

One request per line: a :class:`ServeRequest` dictionary, optionally
carrying ``id`` (echoed back verbatim) and ``deadline`` (seconds).
One response per line: the :class:`ServeResponse` dictionary, or a
typed shed/failure object.  Malformed input never kills a connection —
it gets a typed ``BadRequest`` answer, matching the service's
everything-is-typed contract.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from .requests import RequestError, ServeRequest, ServiceOverload
from .service import PredictionService

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8371


async def _answer(service: PredictionService,
                  data: Dict[str, Any]) -> Dict[str, Any]:
    request_id = data.pop("id", None)
    deadline = data.pop("deadline", None)
    try:
        if deadline is not None:
            deadline = float(deadline)
        request = ServeRequest.from_dict(data)
        response = await service.submit(request, deadline=deadline)
        out = response.to_dict()
    except (RequestError, TypeError, ValueError) as exc:
        out = {"status": "failed", "error_type": "BadRequest",
               "error": str(exc)}
    except ServiceOverload as exc:
        out = {"status": "shed", "error_type": "ServiceOverload",
               "error": str(exc), "retry_after": exc.retry_after}
    if request_id is not None:
        out["id"] = request_id
    return out


async def handle_connection(service: PredictionService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client until EOF (one JSON object per line)."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                data = json.loads(text)
                if not isinstance(data, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                out: Dict[str, Any] = {
                    "status": "failed", "error_type": "BadRequest",
                    "error": f"undecodable request line: {exc}"}
            else:
                out = await _answer(service, data)
            writer.write(json.dumps(out, sort_keys=True).encode("ascii")
                         + b"\n")
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_server(service: PredictionService,
                       host: str = DEFAULT_HOST,
                       port: int = DEFAULT_PORT,
                       ) -> "asyncio.base_events.Server":
    """Bind the frontend (port 0 picks a free port; see sockets[0])."""

    async def _handler(reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_handler, host, port)


def bound_port(server: "asyncio.base_events.Server") -> int:
    """The actual port a started server listens on."""
    assert server.sockets
    port: int = server.sockets[0].getsockname()[1]
    return port


async def serve_forever(host: str = DEFAULT_HOST,
                        port: int = DEFAULT_PORT,
                        ready: Optional["asyncio.Event"] = None) -> None:
    """Run a service plus frontend until cancelled (CLI entry)."""
    async with PredictionService() as service:
        server = await start_server(service, host, port)
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()
