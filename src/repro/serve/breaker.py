"""Per-workload-family circuit breaker.

A breaker guards the expensive fast path (worker-pool dispatch) for one
workload family.  Consecutive fast-path failures trip it OPEN; while
open, requests for the family are answered from the result store or
shed with a retry-after hint instead of burning worker attempts.  After
a cooldown the breaker HALF-OPENs and admits exactly one probe request;
a successful probe closes it, a failed probe re-opens it and restarts
the cooldown.

The clock is injectable so tests can drive state transitions without
sleeping; the default is ``time.monotonic`` (never wall-clock — see
reprolint REP102).
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Admission verdicts.
ALLOW = "allow"
PROBE = "probe"
REJECT = "reject"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(self, family: str, threshold: int, cooldown: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.family = family
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.failures = 0          #: consecutive fast-path failures
        self.opened_at = 0.0
        self._probing = False      #: a half-open probe is in flight
        #: (from_state, to_state) transition log, for metrics and tests.
        self.transitions: List[Tuple[str, str]] = []

    def _move(self, state: str) -> None:
        if state != self.state:
            self.transitions.append((self.state, state))
            self.state = state

    def admit(self) -> str:
        """Whether a request for this family may hit the fast path.

        Returns :data:`ALLOW` (closed), :data:`PROBE` (half-open, this
        request is the single probe), or :data:`REJECT` (open, or a
        probe is already in flight).
        """
        if self.state == CLOSED:
            return ALLOW
        if self.state == OPEN \
                and self._clock() - self.opened_at >= self.cooldown:
            self._move(HALF_OPEN)
            self._probing = False
        if self.state == HALF_OPEN and not self._probing:
            self._probing = True
            return PROBE
        return REJECT

    def record_success(self) -> None:
        """A fast-path attempt (or probe) for this family succeeded."""
        self.failures = 0
        self._probing = False
        self._move(CLOSED)

    def record_failure(self) -> None:
        """A fast-path attempt (or probe) for this family failed."""
        self.failures += 1
        self._probing = False
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            self.opened_at = self._clock()
            self._move(OPEN)

    def retry_after(self) -> float:
        """Seconds until the breaker would next admit a probe."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown - self._clock())

    @property
    def n_trips(self) -> int:
        """How many times the breaker has transitioned to OPEN."""
        return sum(1 for _, to in self.transitions if to == OPEN)
