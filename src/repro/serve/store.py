"""Content-addressed result store with verified reads.

Entries are keyed by the request digest and hold the *canonical JSON
bytes* of the result payload plus their SHA-256 — the same
integrity-sidecar discipline as the disk cache of
:mod:`repro.runtime.cache`, applied to the service's in-memory tier.
Every read re-verifies the checksum, so a corrupted entry (including
one corrupted deliberately by a ``corrupt:entry`` fault) produces a
clean miss and a recompute, never a silently wrong answer.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..runtime import faults
from .requests import payload_json

DEFAULT_MAX_ENTRIES = 4096


@dataclass
class StoreStats:
    """Counters for one store's lifetime."""

    hits: int = 0
    misses: int = 0
    corruptions: int = 0   #: checksum failures detected (and evicted)
    evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "corruptions": self.corruptions,
                "evictions": self.evictions}


class ResultStore:
    """LRU-bounded digest-keyed store of canonical result payloads."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 fault_spec: Optional[Tuple[faults.Fault, ...]] = None,
                 ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: digest -> (canonical payload bytes, sha256 hex, workload)
        self._entries: "OrderedDict[str, Tuple[bytes, str, str]]" = \
            OrderedDict()
        self._spec = fault_spec
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, digest: str, workload: str,
            payload: Dict[str, Any]) -> None:
        """Insert (or refresh) the payload for a request digest."""
        blob = payload_json(payload).encode("ascii")
        sha = hashlib.sha256(blob).hexdigest()
        self._entries[digest] = (blob, sha, workload)
        self._entries.move_to_end(digest)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get(self, digest: str, workload: str,
            ) -> Optional[Dict[str, Any]]:
        """Verified payload for a digest, or None on miss/corruption."""
        entry = self._entries.get(digest)
        if entry is None:
            self.stats.misses += 1
            return None
        blob, sha, stored_workload = entry
        if faults.corrupt_entry(digest, workload, self._spec):
            # Injected corruption persists until detected, like a bad
            # disk block: the verification path must catch it.
            blob = b"corrupt:" + blob
            self._entries[digest] = (blob, sha, stored_workload)
        if hashlib.sha256(blob).hexdigest() != sha:
            # Never serve bytes that fail verification — drop the entry
            # and report a miss so the caller recomputes.
            del self._entries[digest]
            self.stats.corruptions += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        decoded: Dict[str, Any] = json.loads(blob)
        return decoded
