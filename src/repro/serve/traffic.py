"""Seeded traffic generation for the prediction service.

Production request streams are skewed and lumpy, and both properties
are exactly what the service's caching and admission control exist for.
This module models them deterministically (after the cxl-fabric-sim
workload patterns): a *key-skew* model picks which request of a fixed
universe arrives next (uniform / Zipfian / hotspot / sequential), and
an *arrival* model shapes concurrency (steady one-at-a-time, or bursty
gathers that slam the admission queue).  Everything derives from one
integer seed via ``numpy.random.default_rng``, so a campaign replays
bit-identically.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .requests import (
    RUNG_CACHED,
    RUNG_FAST,
    RUNG_SCALAR,
    SERVED,
    RequestError,
    ServeRequest,
    ServeResponse,
    ServiceOverload,
)
from .service import PredictionService

PATTERNS: Tuple[str, ...] = ("uniform", "zipfian", "hotspot",
                             "sequential")
ARRIVALS: Tuple[str, ...] = ("steady", "bursty")

#: Workloads the default universe samples: cheap at small budgets, and
#: including ``kmp``, whose statistics are analytically checkable.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("kmp", "compress", "go", "li",
                                      "swim", "tomcatv")

_ENGINES: Tuple[str, ...] = ("single", "dual", "multi", "two_ahead")
_GEOMETRIES: Tuple[str, ...] = ("normal", "extend", "align")


@dataclass(frozen=True)
class TrafficModel:
    """One traffic recipe: key skew plus arrival shape."""

    pattern: str = "zipfian"
    arrival: str = "steady"
    zipf_s: float = 1.2        #: Zipf exponent (higher = more skew)
    hot_fraction: float = 0.9  #: probability mass on the hot set
    hot_keys: int = 4          #: size of the hotspot's hot set
    burst: int = 32            #: concurrent submissions per burst
    gap_s: float = 0.0         #: pause between bursts

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}, "
                             f"got {self.pattern!r}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}, "
                             f"got {self.arrival!r}")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.hot_keys < 1:
            raise ValueError("hot_keys must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.gap_s < 0:
            raise ValueError("gap_s must not be negative")


def build_universe(seed: int, n_cells: int, budget: int = 3000,
                   workloads: Optional[Sequence[str]] = None,
                   ) -> List[ServeRequest]:
    """Seeded universe of distinct, valid prediction requests.

    Samples (workload, engine, geometry, config) combinations and keeps
    only those the engines accept, so every universe member is
    servable; invalid combinations are simply re-rolled.
    """
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    rng = np.random.default_rng(seed)
    names = list(workloads if workloads is not None else DEFAULT_WORKLOADS)
    universe: List[ServeRequest] = []
    seen: Dict[str, bool] = {}
    attempts_left = 200 * n_cells
    while len(universe) < n_cells:
        attempts_left -= 1
        if attempts_left < 0:
            raise ValueError(
                f"could not sample {n_cells} distinct valid requests "
                f"(got {len(universe)}); widen the workload list")
        engine = _ENGINES[int(rng.integers(len(_ENGINES)))]
        request = ServeRequest(
            workload=names[int(rng.integers(len(names)))],
            engine=engine,
            geometry_kind=_GEOMETRIES[int(rng.integers(len(_GEOMETRIES)))],
            block_width=int(rng.choice(np.array([4, 8]))),
            budget=budget,
            n_blocks=int(rng.integers(3, 5)) if engine == "multi" else 2,
            config={
                "history_length": int(rng.integers(4, 13)),
                "n_select_tables": int(rng.choice(np.array([1, 4, 8]))),
                "near_block": bool(rng.integers(2)),
            },
        )
        try:
            request.validate()
        except RequestError:
            continue
        digest = request.digest()
        if digest in seen:
            continue
        seen[digest] = True
        universe.append(request)
    return universe


def key_weights(model: TrafficModel, n: int) -> Optional[np.ndarray]:
    """Per-key selection probabilities, or None for unweighted models."""
    if model.pattern == "zipfian":
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -model.zipf_s
        return weights / weights.sum()
    if model.pattern == "hotspot":
        hot = min(model.hot_keys, n)
        weights = np.full(n, (1.0 - model.hot_fraction) / max(1, n - hot),
                          dtype=np.float64)
        if hot == n:
            weights[:] = 0.0
        weights[:hot] = model.hot_fraction / hot
        return weights / weights.sum()
    return None


def request_stream(model: TrafficModel, n_universe: int,
                   n_requests: int, seed: int) -> np.ndarray:
    """Seeded index stream into the universe (dtype int64)."""
    if n_universe < 1:
        raise ValueError("n_universe must be >= 1")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = np.random.default_rng([seed, 1])
    if model.pattern == "sequential":
        return (np.arange(n_requests) % n_universe).astype(np.int64)
    weights = key_weights(model, n_universe)
    if weights is None:
        return rng.integers(0, n_universe, n_requests, dtype=np.int64)
    return rng.choice(n_universe, size=n_requests, p=weights,
                      ).astype(np.int64)


@dataclass
class TrafficSummary:
    """Measured outcome of one traffic run."""

    n_requests: int
    n_universe: int
    served: int
    served_fast: int
    served_scalar: int
    served_cached: int
    deduped: int
    failed: Dict[str, int]
    shed_overload: int
    shed_other: int
    hit_rate: float            #: cached serves / all serves
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_max_s: float
    elapsed_s: float
    requests_per_s: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def summarize(responses: Sequence[Optional[ServeResponse]],
              n_overloads: int, n_universe: int, elapsed_s: float,
              ) -> TrafficSummary:
    """Aggregate a run's responses (None = overload-shed) into a summary."""
    served = [r for r in responses if r is not None and r.status == SERVED]
    failed: Dict[str, int] = {}
    shed_other = 0
    for response in responses:
        if response is None or response.status == SERVED:
            continue
        if response.status == "shed":
            shed_other += 1
        else:
            key = response.error_type or "Exception"
            failed[key] = failed.get(key, 0) + 1
    latencies = np.array([r.latency_s for r in served], dtype=np.float64)
    if latencies.size == 0:
        latencies = np.zeros(1, dtype=np.float64)
    n_cached = sum(1 for r in served if r.rung == RUNG_CACHED)
    return TrafficSummary(
        n_requests=len(responses),
        n_universe=n_universe,
        served=len(served),
        served_fast=sum(1 for r in served if r.rung == RUNG_FAST),
        served_scalar=sum(1 for r in served if r.rung == RUNG_SCALAR),
        served_cached=n_cached,
        deduped=sum(1 for r in served if r.deduped),
        failed=dict(sorted(failed.items())),
        shed_overload=n_overloads,
        shed_other=shed_other,
        hit_rate=(n_cached / len(served)) if served else 0.0,
        latency_p50_s=float(np.percentile(latencies, 50)),
        latency_p95_s=float(np.percentile(latencies, 95)),
        latency_p99_s=float(np.percentile(latencies, 99)),
        latency_max_s=float(latencies.max()),
        elapsed_s=elapsed_s,
        requests_per_s=(len(responses) / elapsed_s
                        if elapsed_s > 0 else 0.0),
    )


async def run_traffic(service: PredictionService,
                      universe: Sequence[ServeRequest],
                      indexes: np.ndarray, model: TrafficModel,
                      deadline: Optional[float] = None,
                      ) -> Tuple[TrafficSummary,
                                 List[Optional[ServeResponse]]]:
    """Drive a request stream through a running service.

    Returns the summary plus the per-position responses (None where the
    admission queue shed the request with :class:`ServiceOverload` —
    still a typed outcome, counted as ``shed_overload``).
    """
    responses: List[Optional[ServeResponse]] = [None] * len(indexes)
    overloads = 0

    async def one(pos: int) -> None:
        nonlocal overloads
        try:
            responses[pos] = await service.submit(
                universe[int(indexes[pos])], deadline=deadline)
        except ServiceOverload:
            overloads += 1

    start = time.monotonic()
    if model.arrival == "bursty":
        pos = 0
        while pos < len(indexes):
            width = min(model.burst, len(indexes) - pos)
            await asyncio.gather(*(one(pos + j) for j in range(width)))
            pos += width
            if model.gap_s:
                await asyncio.sleep(model.gap_s)
    else:
        for pos in range(len(indexes)):
            await one(pos)
    elapsed = time.monotonic() - start
    return (summarize(responses, overloads, len(universe), elapsed),
            responses)
