"""The asyncio prediction service: admission, batching, degradation.

:class:`PredictionService` accepts :class:`ServeRequest` cells, batches
them through the resilient sweep executor of
:mod:`repro.runtime.resilience` into the vectorized engines, and
resolves every request with a typed :class:`ServeResponse`.  The
resilience envelope, outside-in:

* **Bounded admission queue** — a full queue rejects with a typed
  :class:`ServiceOverload` carrying a retry-after hint derived from the
  queue depth and a moving estimate of per-request service time.
* **Single-flight dedup** — concurrent identical requests (same content
  digest) ride one computation; followers get the leader's response
  flagged ``deduped``.
* **Content-addressed result store** — digest-keyed canonical payloads
  with verified reads (:mod:`repro.serve.store`); a hit serves without
  touching a worker.
* **Per-request deadlines** — a request expired in the queue fails
  typed (``DeadlineExceeded``); the tightest remaining deadline of a
  batch propagates into ``REPRO_CELL_TIMEOUT`` so a hung worker is
  killed by the executor's real deadline machinery.
* **Circuit breaker per workload family** — consecutive fast-path
  failures trip it; while open the family is served from the store or
  shed, and after a cooldown a single probe half-opens it.
* **Degradation ladder** — fast engine in pooled workers → scalar
  engine in-process → cached-only → shed.  The rung that produced each
  answer is recorded in the response metadata.

Faults are honoured deterministically: the service snapshots
``REPRO_FAULT_SPEC`` at construction, translates request-targeted
``crash``/``hang`` directives into per-batch cell faults (so worker
death and deadline kills exercise the executor's *real* recovery
paths), and applies ``fail`` directives inside the worker body as typed
failures.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import engine_mode
from ..runtime import faults, resilience
from . import breaker as breaker_mod
from . import config as serve_config
from .requests import (
    FAILED,
    RUNG_CACHED,
    RUNG_FAST,
    RUNG_SCALAR,
    RUNG_SHED,
    SERVED,
    SHED,
    RequestError,
    ServeRequest,
    ServeResponse,
    ServiceOverload,
    execute_request_cell,
    payload_digest,
    stats_payload,
)
from .store import ResultStore

#: Floor for the cell deadline propagated to workers, so a nearly
#: expired batch still gets a meaningful execution window.
MIN_CELL_TIMEOUT = 0.05

#: Initial per-request service-time estimate (seconds) seeding the EMA
#: behind retry-after hints.
INITIAL_SERVICE_ESTIMATE = 0.05

#: Default bound on the in-memory result store.
DEFAULT_STORE_ENTRIES = 4096


@dataclass
class ServiceMetrics:
    """Counters describing everything the service did."""

    submitted: int = 0
    invalid: int = 0
    served_fast: int = 0
    served_scalar: int = 0
    served_cached: int = 0
    deduped: int = 0
    shed_overload: int = 0
    shed_breaker: int = 0
    shed_shutdown: int = 0
    expired: int = 0
    #: error_type -> count of typed failed responses.
    failed: Dict[str, int] = field(default_factory=dict)
    batches: int = 0
    sharded_batches: int = 0    #: batches routed through the shard scheduler
    degraded_batches: int = 0   #: batches rescued on the scalar rung
    cell_retries: int = 0
    cell_timeouts: int = 0
    pool_respawns: int = 0

    @property
    def served(self) -> int:
        return self.served_fast + self.served_scalar + self.served_cached

    @property
    def shed(self) -> int:
        return self.shed_overload + self.shed_breaker + self.shed_shutdown

    @property
    def n_failed(self) -> int:
        return sum(self.failed.values()) + self.expired

    def record_failure(self, error_type: str) -> None:
        self.failed[error_type] = self.failed.get(error_type, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["served"] = self.served
        data["shed"] = self.shed
        data["n_failed"] = self.n_failed
        return data


@dataclass
class _Pending:
    """One admitted request waiting for (or in) a batch."""

    request: ServeRequest
    digest: str
    future: "asyncio.Future[ServeResponse]"
    submitted: float
    deadline_at: Optional[float]
    probe: bool = False


class PredictionService:
    """Asyncio façade over the resilient sweep runtime.

    Construct, then ``await start()`` (or use ``async with``); submit
    requests with :meth:`submit`.  All configuration defaults come from
    the service environment knobs (:mod:`repro.serve.config`)
    and may be overridden per instance.
    """

    def __init__(self, *, queue_limit: Optional[int] = None,
                 batch_limit: Optional[int] = None,
                 jobs: Optional[int] = None,
                 deadline: Optional[float] = None,
                 breaker_threshold: Optional[int] = None,
                 breaker_cooldown: Optional[float] = None,
                 store_entries: Optional[int] = None,
                 shards: Optional[int] = None) -> None:
        from ..runtime.executor import n_jobs
        from ..runtime.shard import shard_count

        self.queue_limit = (serve_config.queue_limit()
                            if queue_limit is None else queue_limit)
        self.batch_limit = (serve_config.batch_limit()
                            if batch_limit is None else batch_limit)
        self.default_deadline = (serve_config.default_deadline()
                                 if deadline is None else deadline)
        self._jobs = max(2, n_jobs()) if jobs is None else jobs
        #: Batch sweeps route through the shard scheduler when > 1
        #: (``REPRO_SHARDS`` unless overridden per instance); cell
        #: indexes are batch positions, which sharding preserves.
        self._shards = shard_count() if shards is None else shards
        self._breaker_threshold = (serve_config.breaker_threshold()
                                   if breaker_threshold is None
                                   else breaker_threshold)
        self._breaker_cooldown = (serve_config.breaker_cooldown()
                                  if breaker_cooldown is None
                                  else breaker_cooldown)
        #: Fault plan snapshot: mid-campaign environment mutation cannot
        #: change which faults the service honours.
        self._fault_spec = faults.active()
        self.store = ResultStore(
            max_entries=(DEFAULT_STORE_ENTRIES if store_entries is None
                         else store_entries),
            fault_spec=self._fault_spec)
        self.metrics = ServiceMetrics()
        self.breakers: Dict[str, breaker_mod.CircuitBreaker] = {}
        self._queue: "asyncio.Queue[Optional[_Pending]]" = asyncio.Queue(
            maxsize=self.queue_limit)
        self._inflight: Dict[str, "asyncio.Future[ServeResponse]"] = {}
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._service_estimate = INITIAL_SERVICE_ESTIMATE

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher; idempotent."""
        if self._running:
            return
        self._running = True
        # One thread serializes all engine dispatch, so the scoped
        # environment overrides around each rung never overlap.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop())

    async def stop(self) -> None:
        """Drain the queue, stop the dispatcher, release the workers."""
        if not self._running:
            return
        self._running = False
        await self._queue.put(None)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        while True:
            try:
                pending = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if pending is None:
                continue
            self.metrics.shed_shutdown += 1
            self._resolve(pending, self._response(
                pending, SHED, rung=RUNG_SHED,
                error_type="ServiceShutdown",
                error="service stopped before the request was batched"))
        if self._executor is not None:
            # The dispatcher is already drained, but shutdown(wait=True)
            # still joins the worker thread — do that join off-loop so a
            # slow in-flight engine call cannot stall the event loop.
            executor, self._executor = self._executor, None
            await asyncio.get_running_loop().run_in_executor(
                None, executor.shutdown)

    async def __aenter__(self) -> "PredictionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    async def submit(self, request: ServeRequest,
                     deadline: Optional[float] = None) -> ServeResponse:
        """Admit one request and await its typed response.

        Raises :class:`ServiceOverload` (with a retry-after hint) when
        the bounded admission queue is full — the only outcome that is
        an exception rather than a response, because an overloaded
        service must refuse *before* doing any work.
        """
        if not self._running:
            raise RuntimeError("PredictionService is not running; "
                               "use 'async with' or await start()")
        self.metrics.submitted += 1
        start = time.monotonic()
        try:
            request.validate()
        except RequestError as exc:
            self.metrics.invalid += 1
            self.metrics.record_failure("InvalidRequest")
            return ServeResponse(
                request_digest=request.digest(), workload=request.workload,
                status=FAILED, error_type="InvalidRequest", error=str(exc),
                latency_s=time.monotonic() - start)
        digest = request.digest()

        cached = self.store.get(digest, request.workload)
        if cached is not None:
            self.metrics.served_cached += 1
            return ServeResponse(
                request_digest=digest, workload=request.workload,
                status=SERVED, rung=RUNG_CACHED, cache_hit=True,
                payload=cached, payload_digest=payload_digest(cached),
                latency_s=time.monotonic() - start)

        leader = self._inflight.get(digest)
        if leader is not None:
            response = await asyncio.shield(leader)
            self.metrics.deduped += 1
            return dataclasses.replace(
                response, deduped=True,
                latency_s=time.monotonic() - start)

        if self._queue.full():
            self.metrics.shed_overload += 1
            raise ServiceOverload(retry_after=self._retry_after(),
                                  queue_depth=self._queue.qsize())

        effective = (self.default_deadline if deadline is None
                     else deadline)
        future: "asyncio.Future[ServeResponse]" = \
            asyncio.get_running_loop().create_future()
        self._inflight[digest] = future
        pending = _Pending(
            request=request, digest=digest, future=future,
            submitted=start,
            deadline_at=(start + effective
                         if effective is not None else None))
        self._queue.put_nowait(pending)
        return await asyncio.shield(future)

    def _retry_after(self) -> float:
        depth = self._queue.qsize()
        return max(MIN_CELL_TIMEOUT,
                   depth * self._service_estimate / max(1, self._jobs))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _breaker(self, family: str) -> breaker_mod.CircuitBreaker:
        found = self.breakers.get(family)
        if found is None:
            found = breaker_mod.CircuitBreaker(
                family, self._breaker_threshold, self._breaker_cooldown)
            self.breakers[family] = found
        return found

    def _response(self, pending: _Pending, status: str, *, rung: str = "",
                  cache_hit: bool = False, attempts: int = 0,
                  error_type: str = "", error: str = "",
                  retry_after: float = 0.0,
                  payload: Optional[Dict[str, Any]] = None,
                  ) -> ServeResponse:
        return ServeResponse(
            request_digest=pending.digest,
            workload=pending.request.workload,
            status=status, rung=rung, cache_hit=cache_hit,
            attempts=attempts, error_type=error_type, error=error,
            retry_after=retry_after,
            latency_s=time.monotonic() - pending.submitted,
            payload=payload,
            payload_digest=(payload_digest(payload)
                            if payload is not None else ""))

    def _resolve(self, pending: _Pending,
                 response: ServeResponse) -> None:
        self._inflight.pop(pending.digest, None)
        if not pending.future.done():
            pending.future.set_result(response)

    async def _dispatch_loop(self) -> None:
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            while len(batch) < self.batch_limit:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            await self._process_batch(batch)

    async def _process_batch(self, batch: List[_Pending]) -> None:
        self.metrics.batches += 1
        now = time.monotonic()
        runnable: List[_Pending] = []
        for pending in batch:
            if pending.deadline_at is not None \
                    and now >= pending.deadline_at:
                self.metrics.expired += 1
                self._resolve(pending, self._response(
                    pending, FAILED, error_type="DeadlineExceeded",
                    error="deadline expired while queued"))
                continue
            # The store may have been populated since admission (an
            # identical request completed in an earlier batch).
            cached = self.store.get(pending.digest,
                                    pending.request.workload)
            if cached is not None:
                self.metrics.served_cached += 1
                self._resolve(pending, self._response(
                    pending, SERVED, rung=RUNG_CACHED, cache_hit=True,
                    payload=cached))
                continue
            guard = self._breaker(pending.request.workload)
            verdict = guard.admit()
            if verdict == breaker_mod.REJECT:
                # Cached-only mode was already exhausted above, so the
                # ladder's last rung for this family is a typed shed.
                self.metrics.shed_breaker += 1
                self._resolve(pending, self._response(
                    pending, SHED, rung=RUNG_SHED,
                    error_type="BreakerOpen",
                    error=f"circuit breaker open for workload family "
                          f"{pending.request.workload!r}",
                    retry_after=max(guard.retry_after(),
                                    MIN_CELL_TIMEOUT)))
                continue
            pending.probe = verdict == breaker_mod.PROBE
            runnable.append(pending)
        if not runnable:
            return

        deadlines = [p.deadline_at - now for p in runnable
                     if p.deadline_at is not None]
        cell_timeout = (max(MIN_CELL_TIMEOUT, min(deadlines))
                        if deadlines else None)
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        results, report = await loop.run_in_executor(
            self._executor, self._run_rung0,
            [p.request for p in runnable], cell_timeout)
        elapsed = time.monotonic() - started
        per_request = elapsed / len(runnable)
        self._service_estimate = (0.8 * self._service_estimate
                                  + 0.2 * per_request)
        self._absorb_report(report)

        scalar_work: List[Tuple[_Pending, int]] = []
        if results is None:
            # The executor dropped cells after every recovery path —
            # completed results are lost with it, so the whole batch
            # degrades to the in-process scalar rung.
            self.metrics.degraded_batches += 1
            for idx, pending in enumerate(runnable):
                outcome = report.outcomes[idx]
                if outcome.status == resilience.FAILED:
                    self._breaker(
                        pending.request.workload).record_failure()
                scalar_work.append((pending, max(1, outcome.attempts)))
        else:
            for idx, pending in enumerate(runnable):
                outcome = report.outcomes[idx]
                cell = results[idx]
                guard = self._breaker(pending.request.workload)
                if isinstance(cell, dict) and cell.get("ok"):
                    payload: Dict[str, Any] = cell["payload"]
                    self.store.put(pending.digest,
                                   pending.request.workload, payload)
                    guard.record_success()
                    self.metrics.served_fast += 1
                    self._resolve(pending, self._response(
                        pending, SERVED, rung=RUNG_FAST,
                        attempts=outcome.attempts, payload=payload))
                else:
                    # Typed worker-side failure: the fast path is
                    # suspect for this family; rescue on the scalar
                    # rung with the next service attempt number.
                    guard.record_failure()
                    scalar_work.append((pending,
                                        max(1, outcome.attempts)))

        if not scalar_work:
            return
        scalar_results = await loop.run_in_executor(
            self._executor, self._run_scalar_batch,
            [(p.request, attempt) for p, attempt in scalar_work])
        for (pending, attempt), cell in zip(scalar_work, scalar_results):
            if cell.get("ok"):
                payload = cell["payload"]
                self.store.put(pending.digest, pending.request.workload,
                               payload)
                self.metrics.served_scalar += 1
                self._resolve(pending, self._response(
                    pending, SERVED, rung=RUNG_SCALAR,
                    attempts=attempt + 1, payload=payload))
            else:
                error_type = str(cell.get("error_type", "Exception"))
                self.metrics.record_failure(error_type)
                self._resolve(pending, self._response(
                    pending, FAILED, rung=RUNG_SCALAR,
                    attempts=attempt + 1, error_type=error_type,
                    error=str(cell.get("error", ""))))

    def _absorb_report(self, report: resilience.SweepReport) -> None:
        self.metrics.cell_retries += len(report.retried_cells)
        self.metrics.cell_timeouts += len(report.timed_out_cells)
        self.metrics.pool_respawns += report.pool_respawns

    # ------------------------------------------------------------------
    # Rungs (executor-thread side)
    # ------------------------------------------------------------------

    def _translated_spec(self, requests: List[ServeRequest],
                         ) -> Optional[str]:
        """Batch-scoped ``REPRO_FAULT_SPEC`` for the sweep workers.

        Request-targeted ``crash``/``hang`` directives become per-batch
        cell faults (positions are stable within one dispatch), so the
        executor's real respawn and deadline-kill machinery fires.
        ``fail:request`` and artifact-corruption directives pass
        through verbatim — they are applied by name inside the worker.
        Ambient ``cell``-targeted directives are dropped: sweep-cell
        indexes are meaningless against a service batch.
        """
        parts: List[str] = []
        for pos, request in enumerate(requests):
            for fault in faults.request_faults(
                    request.digest(), request.workload, self._fault_spec):
                if fault.action in ("crash", "hang"):
                    parts.append(f"{fault.action}:cell={pos},"
                                 f"times={fault.times}")
        for fault in self._fault_spec:
            if fault.kind == "request" and fault.action == "fail":
                parts.append(f"fail:request={fault.target},"
                             f"times={fault.times}")
            elif fault.action == "corrupt" and fault.kind != "entry":
                parts.append(f"corrupt:{fault.kind}={fault.target},"
                             f"times={fault.times}")
        return ";".join(parts) if parts else None

    def _run_rung0(self, requests: List[ServeRequest],
                   cell_timeout: Optional[float],
                   ) -> Tuple[Optional[List[Any]],
                              resilience.SweepReport]:
        """Fast rung: the batch through the resilient worker pool."""
        cells = [(request.to_dict(), 0) for request in requests]
        overrides: Dict[str, Optional[str]] = {
            faults.FAULTS_ENV: self._translated_spec(requests)}
        if cell_timeout is not None:
            overrides[resilience.TIMEOUT_ENV] = f"{cell_timeout:.3f}"
        if self._shards > 1 and len(cells) > 1:
            self.metrics.sharded_batches += 1
        try:
            with resilience.scoped_environ(overrides):
                sweep = resilience.run_resilient(
                    execute_request_cell, cells, jobs=self._jobs,
                    label=None, inject_faults=True,
                    shards=self._shards)
            return list(sweep.results), sweep.report
        except resilience.SweepError as exc:
            return None, exc.report
        finally:
            # Reports were already captured above; keep the module-level
            # accumulator (meant for CLI sweeps) from growing unbounded.
            resilience.drain_reports()

    def _run_scalar_batch(self,
                          items: List[Tuple[ServeRequest, int]],
                          ) -> List[Dict[str, Any]]:
        """Scalar rung: reference engines, in-process, serial.

        Mirrors the executor's serial degradation semantics: every
        fault action for a still-faulted request degrades to a raised
        :class:`~repro.runtime.faults.FaultInjected`, reported as a
        typed failure.
        """
        out: List[Dict[str, Any]] = []
        for request, attempt in items:
            try:
                faults.apply_request_faults(
                    request.digest(), request.workload, attempt,
                    hard=True, spec=self._fault_spec)
                with resilience.scoped_environ(
                        {engine_mode.ENGINE_ENV:
                         engine_mode.ENGINE_SCALAR}):
                    payload = stats_payload(request.run())
            except Exception as exc:
                out.append({"ok": False,
                            "error_type": type(exc).__name__,
                            "error": str(exc)})
                continue
            out.append({"ok": True, "payload": payload})
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Machine-readable account of the service's lifetime."""
        return {
            "metrics": self.metrics.to_dict(),
            "store": self.store.stats.to_dict(),
            "breakers": {
                family: {"state": guard.state, "trips": guard.n_trips}
                for family, guard in sorted(self.breakers.items())},
            "queue_limit": self.queue_limit,
            "batch_limit": self.batch_limit,
            "jobs": self._jobs,
            "shards": self._shards,
        }
