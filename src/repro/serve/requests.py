"""Typed request/response model for the prediction service.

A :class:`ServeRequest` is one prediction-sweep cell — (workload,
geometry, predictor configuration) — expressed entirely in JSON-safe
scalars, exactly like :class:`repro.qa.cases.QACase`: it round-trips
through JSON, has a stable content digest (the service's cache key and
single-flight identity), and rebuilds the simulated objects on demand.

A :class:`ServeResponse` is the service's *only* way to answer: every
completed request carries the canonical statistics payload plus its
digest (so chaos campaigns can compare it bit-for-bit against a
fault-free oracle), and every non-served outcome carries a typed
``error_type`` — the service never returns an untyped failure.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.config import EngineConfig
from ..core.stats import FetchStats
from ..icache.geometry import CacheGeometry
from ..runtime import faults

#: Engines a request may name, matching :data:`repro.qa.cases.ENGINE_KINDS`.
ENGINE_KINDS: Tuple[str, ...] = ("single", "dual", "multi", "two_ahead")

#: Cache geometries by CLI name.
GEOMETRY_KINDS: Tuple[str, ...] = ("normal", "extend", "align")

#: Response statuses.
SERVED = "served"
FAILED = "failed"
SHED = "shed"

#: Degradation-ladder rungs, in order of preference.
RUNG_FAST = "fast"
RUNG_SCALAR = "scalar"
RUNG_CACHED = "cached"
RUNG_SHED = "shed"


class RequestError(ValueError):
    """A request that cannot be decoded, validated, or rebuilt."""


class ServiceOverload(RuntimeError):
    """Typed admission rejection: the bounded queue is full.

    Carries a ``retry_after`` hint (seconds) derived from the queue
    depth and the service's moving estimate of per-request service time,
    so well-behaved clients can back off instead of hammering.
    """

    def __init__(self, retry_after: float, queue_depth: int) -> None:
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        super().__init__(
            f"admission queue full ({queue_depth} requests waiting); "
            f"retry after {retry_after:.2f}s")


@dataclass(frozen=True)
class ServeRequest:
    """One prediction request: a (workload, geometry, config) cell.

    Attributes:
        workload: registered workload name (SPEC95 analogs plus the
            analytic ``kmp`` family).
        engine: one of :data:`ENGINE_KINDS`.
        geometry_kind: ``normal`` / ``extend`` / ``align``.
        block_width: fetch-block width the geometry is built for.
        budget: dynamic-instruction budget for the workload trace.
        n_blocks: blocks per cycle (``multi`` engine only).
        config: keyword overrides applied on top of the default
            :class:`EngineConfig` (JSON-safe scalars only).
    """

    workload: str
    engine: str = "dual"
    geometry_kind: str = "align"
    block_width: int = 8
    budget: int = 4000
    n_blocks: int = 2
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise RequestError(f"unknown engine kind: {self.engine!r}")
        if self.geometry_kind not in GEOMETRY_KINDS:
            raise RequestError(
                f"unknown geometry kind: {self.geometry_kind!r}")
        if self.budget < 100:
            raise RequestError("budget must be >= 100 instructions")
        if self.n_blocks < 1:
            raise RequestError("n_blocks must be >= 1")

    # ------------------------------------------------------------------
    # Construction of the simulated objects
    # ------------------------------------------------------------------

    def geometry(self) -> CacheGeometry:
        """The cache geometry this request runs under."""
        if self.geometry_kind == "extend":
            return CacheGeometry.extended(self.block_width)
        if self.geometry_kind == "align":
            return CacheGeometry.self_aligned(self.block_width)
        return CacheGeometry.normal(self.block_width)

    def engine_config(self) -> EngineConfig:
        """Build the :class:`EngineConfig`, validating the overrides."""
        try:
            return replace(EngineConfig(geometry=self.geometry()),
                           **dict(self.config))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid engine config: {exc}") from exc

    def build_engine(self) -> Any:
        """Construct a fresh engine of the requested kind."""
        from ..core.dual import DualBlockEngine
        from ..core.multi import MultiBlockEngine
        from ..core.single import SingleBlockEngine
        from ..core.two_ahead import TwoBlockAheadEngine

        config = self.engine_config()
        try:
            if self.engine == "single":
                return SingleBlockEngine(config)
            if self.engine == "dual":
                return DualBlockEngine(config)
            if self.engine == "multi":
                return MultiBlockEngine(config, self.n_blocks)
            return TwoBlockAheadEngine(config)
        except ValueError as exc:
            raise RequestError(
                f"engine rejected the config: {exc}") from exc

    def validate(self) -> None:
        """Raise :class:`RequestError` unless this request can run."""
        from ..workloads import workload_names

        if self.workload not in workload_names():
            raise RequestError(f"unknown workload: {self.workload!r}")
        self.build_engine()

    def run(self) -> FetchStats:
        """Execute the request (trace + segmentation come from cache)."""
        from ..workloads import load_fetch_input

        fetch_input = load_fetch_input(self.workload, self.geometry(),
                                       self.budget)
        stats: FetchStats = self.build_engine().run(fetch_input)
        return stats

    # ------------------------------------------------------------------
    # JSON round-trip and content identity
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar dictionary (stable key order via dataclass)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeRequest":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {name for name in cls.__dataclass_fields__}
        extra = sorted(set(data) - known)
        if extra:
            raise RequestError(f"unknown request fields: {extra}")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise RequestError(f"malformed request: {exc}") from exc

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self, length: int = 16) -> str:
        """Stable content digest: the service's cache and dedup key."""
        sha = hashlib.sha256(self.canonical_json().encode("ascii"))
        return sha.hexdigest()[:length]

    def label(self) -> str:
        """Short human-readable identity for logs."""
        blocks = f"x{self.n_blocks}" if self.engine == "multi" else ""
        return (f"{self.workload}/{self.engine}{blocks}"
                f"/{self.geometry_kind}-B{self.block_width}"
                f"/{self.digest(8)}")


# ----------------------------------------------------------------------
# Canonical result payloads
# ----------------------------------------------------------------------

def stats_payload(stats: FetchStats) -> Dict[str, Any]:
    """Canonical JSON-safe encoding of a :class:`FetchStats`.

    Event maps are keyed by the :class:`PenaltyKind` value strings and
    emitted in sorted order, so two bit-identical runs always produce
    byte-identical canonical JSON — the property the chaos oracle and
    the result store's checksums both rest on.
    """
    counts = {kind.value: int(n) for kind, n in stats.event_counts.items()}
    cycles = {kind.value: int(n) for kind, n in stats.event_cycles.items()}
    timeline = (None if stats.timeline is None
                else [int(n) for n in stats.timeline])
    return {
        "n_blocks": int(stats.n_blocks),
        "n_instructions": int(stats.n_instructions),
        "n_branches": int(stats.n_branches),
        "n_cond": int(stats.n_cond),
        "base_cycles": int(stats.base_cycles),
        "event_counts": dict(sorted(counts.items())),
        "event_cycles": dict(sorted(cycles.items())),
        "timeline": timeline,
    }


def payload_json(payload: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding of a result payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical payload encoding (full hex digest)."""
    return hashlib.sha256(payload_json(payload).encode("ascii")).hexdigest()


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

@dataclass
class ServeResponse:
    """The service's answer to one request — always typed.

    ``status`` is ``served`` (payload present, bit-exact), ``failed``
    (typed ``error_type`` + message), or ``shed`` (load-shedding or an
    open circuit breaker refused the work; ``retry_after`` hints when
    to come back).  ``rung`` records which step of the degradation
    ladder produced a served answer: ``fast`` (vectorized engine in a
    worker), ``scalar`` (reference engine in-process), or ``cached``
    (content-addressed result store).
    """

    request_digest: str
    workload: str
    status: str
    rung: str = ""
    cache_hit: bool = False
    deduped: bool = False
    attempts: int = 0
    error_type: str = ""
    error: str = ""
    retry_after: float = 0.0
    latency_s: float = 0.0
    payload: Optional[Dict[str, Any]] = None
    payload_digest: str = ""

    @property
    def ok(self) -> bool:
        """True when the request was served with a payload."""
        return self.status == SERVED

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary (for the TCP frontend and drivers)."""
        return asdict(self)


# ----------------------------------------------------------------------
# The worker-side cell body
# ----------------------------------------------------------------------

def execute_request_cell(cell: Tuple[Dict[str, Any], int],
                         ) -> Dict[str, Any]:
    """Run one request inside a sweep worker (picklable, top-level).

    The cell carries the request as a plain dictionary plus the
    service-level attempt number the batch starts at, so ``fail``
    request faults gate on service attempts exactly like cell faults
    gate on executor attempts.  Any exception becomes a typed failure
    payload — never a resilience-level retry, which is reserved for
    the crash/hang/timeout recovery paths.
    """
    data, attempt_base = cell
    request = ServeRequest.from_dict(data)
    try:
        faults.apply_request_faults(request.digest(), request.workload,
                                    attempt_base, hard=False)
        payload = stats_payload(request.run())
    except Exception as exc:
        return {"ok": False, "error_type": type(exc).__name__,
                "error": str(exc)}
    return {"ok": True, "payload": payload}
