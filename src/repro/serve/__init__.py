"""Prediction-as-a-service on top of the resilient sweep runtime.

``repro.serve`` turns the batch reproduction into a long-lived service:
:class:`PredictionService` admits (workload, geometry, predictor
config) request cells, batches them through the fault-tolerant executor
into the vectorized engines, and answers every request with a typed
response — served bit-exact, failed with a named error, or shed with a
retry-after hint.  :mod:`repro.serve.traffic` and
:mod:`repro.serve.chaos` drive it with seeded production-shaped
traffic and deterministic fault campaigns.

Run ``python -m repro.serve --help`` for the drivers.
"""

from .breaker import CircuitBreaker
from .chaos import ChaosPlan, ChaosResult, plan_chaos, run_chaos
from .requests import (
    RequestError,
    ServeRequest,
    ServeResponse,
    ServiceOverload,
    execute_request_cell,
    payload_digest,
    stats_payload,
)
from .service import PredictionService, ServiceMetrics
from .store import ResultStore
from .traffic import (
    TrafficModel,
    TrafficSummary,
    build_universe,
    request_stream,
    run_traffic,
)

__all__ = [
    "ChaosPlan",
    "ChaosResult",
    "CircuitBreaker",
    "PredictionService",
    "RequestError",
    "ResultStore",
    "ServeRequest",
    "ServeResponse",
    "ServiceMetrics",
    "ServiceOverload",
    "TrafficModel",
    "TrafficSummary",
    "build_universe",
    "execute_request_cell",
    "payload_digest",
    "plan_chaos",
    "request_stream",
    "run_chaos",
    "run_traffic",
    "stats_payload",
]
