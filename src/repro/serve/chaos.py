"""Service-level chaos campaigns with a bit-exact oracle.

The campaign is the tentpole invariant made executable: drive a seeded
traffic stream through the service while injecting worker crashes,
hangs past the deadline, cached-result corruption, and queue-overload
bursts — then prove that

* every response the service *did* complete is bit-exact to the
  fault-free batch answer (payload digests against an oracle computed
  before any fault is armed), and
* every non-served outcome is a *typed* failure or shed — never a
  silent wrong answer, never an anonymous error.

The fault plan derives from the same seed as the traffic, so a failing
campaign replays exactly.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import faults, resilience
from .requests import (
    SERVED,
    ServeRequest,
    ServeResponse,
    payload_digest,
    stats_payload,
)
from .service import PredictionService
from .traffic import (
    TrafficModel,
    build_universe,
    request_stream,
    run_traffic,
)

#: Default output location for the machine-readable campaign summary.
DEFAULT_OUTPUT = Path("benchmarks/results/BENCH_serve_chaos.json")

#: Digest-prefix length used in generated fault directives.
_PREFIX = 12


@dataclass(frozen=True)
class ChaosPlan:
    """The seeded fault plan: which requests get which faults."""

    spec: str                       #: composed REPRO_FAULT_SPEC
    crashes: Tuple[str, ...]        #: worker dies mid-request, once
    hangs: Tuple[str, ...]          #: worker wedges past the deadline
    soft_fails: Tuple[str, ...]     #: fast rung fails once → scalar rung
    hard_fails: Tuple[str, ...]     #: every rung fails → typed failure
    corrupt_entries: Tuple[str, ...]  #: cached payload reads corrupt once

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def plan_chaos(universe: Sequence[ServeRequest], indexes: np.ndarray,
               seed: int, n_crash: int = 2, n_hang: int = 1,
               n_soft: int = 2, n_hard: int = 1, n_corrupt: int = 2,
               ) -> ChaosPlan:
    """Assign faults to requests that actually appear in the stream."""
    appearing: List[str] = []
    seen: Dict[int, bool] = {}
    for raw in indexes:
        idx = int(raw)
        if idx not in seen:
            seen[idx] = True
            appearing.append(universe[idx].digest())
    rng = np.random.default_rng([seed, 2])
    order = [appearing[int(i)] for i in rng.permutation(len(appearing))]

    def take(n: int) -> Tuple[str, ...]:
        taken = tuple(d[:_PREFIX] for d in order[:n])
        del order[:n]
        return taken

    crashes = take(n_crash)
    hangs = take(n_hang)
    soft_fails = take(n_soft)
    hard_fails = take(n_hard)
    corrupt_entries = take(n_corrupt)
    parts = (
        [f"crash:request={d}" for d in crashes]
        + [f"hang:request={d}" for d in hangs]
        + [f"fail:request={d}" for d in soft_fails]
        # times=9 outlives every rung: the fast attempt, the executor
        # retries, and the scalar rescue all keep faulting, so the
        # request must surface as a typed failure.
        + [f"fail:request={d},times=9" for d in hard_fails]
        + [f"corrupt:entry={d}" for d in corrupt_entries]
    )
    return ChaosPlan(spec=";".join(parts), crashes=crashes, hangs=hangs,
                     soft_fails=soft_fails, hard_fails=hard_fails,
                     corrupt_entries=corrupt_entries)


@dataclass
class ChaosResult:
    """Everything a campaign measured, judged, and asserted."""

    seed: int
    n_requests: int
    n_universe: int
    plan: Dict[str, Any]
    traffic: Dict[str, Any]
    service: Dict[str, Any]
    n_served_checked: int
    mismatches: List[Dict[str, Any]]
    untyped_failures: List[Dict[str, Any]]
    unaccounted: int        #: positions with neither response nor shed
    passed: bool
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def write(self, path: Path) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path


def _judge(responses: Sequence[Optional[ServeResponse]],
           oracle: Dict[str, str],
           ) -> Tuple[int, List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Check bit-exactness of served answers and typedness of the rest."""
    n_checked = 0
    mismatches: List[Dict[str, Any]] = []
    untyped: List[Dict[str, Any]] = []
    for pos, response in enumerate(responses):
        if response is None:
            continue  # admission shed: typed via ServiceOverload
        if response.status == SERVED:
            n_checked += 1
            expected = oracle.get(response.request_digest)
            actual = response.payload_digest
            consistent = (response.payload is not None
                          and payload_digest(response.payload) == actual)
            if expected != actual or not consistent:
                mismatches.append({
                    "position": pos,
                    "request_digest": response.request_digest,
                    "rung": response.rung,
                    "expected": expected,
                    "actual": actual,
                    "self_consistent": consistent,
                })
        elif not response.error_type:
            untyped.append({
                "position": pos,
                "request_digest": response.request_digest,
                "status": response.status,
            })
    return n_checked, mismatches, untyped


def run_chaos(seed: int = 5, n_requests: int = 10_000,
              universe_size: int = 40, budget: int = 3000,
              model: Optional[TrafficModel] = None,
              queue_limit: int = 12, batch_limit: int = 24,
              jobs: int = 2, deadline: float = 8.0,
              breaker_threshold: int = 3, breaker_cooldown: float = 0.5,
              output: Optional[Path] = DEFAULT_OUTPUT) -> ChaosResult:
    """One full campaign: oracle, faults, traffic, judgement, summary."""
    start = time.monotonic()
    model = model if model is not None else TrafficModel(
        pattern="zipfian", arrival="bursty", burst=96)
    with resilience.scoped_environ({faults.FAULTS_ENV: None}):
        universe = build_universe(seed, universe_size, budget=budget)
        indexes = request_stream(model, len(universe), n_requests, seed)
        # The fault-free oracle, computed before any fault is armed.
        # This also warms the disk cache (traces, segmentations,
        # compiled arrays), so sweep workers start hot.
        oracle = {request.digest():
                  payload_digest(stats_payload(request.run()))
                  for request in universe}
    plan = plan_chaos(universe, indexes, seed)

    async def _campaign() -> Tuple[Any, Any,
                                   List[Optional[ServeResponse]]]:
        async with PredictionService(
                queue_limit=queue_limit, batch_limit=batch_limit,
                jobs=jobs, deadline=deadline,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown) as service:
            summary, responses = await run_traffic(
                service, universe, indexes, model, deadline=deadline)
            return service.summary(), summary, responses

    import asyncio

    with resilience.scoped_environ({faults.FAULTS_ENV: plan.spec}):
        faults.reset()
        service_summary, traffic_summary, responses = \
            asyncio.run(_campaign())

    n_checked, mismatches, untyped = _judge(responses, oracle)
    result = ChaosResult(
        seed=seed, n_requests=n_requests, n_universe=len(universe),
        plan=plan.to_dict(), traffic=traffic_summary.to_dict(),
        service=service_summary, n_served_checked=n_checked,
        mismatches=mismatches, untyped_failures=untyped,
        unaccounted=0,
        passed=(not mismatches and not untyped and n_checked > 0),
        elapsed_s=time.monotonic() - start)
    if output is not None:
        result.write(output)
    return result
