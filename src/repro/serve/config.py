"""Validated environment knobs for the prediction service.

Follows the project's environment-variable discipline: every knob is
declared in :mod:`repro.envvars` (so reprolint REP4xx covers it), read
through :func:`repro.envvars.read` (the sanctioned read for modules
outside the runtime config entry points), and validated eagerly with an
error naming the variable.
"""

from __future__ import annotations

from typing import Optional

from .. import envvars

QUEUE_ENV = "REPRO_SERVE_QUEUE"
BATCH_ENV = "REPRO_SERVE_BATCH"
DEADLINE_ENV = "REPRO_SERVE_DEADLINE"
BREAKER_THRESHOLD_ENV = "REPRO_SERVE_BREAKER_THRESHOLD"
BREAKER_COOLDOWN_ENV = "REPRO_SERVE_BREAKER_COOLDOWN"

DEFAULT_QUEUE_LIMIT = 256
DEFAULT_BATCH_LIMIT = 32
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_COOLDOWN = 5.0

_OFF = {"", "0", "off", "none", "disable", "disabled"}


def _positive_int(name: str, default: int) -> int:
    raw = envvars.read(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def _positive_float(name: str, default: float) -> float:
    raw = envvars.read(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a positive number of seconds, "
            f"got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def queue_limit() -> int:
    """Bounded admission-queue depth (``REPRO_SERVE_QUEUE``)."""
    return _positive_int(QUEUE_ENV, DEFAULT_QUEUE_LIMIT)


def batch_limit() -> int:
    """Max requests dispatched per batch (``REPRO_SERVE_BATCH``)."""
    return _positive_int(BATCH_ENV, DEFAULT_BATCH_LIMIT)


def default_deadline() -> Optional[float]:
    """Default per-request deadline in seconds, or None when off
    (``REPRO_SERVE_DEADLINE``).  Clients may still set a per-request
    deadline explicitly."""
    raw = envvars.read(DEADLINE_ENV)
    if raw is None or raw.strip().lower() in _OFF:
        return None
    return _positive_float(DEADLINE_ENV, 0.0)


def breaker_threshold() -> int:
    """Consecutive fast-path failures that trip a workload family's
    circuit breaker (``REPRO_SERVE_BREAKER_THRESHOLD``)."""
    return _positive_int(BREAKER_THRESHOLD_ENV, DEFAULT_BREAKER_THRESHOLD)


def breaker_cooldown() -> float:
    """Seconds an open breaker waits before half-opening for a probe
    (``REPRO_SERVE_BREAKER_COOLDOWN``)."""
    return _positive_float(BREAKER_COOLDOWN_ENV, DEFAULT_BREAKER_COOLDOWN)


def validate() -> None:
    """Eagerly validate every serve knob (CLI startup)."""
    queue_limit()
    batch_limit()
    default_deadline()
    breaker_threshold()
    breaker_cooldown()
