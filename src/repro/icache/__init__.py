"""Instruction-cache model: geometry (normal/extended/self-aligned), banks."""

from .banks import block_lines, blocks_conflict
from .geometry import EXTENDED, NORMAL, SELF_ALIGNED, CacheGeometry

__all__ = [
    "CacheGeometry",
    "EXTENDED",
    "NORMAL",
    "SELF_ALIGNED",
    "block_lines",
    "blocks_conflict",
]
