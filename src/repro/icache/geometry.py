"""Instruction-cache geometry: line sizes, alignment policy, banking.

The paper assumes a perfect instruction cache: only the *geometry* matters —
how many sequential instructions a single fetch can return from a start
address, and which banks a fetch touches (two blocks fetched in one cycle may
conflict).  Section 4.5 compares three configurations:

* ``normal``: line size equals the block width; a block is truncated at the
  line boundary.
* ``extended``: the line is twice the block width, so fewer blocks are cut
  short by misalignment (only up to ``block_width`` instructions return).
* ``self_aligned``: two consecutive lines are combined, so a block is never
  truncated by alignment; the bank count is doubled to offset the extra
  line accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

NORMAL = "normal"
EXTENDED = "extended"
SELF_ALIGNED = "self_aligned"

_KINDS = (NORMAL, EXTENDED, SELF_ALIGNED)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of the (perfect) instruction cache.

    Attributes:
        kind: one of ``normal``, ``extended``, ``self_aligned``.
        block_width: maximum instructions per fetch block (paper: 8).
        line_size: instructions per physical cache line.
        n_banks: number of cache banks (conflicts cost a cycle in dual
            block mode, Table 3).
    """

    kind: str = NORMAL
    block_width: int = 8
    line_size: int = 8
    n_banks: int = 8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown cache kind: {self.kind!r}")
        if self.block_width < 1:
            raise ValueError("block_width must be positive")
        if self.line_size < 1:
            raise ValueError("line_size must be positive")
        if self.n_banks < 1:
            raise ValueError("n_banks must be positive")
        if self.kind == NORMAL and self.line_size < self.block_width:
            raise ValueError("normal cache needs line_size >= block_width")
        if self.kind == EXTENDED and self.line_size < self.block_width:
            raise ValueError("extended cache needs line_size >= block_width")

    # ------------------------------------------------------------------
    # Constructors matching the paper's three configurations (Table 6)
    # ------------------------------------------------------------------

    @classmethod
    def normal(cls, block_width: int = 8) -> "CacheGeometry":
        """Line size == block width, 8 banks (paper default)."""
        return cls(NORMAL, block_width, block_width, 8)

    @classmethod
    def extended(cls, block_width: int = 8) -> "CacheGeometry":
        """Line size == 2x block width, 8 banks."""
        return cls(EXTENDED, block_width, 2 * block_width, 8)

    @classmethod
    def self_aligned(cls, block_width: int = 8) -> "CacheGeometry":
        """Two consecutive lines combined per block, 16 banks."""
        return cls(SELF_ALIGNED, block_width, block_width, 16)

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------

    def block_limit(self, start: int) -> int:
        """Maximum instructions a block starting at ``start`` can hold."""
        if self.kind == SELF_ALIGNED:
            return self.block_width
        room = self.line_size - (start % self.line_size)
        return room if room < self.block_width else self.block_width

    def line_index(self, addr: int) -> int:
        """Physical line index holding ``addr``."""
        return addr // self.line_size

    def lines_for_block(self, start: int, n_instr: int) -> Tuple[int, ...]:
        """Line indices a block fetch touches.

        Normal/extended blocks live in one line by construction; a
        self-aligned block may span two consecutive lines.
        """
        first = self.line_index(start)
        last = self.line_index(start + max(n_instr, 1) - 1)
        if self.kind == SELF_ALIGNED:
            # The hardware always reads both lines of the aligned pair.
            return (first, first + 1)
        if last != first:
            raise ValueError(
                f"block [{start}, +{n_instr}) crosses a line in a "
                f"{self.kind} cache")
        return (first,)

    def bank_of_line(self, line: int) -> int:
        """Bank servicing ``line``."""
        return line % self.n_banks

    def counter_position(self, addr: int) -> int:
        """Position of ``addr`` within a blocked-PHT entry.

        Positions wrap modulo the block width for extended and self-aligned
        caches (Section 4.5: "the values wrap around the PHT block").
        """
        return addr % self.block_width
