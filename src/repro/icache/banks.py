"""Bank-conflict model for multi-block fetching.

"Since multiple blocks are being fetched using different cache lines, a
multiple banked instruction cache is required.  Since two lines are fetched
simultaneously, they may map into the same cache bank.  Should a conflict
arise, the second line is read the next cycle."  (Section 3.3)

The paper's defaults: 8 banks for normal/extended caches, 16 for the
self-aligned cache (which reads up to four lines per pair).
"""

from __future__ import annotations

from typing import Sequence

from .geometry import CacheGeometry


def blocks_conflict(geometry: CacheGeometry,
                    first_lines: Sequence[int],
                    second_lines: Sequence[int]) -> bool:
    """True when the two blocks' line fetches collide on a bank.

    The second block stalls a cycle (Table 3: i-cache bank conflict,
    0 for block 1 / 1 for block 2) when one of its lines needs a bank one
    of the first block's *distinct* lines occupies, or when the second
    block itself needs two lines on the same bank (self-aligned wrap).

    A line shared by both blocks is read once and feeds both, so identical
    lines never conflict — the common case of two fetch blocks landing in
    the same cache line costs nothing extra.
    """
    first_set = set(first_lines)
    banks_first = {geometry.bank_of_line(line) for line in first_set}
    seen_lines = set()
    banks_second = set()
    for line in second_lines:
        if line in first_set or line in seen_lines:
            continue  # already being read this cycle
        bank = geometry.bank_of_line(line)
        if bank in banks_first or bank in banks_second:
            return True
        seen_lines.add(line)
        banks_second.add(bank)
    return False


def block_lines(geometry: CacheGeometry, start: int, n_instr: int
                ) -> Sequence[int]:
    """Lines a block fetch reads (delegates to the geometry)."""
    return geometry.lines_for_block(start, n_instr)
