"""Hardware cost estimates — Section 5 / Table 7.

Symbols (Table 7): ``B`` block width, ``h`` history register length,
``p`` number of PHTs, ``s`` number of select tables, ``e`` NLS block
entries, ``L`` line-index bits, ``a`` cache associativity, ``r`` BBR
entries, ``t`` BIT block entries.

The paper's worked example (32 KByte direct-mapped i-cache, B=8, h=10,
1 PHT, 1 ST, 256 NLS entries, 1024 BIT entries, 8 BBR entries) evaluates
to PHT 16 Kbit, ST 8 Kbit, NLS 20 Kbit, BIT 16 Kbit, BBR ~0.3 Kbit —
52 Kbit for a single-block mechanism, 80 Kbit dual-block single-select,
72 Kbit dual-block double-select.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.recovery import recovery_entry_bits

KBIT = 1024


@dataclass(frozen=True)
class CostConfig:
    """Parameters of the cost model (defaults = the paper's example)."""

    block_width: int = 8          # B
    history_length: int = 10      # h
    n_phts: int = 1               # p
    n_select_tables: int = 1      # s
    nls_entries: int = 256        # e
    line_index_bits: int = 10     # L (32KB direct-mapped cache, 32B lines)
    associativity: int = 1        # a
    n_bbr_entries: int = 8        # r
    bit_entries: int = 1024       # t


def pht_bits(config: CostConfig) -> int:
    """Blocked PHT: ``2 * B * 2**h * p`` bits."""
    return (2 * config.block_width * (1 << config.history_length)
            * config.n_phts)


def select_table_bits(config: CostConfig, dual: bool = False) -> int:
    """Select table: ~8 bits/entry (selector + GHR payload) per ST.

    A dual (double-selection) ST stores both selections: twice the payload.
    """
    per_entry = 16 if dual else 8
    return per_entry * (1 << config.history_length) * config.n_select_tables


def nls_bits(config: CostConfig, dual: bool = False) -> int:
    """NLS target array: ``e * B * L`` bits; a dual array doubles it."""
    single = (config.nls_entries * config.block_width
              * config.line_index_bits)
    return 2 * single if dual else single


def bit_bits(config: CostConfig) -> int:
    """BIT table: 2 bits per instruction per block entry."""
    return 2 * config.block_width * config.bit_entries


def bbr_bits(config: CostConfig) -> int:
    """Bad-branch-recovery storage: ``r`` entries of Table 4's fields."""
    return config.n_bbr_entries * recovery_entry_bits(
        config.history_length, config.block_width,
        include_pht_block=True, full_address=False)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-table bit costs for one mechanism configuration."""

    name: str
    components: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Sum of all component costs."""
        return sum(self.components.values())

    @property
    def total_kbits(self) -> float:
        """Total in Kbits (Table 7's unit)."""
        return self.total_bits / KBIT

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        for table, bits in self.components.items():
            lines.append(f"  {table:<6s} {bits / KBIT:6.1f} Kbits")
        lines.append(f"  {'total':<6s} {self.total_kbits:6.1f} Kbits")
        return "\n".join(lines)


def single_block_cost(config: CostConfig = CostConfig()) -> CostBreakdown:
    """Section 5's single-block mechanism (PHT + NLS + BIT + BBR)."""
    return CostBreakdown("single block", {
        "PHT": pht_bits(config),
        "NLS": nls_bits(config),
        "BIT": bit_bits(config),
        "BBR": bbr_bits(config),
    })


def dual_block_single_select_cost(
        config: CostConfig = CostConfig()) -> CostBreakdown:
    """Dual block, single selection: adds an ST and a second target array."""
    return CostBreakdown("dual block, single select", {
        "PHT": pht_bits(config),
        "ST": select_table_bits(config),
        "NLS": nls_bits(config, dual=True),
        "BIT": bit_bits(config),
        "BBR": bbr_bits(config),
    })


def dual_block_double_select_cost(
        config: CostConfig = CostConfig()) -> CostBreakdown:
    """Dual block, double selection: dual ST, no BIT storage at all."""
    return CostBreakdown("dual block, double select", {
        "PHT": pht_bits(config),
        "ST": select_table_bits(config, dual=True),
        "NLS": nls_bits(config, dual=True),
        "BBR": bbr_bits(config),
    })


def multi_block_cost(n_blocks: int,
                     config: CostConfig = CostConfig()) -> CostBreakdown:
    """Extrapolation to >2 predicted blocks per cycle (Section 5).

    "Another block prediction basically requires another select table and
    target array, and another read/write port to the PHT and BIT tables."
    Ports are not storage; the storage cost grows by one ST plus one
    target array per extra block.
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be positive")
    components = {
        "PHT": pht_bits(config),
        "BIT": bit_bits(config),
        "BBR": bbr_bits(config),
        "NLS": nls_bits(config) * n_blocks,
    }
    if n_blocks > 1:
        components["ST"] = select_table_bits(config) * (n_blocks - 1)
    return CostBreakdown(f"{n_blocks}-block, single select", components)
