"""Hardware storage cost model (Section 5 / Table 7)."""

from .estimates import (
    CostBreakdown,
    CostConfig,
    bbr_bits,
    bit_bits,
    dual_block_double_select_cost,
    dual_block_single_select_cost,
    multi_block_cost,
    nls_bits,
    pht_bits,
    select_table_bits,
    single_block_cost,
)

__all__ = [
    "CostBreakdown",
    "CostConfig",
    "bbr_bits",
    "bit_bits",
    "dual_block_double_select_cost",
    "dual_block_single_select_cost",
    "multi_block_cost",
    "nls_bits",
    "pht_bits",
    "select_table_bits",
    "single_block_cost",
]
