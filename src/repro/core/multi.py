"""N-block fetch engine — Section 5's ">2 blocks per cycle" extension.

"In addition, it is possible to predict more than two blocks per cycle.
In that case, the cost grows proportionally to the number of blocks
predicted.  Another block prediction basically requires another select
table and target array, and another read/write port to the PHT and BIT
tables."

This engine generalises the paper-exact :class:`~repro.core.dual.
DualBlockEngine` to ``n_blocks_per_cycle`` = N: blocks group as
``(b1..bN), (bN+1..b2N), ...`` after the cold-start block ``b0``.  Each
group's predictions anchor on the last block of the previous group: its
BIT+PHT walk predicts the group's first block, and N-1 select tables —
all indexed by ``GHR XOR anchor address`` — predict the rest.  Penalties
for slots 1 and 2 are Table 3 verbatim; later slots extrapolate the
table's +1-per-slot pattern (see
:func:`repro.core.penalties.penalty_cycles_slot`).

With ``n_blocks_per_cycle=2`` this engine is cycle-for-cycle identical to
:class:`DualBlockEngine` (locked by a test), so the extension is a strict
generalisation, not a reinterpretation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..predictors.blocked import BlockedPHT
from ..predictors.ghr import GlobalHistory
from ..targets.nls import NLSTargetArray
from ..targets.ras import ReturnAddressStack
from .config import EngineConfig, FetchInput, TARGET_NLS
from .engine_mode import use_fast_engine
from .engine_common import (
    ActualBlock,
    BlockCursor,
    EARLY_TAKEN,
    K_CALL,
    K_HALT,
    K_RETURN,
    LATE_TAKEN,
    classify_divergence,
    target_misfetch_kind,
)
from .penalties import DOUBLE_SELECT, PenaltyKind, SINGLE_SELECT, \
    penalty_cycles_slot
from .select_table import SelectEntry, SelectTable
from .selection import BlockPrediction, CodeWindowCache, SRC_NEAR, walk_block
from .stats import FetchStats


class MultiTargetArray:
    """N parallel tag-less target arrays, one per fetch slot.

    Generalises :class:`~repro.targets.nls.DualNLSTargetArray`: all slots
    are indexed by the current anchor block's line; duplication across
    slots grows with N, exactly as the paper warns for the dual case.
    """

    def __init__(self, n_slots: int, n_block_entries: int = 256,
                 line_size: int = 8) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be positive")
        self.n_slots = n_slots
        self._arrays = [NLSTargetArray(n_block_entries, line_size)
                        for _ in range(n_slots)]

    def lookup(self, slot: int, line: int, position: int) -> Optional[int]:
        """Predicted target from the given slot's array (1-based)."""
        return self._arrays[slot - 1].lookup(line, position)

    def update(self, slot: int, line: int, position: int,
               target: int) -> None:
        """Train the given slot's array (1-based)."""
        self._arrays[slot - 1].update(line, position, target)

    @property
    def storage_bits(self) -> int:
        """Total cost across all slots."""
        return sum(a.storage_bits for a in self._arrays)


class MultiBlockEngine:
    """Fetches ``n_blocks_per_cycle`` blocks per cycle."""

    def __init__(self, config: EngineConfig,
                 n_blocks_per_cycle: int = 2) -> None:
        if n_blocks_per_cycle < 1:
            raise ValueError("n_blocks_per_cycle must be positive")
        if config.bit_entries is not None:
            raise ValueError("the multi-block engine assumes BIT "
                             "information is stored in the i-cache")
        if config.target_kind != TARGET_NLS:
            raise ValueError("the multi-block engine models NLS target "
                             "arrays only (one per slot)")
        self.config = config
        self.n = n_blocks_per_cycle
        geometry = config.geometry
        self.pht = BlockedPHT(config.history_length, geometry.block_width,
                              config.n_pht_tables)
        self.targets = MultiTargetArray(self.n, config.target_entries,
                                        geometry.line_size)
        self.ras = ReturnAddressStack(config.ras_size)
        self.double = config.selection == DOUBLE_SELECT
        # One select table per predicted-ahead slot; double selection adds
        # one more for the anchor's own (first) selection.
        n_tables = self.n if self.double else self.n - 1
        self.selects: List[SelectTable] = [
            SelectTable(config.history_length, config.n_select_tables,
                        geometry.line_size)
            for _ in range(n_tables)
        ]

    # ------------------------------------------------------------------

    def run(self, fetch_input: FetchInput) -> FetchStats:
        """Replay the block stream N blocks per cycle."""
        config = self.config
        if use_fast_engine():
            from .fast import run_multi_fast
            return run_multi_fast(self, fetch_input)
        geometry = config.geometry
        if geometry != fetch_input.geometry:
            raise ValueError("fetch input was segmented under a different "
                             "cache geometry")
        codes = CodeWindowCache(fetch_input.static, geometry,
                                config.near_block)
        self._static_targets = fetch_input.static.direct_target
        cursor = BlockCursor(fetch_input.blocks)
        trace = fetch_input.trace
        ghr = GlobalHistory(config.history_length)
        pht = self.pht
        n = self.n
        scheme = DOUBLE_SELECT if self.double else SINGLE_SELECT
        n_blocks = cursor.n_blocks

        stats = FetchStats(
            n_blocks=n_blocks,
            n_instructions=trace.n_instructions,
            n_branches=trace.n_branches,
            n_cond=trace.n_cond,
            base_cycles=1 + (n_blocks - 2 + n) // n if n_blocks > 1 else 1,
        )

        for a in range(0, n_blocks, n):
            anchor = cursor.block(a)
            limit = geometry.block_limit(anchor.start)
            anchor_line = anchor.start // geometry.line_size
            index = pht.index(ghr.value,
                              anchor.start // geometry.block_width)
            window = codes.window(anchor.start, limit)
            walk_anchor = walk_block(window, anchor.start, limit, pht,
                                     index)
            if self.double:
                stored = self.selects[0].read(index, anchor.start)
                self._verify(stored, walk_anchor, stats, scheme, slot=1)
                self.selects[0].write(index, anchor.start, SelectEntry(
                    walk_anchor.selector, walk_anchor.ghr_payload))
            self._analyze(walk_anchor, anchor, stats, scheme, slot=1,
                          anchor_line=anchor_line)
            self._train(walk_anchor, anchor, index, ghr, slot=1,
                        anchor_line=anchor_line)

            group: List[ActualBlock] = []
            for k in range(1, n):
                j = a + k
                if j >= n_blocks:
                    break
                blk = cursor.block(j)
                group.append(blk)
                blk_limit = geometry.block_limit(blk.start)
                blk_index = pht.index(ghr.value,
                                      blk.start // geometry.block_width)
                blk_window = codes.window(blk.start, blk_limit)
                walk_blk = walk_block(blk_window, blk.start, blk_limit,
                                      pht, blk_index)
                table = self.selects[k] if self.double \
                    else self.selects[k - 1]
                stored = table.read(index, anchor.start)
                self._verify(stored, walk_blk, stats, scheme, slot=k + 1)
                table.write(index, anchor.start, SelectEntry(
                    walk_blk.selector, walk_blk.ghr_payload))
                self._analyze(walk_blk, blk, stats, scheme, slot=k + 1,
                              anchor_line=anchor_line)
                self._train(walk_blk, blk, blk_index, ghr, slot=k + 1,
                            anchor_line=anchor_line)

            self._charge_bank_conflicts(a, group, cursor, stats, scheme,
                                        n_blocks)

        return stats

    # ------------------------------------------------------------------

    def _charge_bank_conflicts(self, a: int, group: Sequence[ActualBlock],
                               cursor: BlockCursor, stats: FetchStats,
                               scheme: str, n_blocks: int) -> None:
        """Charge stalls within the group fetched together (a+1..a+n).

        The group fetched in one cycle consists of the blocks *after* the
        anchor; the first member that collides on a bank with an
        already-claimed distinct line stalls a cycle per Table 3's
        pattern.
        """
        geometry = self.config.geometry
        fetched: List[ActualBlock] = list(group)
        if a + self.n < n_blocks:
            fetched.append(cursor.block(a + self.n))
        claimed_lines = set()
        claimed_banks = set()
        for slot, blk in enumerate(fetched, start=1):
            lines = geometry.lines_for_block(blk.start, blk.n_instr)
            conflict = False
            for line in lines:
                if line in claimed_lines:
                    continue
                bank = geometry.bank_of_line(line)
                if bank in claimed_banks:
                    conflict = True
                else:
                    claimed_lines.add(line)
                    claimed_banks.add(bank)
            if conflict and slot >= 2:
                stats.charge(PenaltyKind.BANK_CONFLICT, penalty_cycles_slot(
                    scheme, slot, PenaltyKind.BANK_CONFLICT))

    def _verify(self, stored: SelectEntry, walk: BlockPrediction,
                stats: FetchStats, scheme: str, slot: int) -> None:
        if stored.selector != walk.selector:
            stats.charge(PenaltyKind.MISSELECT, penalty_cycles_slot(
                scheme, slot, PenaltyKind.MISSELECT))
        elif stored.outcomes != walk.ghr_payload:
            stats.charge(PenaltyKind.GHR, penalty_cycles_slot(
                scheme, slot, PenaltyKind.GHR))

    def _analyze(self, pred: BlockPrediction, actual: ActualBlock,
                 stats: FetchStats, scheme: str, slot: int,
                 anchor_line: int) -> None:
        if actual.exit_kind == K_HALT:
            return
        outcome, offset = classify_divergence(pred, actual)
        if outcome == EARLY_TAKEN or outcome == LATE_TAKEN:
            cycles = penalty_cycles_slot(scheme, slot, PenaltyKind.COND)
            if slot >= 2:
                cycles += 1
            elif outcome == EARLY_TAKEN and actual.n_instr - 1 - offset > 0:
                cycles += 1
            if outcome == LATE_TAKEN and \
                    not self.config.track_not_taken_targets:
                cycles += 1
            stats.charge(PenaltyKind.COND, cycles)
            return
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            if self.ras.peek(0) != actual.exit_target:
                stats.charge(PenaltyKind.RETURN, penalty_cycles_slot(
                    scheme, slot, PenaltyKind.RETURN))
            return
        if pred.source == SRC_NEAR:
            return
        direct = int(self._static_targets[exit_pc]) \
            if exit_pc < len(self._static_targets) else -1
        line_size = self.config.geometry.line_size
        predicted = self.targets.lookup(slot, anchor_line,
                                        exit_pc % line_size)
        if predicted != actual.exit_target:
            kind = target_misfetch_kind(exit_kind, direct)
            if kind is not None:
                stats.charge(kind, penalty_cycles_slot(scheme, slot, kind))

    def _train(self, pred: BlockPrediction, actual: ActualBlock,
               pht_base: int, ghr: GlobalHistory, slot: int,
               anchor_line: int) -> None:
        pht = self.pht
        for offset, taken, pc in actual.conds:
            pht.update(pht_base, pht.position(pc), taken)
        if actual.conds:
            ghr.shift_in_block(actual.outcomes)
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            self.ras.pop()
            return
        if exit_kind == K_CALL:
            self.ras.push(exit_pc + 1)
        near_exit = (pred.source == SRC_NEAR
                     and pred.exit_offset == actual.exit_offset)
        if not near_exit:
            line_size = self.config.geometry.line_size
            self.targets.update(slot, anchor_line, exit_pc % line_size,
                                actual.exit_target)
