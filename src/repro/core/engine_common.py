"""Shared machinery of the single- and dual-block fetch engines.

Both engines replay the correct-path block stream, compare what the
prediction hardware would have selected against what actually happened, and
charge Table 3 penalties at the first divergence in each block.  This module
holds the actual-block view and the divergence/target classification all
engines share.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.kinds import InstrKind
from ..trace.blocks import BlockStream, EXIT_FALLTHROUGH
from .penalties import PenaltyKind
from .selection import BlockPrediction

K_COND = int(InstrKind.COND)
K_JUMP = int(InstrKind.JUMP)
K_CALL = int(InstrKind.CALL)
K_RETURN = int(InstrKind.RETURN)
K_INDIRECT = int(InstrKind.INDIRECT)
K_HALT = int(InstrKind.HALT)

#: Divergence classes between a walk and the actual block.
MATCH = 0        #: same exit position (or both fall through)
EARLY_TAKEN = 1  #: a conditional predicted taken actually fell through
LATE_TAKEN = 2   #: a taken conditional was predicted not taken


class ActualBlock:
    """Resolved view of one fetched block (from the trace)."""

    __slots__ = ("start", "n_instr", "exit_kind", "exit_pc", "exit_target",
                 "exit_offset", "conds")

    def __init__(self, start: int, n_instr: int, exit_kind: int,
                 exit_target: int,
                 conds: List[Tuple[int, bool, int]]) -> None:
        self.start = start
        self.n_instr = n_instr
        self.exit_kind = exit_kind
        self.exit_target = exit_target
        self.conds = conds  #: [(offset, taken, pc)] in block order
        if exit_kind in (EXIT_FALLTHROUGH, K_HALT):
            self.exit_offset: Optional[int] = None
            self.exit_pc = -1
        else:
            self.exit_offset = n_instr - 1
            self.exit_pc = start + n_instr - 1

    @property
    def has_taken_exit(self) -> bool:
        """True when the block ended in a taken control transfer."""
        return self.exit_offset is not None

    @property
    def outcomes(self) -> List[bool]:
        """Actual conditional outcomes, in block order."""
        return [taken for (_, taken, _) in self.conds]


class BlockCursor:
    """Sequential reader producing :class:`ActualBlock` views.

    Materialises the numpy block/record arrays as Python lists once — the
    engines' hot loops then run on plain ints.
    """

    def __init__(self, blocks: BlockStream) -> None:
        trace = blocks.trace
        self._t_pc = trace.pc.tolist()
        self._t_kind = trace.kind.tolist()
        self._t_taken = trace.taken.tolist()
        self._t_target = trace.target.tolist()
        self._start = blocks.start.tolist()
        self._n_instr = blocks.n_instr.tolist()
        self._exit_kind = blocks.exit_kind.tolist()
        self._exit_target = blocks.exit_target.tolist()
        self._first_rec = blocks.first_rec.tolist()
        self._n_recs = blocks.n_recs.tolist()
        self.n_blocks = len(self._start)

    def block(self, i: int) -> ActualBlock:
        """The ``i``-th fetched block."""
        start = self._start[i]
        first = self._first_rec[i]
        conds = []
        for r in range(first, first + self._n_recs[i]):
            if self._t_kind[r] == K_COND:
                conds.append((self._t_pc[r] - start, self._t_taken[r],
                              self._t_pc[r]))
        return ActualBlock(start, self._n_instr[i], self._exit_kind[i],
                           self._exit_target[i], conds)


def classify_divergence(pred: BlockPrediction,
                        actual: ActualBlock) -> Tuple[int, Optional[int]]:
    """First divergence between a (true-BIT) walk and the actual block.

    Returns ``(MATCH|EARLY_TAKEN|LATE_TAKEN, offset)``.  With correct type
    information the only possible disagreements are conditional-branch
    directions, so a divergence is always at a conditional branch.
    """
    p = pred.exit_offset
    a = actual.exit_offset
    if p == a:
        return MATCH, p
    if p is not None and (a is None or p < a):
        return EARLY_TAKEN, p
    return LATE_TAKEN, a


def target_misfetch_kind(exit_kind: int,
                         direct_target: int) -> Optional[PenaltyKind]:
    """Penalty category when a correctly-predicted exit's target is wrong.

    Conditional branches and direct jumps/calls misfetch *immediately*
    (the real target comes out of decode one cycle later); register-target
    transfers misfetch *indirectly* (resolved much later).  Returns are
    handled separately through the RAS.
    """
    if exit_kind == K_COND:
        return PenaltyKind.MISFETCH_IMMEDIATE
    if exit_kind in (K_JUMP, K_CALL):
        if direct_target >= 0:
            return PenaltyKind.MISFETCH_IMMEDIATE
        return PenaltyKind.MISFETCH_INDIRECT
    if exit_kind == K_INDIRECT:
        return PenaltyKind.MISFETCH_INDIRECT
    return None
