"""Fetch-simulation metrics: BEP, IPC_f, IPB and the penalty breakdown.

The paper's two evaluation metrics (Section 4, after Yeh & Patt [13]):

* **Branch execution penalty**: ``BEP = penalty cycles / branches executed``
  (all executed control-transfer instructions).
* **Effective fetch rate**: ``IPC_f = instructions fetched / fetch cycles``,
  where fetch cycles are the base cycles (one per block, or one per block
  pair in dual mode) plus every penalty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .penalties import PenaltyKind


@dataclass
class FetchStats:
    """Aggregated results of one fetch-engine run."""

    n_blocks: int = 0
    n_instructions: int = 0
    n_branches: int = 0      #: executed control transfers (BEP denominator)
    n_cond: int = 0          #: executed conditional branches
    base_cycles: int = 0
    event_counts: Dict[PenaltyKind, int] = field(default_factory=dict)
    event_cycles: Dict[PenaltyKind, int] = field(default_factory=dict)
    #: Per-cycle instructions delivered (stall cycles deliver 0); only
    #: populated when an engine runs with ``record_timeline=True``.
    #: Feed it to :func:`repro.metrics.issue.simulate_issue`.
    timeline: Optional[List[int]] = None

    def charge(self, kind: PenaltyKind, cycles: int) -> None:
        """Record one penalty event costing ``cycles``."""
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        self.event_cycles[kind] = self.event_cycles.get(kind, 0) + cycles

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def penalty_cycles(self) -> int:
        """Total penalty cycles across all categories."""
        return sum(self.event_cycles.values())

    @property
    def fetch_cycles(self) -> int:
        """Base plus penalty cycles."""
        return self.base_cycles + self.penalty_cycles

    @property
    def ipc_f(self) -> float:
        """Effective instruction fetch rate."""
        return self.n_instructions / self.fetch_cycles \
            if self.fetch_cycles else 0.0

    @property
    def bep(self) -> float:
        """Branch execution penalty (cycles per executed branch)."""
        return self.penalty_cycles / self.n_branches if self.n_branches \
            else 0.0

    @property
    def ipb(self) -> float:
        """Instructions per fetched block."""
        return self.n_instructions / self.n_blocks if self.n_blocks else 0.0

    def bep_component(self, kind: PenaltyKind) -> float:
        """BEP contribution of one penalty category (Figure 9's stacks)."""
        if not self.n_branches:
            return 0.0
        return self.event_cycles.get(kind, 0) / self.n_branches

    def bep_share(self, kind: PenaltyKind) -> float:
        """Fraction of total BEP due to ``kind`` (Table 5's %BEP columns)."""
        total = self.penalty_cycles
        if not total:
            return 0.0
        return self.event_cycles.get(kind, 0) / total

    @property
    def cond_misprediction_rate(self) -> float:
        """Penalised conditional mispredictions per executed conditional.

        Note: this counts fetch-redirecting mispredictions (at most one per
        block); per-branch accuracy studies use
        :mod:`repro.predictors.evaluate`.
        """
        if not self.n_cond:
            return 0.0
        return self.event_counts.get(PenaltyKind.COND, 0) / self.n_cond

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"blocks {self.n_blocks}, instructions {self.n_instructions}, "
            f"branches {self.n_branches} (cond {self.n_cond})",
            f"cycles: base {self.base_cycles} + penalty "
            f"{self.penalty_cycles} = {self.fetch_cycles}",
            f"IPB {self.ipb:.2f}   IPC_f {self.ipc_f:.2f}   "
            f"BEP {self.bep:.3f}",
        ]
        for kind in PenaltyKind:
            count = self.event_counts.get(kind, 0)
            if count:
                lines.append(
                    f"  {kind.value:<18s} {count:8d} events "
                    f"{self.event_cycles.get(kind, 0):8d} cycles "
                    f"({100.0 * self.bep_share(kind):5.1f}% of BEP)")
        return "\n".join(lines)
