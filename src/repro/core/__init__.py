"""Core contribution: multiple branch and block prediction fetch engines."""

from .config import EngineConfig, FetchInput, TARGET_BTB, TARGET_NLS
from .dual import DualBlockEngine
from .engine_common import (
    ActualBlock,
    BlockCursor,
    EARLY_TAKEN,
    LATE_TAKEN,
    MATCH,
    classify_divergence,
    target_misfetch_kind,
)
from .multi import MultiBlockEngine, MultiTargetArray
from .penalties import (
    DOUBLE_SELECT,
    PenaltyKind,
    SINGLE_SELECT,
    penalty_cycles,
    penalty_cycles_slot,
    table3,
)
from .recovery import RecoveryEntry, recovery_entry_bits
from .select_table import (
    DualSelectEntry,
    DualSelectTable,
    SelectEntry,
    SelectTable,
)
from .selection import (
    BlockPrediction,
    CodeWindowCache,
    FALLTHROUGH_SELECTOR,
    SRC_ARRAY,
    SRC_FALLTHROUGH,
    SRC_NEAR,
    SRC_RAS,
    Selector,
    walk_block,
)
from .single import SingleBlockEngine
from .stats import FetchStats
from .two_ahead import TwoBlockAheadEngine

__all__ = [
    "ActualBlock",
    "BlockCursor",
    "BlockPrediction",
    "CodeWindowCache",
    "DOUBLE_SELECT",
    "DualBlockEngine",
    "DualSelectEntry",
    "DualSelectTable",
    "EARLY_TAKEN",
    "EngineConfig",
    "FALLTHROUGH_SELECTOR",
    "FetchInput",
    "FetchStats",
    "LATE_TAKEN",
    "MATCH",
    "MultiBlockEngine",
    "MultiTargetArray",
    "PenaltyKind",
    "RecoveryEntry",
    "SINGLE_SELECT",
    "SRC_ARRAY",
    "SRC_FALLTHROUGH",
    "SRC_NEAR",
    "SRC_RAS",
    "SelectEntry",
    "SelectTable",
    "Selector",
    "SingleBlockEngine",
    "TARGET_BTB",
    "TARGET_NLS",
    "TwoBlockAheadEngine",
    "classify_divergence",
    "penalty_cycles",
    "penalty_cycles_slot",
    "recovery_entry_bits",
    "table3",
    "target_misfetch_kind",
    "walk_block",
]
