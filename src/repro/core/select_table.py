"""Select tables for multiple-block prediction (Section 3).

The select table (ST) stores the multiplexer selection of a previous
prediction so the second block of a pair can be predicted before the first
block's BIT/PHT information exists — "the solution to this problem is
essentially to predict our prediction".

An entry holds the selector plus the GHR-update payload (the number of
not-taken branches and a taken/fall-through bit) the pipeline needs to keep
history rolling; both are verified one stage later against the real BIT/PHT
walk, charging misselect or GHR penalties on disagreement.

Multiple STs (Section 4.3) are selected by the low bits of the *starting
position* of the indexing block, disambiguating entries for blocks that
enter the same line at different offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..predictors.ghr import BlockOutcomes
from .selection import FALLTHROUGH_SELECTOR, Selector


@dataclass
class SelectEntry:
    """One stored second-block prediction."""

    selector: Selector
    outcomes: BlockOutcomes

    @classmethod
    def default(cls) -> "SelectEntry":
        """Cold-entry behaviour: predict fall-through, no branches."""
        return cls(FALLTHROUGH_SELECTOR, BlockOutcomes(0, False))


class SelectTable:
    """Single-selection ST bank set.

    Args:
        history_length: entries per table = ``2**history_length``
            (paper default 10 -> 1024).
        n_tables: number of STs (1, 2, 4 or 8 in Figure 8).
        line_size: used to derive the starting position that picks a table.
    """

    def __init__(self, history_length: int = 10, n_tables: int = 1,
                 line_size: int = 8) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if n_tables < 1:
            raise ValueError("n_tables must be positive")
        self.history_length = history_length
        self.n_tables = n_tables
        self.line_size = line_size
        self.n_entries = 1 << history_length
        self.mask = self.n_entries - 1
        self._entries: List[Optional[SelectEntry]] = (
            [None] * (n_tables * self.n_entries))

    def _slot(self, index: int, start_address: int) -> int:
        table = (start_address % self.line_size) % self.n_tables
        return table * self.n_entries + (index & self.mask)

    def read(self, index: int, start_address: int) -> SelectEntry:
        """Stored prediction (cold entries read as fall-through)."""
        entry = self._entries[self._slot(index, start_address)]
        return entry if entry is not None else SelectEntry.default()

    def write(self, index: int, start_address: int,
              entry: SelectEntry) -> None:
        """Replace the stored prediction (on verification mismatch or
        simply to keep the table fresh)."""
        self._entries[self._slot(index, start_address)] = entry

    @property
    def storage_bits(self) -> int:
        """Cost per Table 7: ~8 bits per entry (selector + GHR payload)."""
        return 8 * self.n_entries * self.n_tables


@dataclass
class DualSelectEntry:
    """Double-selection entry: selections for both blocks of the next pair."""

    first: SelectEntry
    second: SelectEntry

    @classmethod
    def default(cls) -> "DualSelectEntry":
        """Cold-entry behaviour: fall-through for both blocks."""
        return cls(SelectEntry.default(), SelectEntry.default())


class DualSelectTable:
    """Double-selection ST: one entry predicts both multiplexers.

    Removes BIT storage entirely (types are decoded after fetch) at the
    cost of deeper verification penalties (Table 3's double-select column).
    """

    def __init__(self, history_length: int = 10, n_tables: int = 1,
                 line_size: int = 8) -> None:
        self._inner = SelectTable(history_length, n_tables, line_size)
        self.history_length = history_length
        self.n_tables = n_tables
        self.n_entries = self._inner.n_entries
        self._entries: List[Optional[DualSelectEntry]] = (
            [None] * (n_tables * self.n_entries))

    def read(self, index: int, start_address: int) -> DualSelectEntry:
        """Stored pair prediction (cold entries read as fall-through)."""
        entry = self._entries[self._inner._slot(index, start_address)]
        return entry if entry is not None else DualSelectEntry.default()

    def write(self, index: int, start_address: int,
              entry: DualSelectEntry) -> None:
        """Replace the stored pair prediction."""
        self._entries[self._inner._slot(index, start_address)] = entry

    @property
    def storage_bits(self) -> int:
        """Twice the single-ST payload (selector + GHR bits per block)."""
        return 16 * self.n_entries * self.n_tables
