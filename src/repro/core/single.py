"""Single-block fetch engine — Section 2's mechanism (Figure 1).

One block is fetched per cycle.  Every cycle the engine walks the block's
BIT and blocked-PHT information to find the first predicted-taken exit,
selects the next fetch line from the Table 1 source, and charges Table 3
block-1 penalties when the prediction diverges from the trace.

With ``EngineConfig.bit_entries`` set, BIT information comes from a
separate tag-less table whose stale entries cost a cycle (Figure 7);
otherwise BIT is pre-decoded in the (perfect) instruction cache and always
correct.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors.blocked import BlockedPHT
from ..predictors.counters import counter_has_second_chance
from ..predictors.ghr import GlobalHistory
from ..targets.bit import BITTable, BitCode
from ..targets.btb import BlockBTB
from ..targets.nls import NLSTargetArray
from ..targets.ras import ReturnAddressStack
from .config import EngineConfig, FetchInput, TARGET_BTB
from .engine_mode import use_fast_engine
from .engine_common import (
    ActualBlock,
    BlockCursor,
    EARLY_TAKEN,
    K_CALL,
    K_COND,
    K_HALT,
    K_RETURN,
    LATE_TAKEN,
    MATCH,
    classify_divergence,
    target_misfetch_kind,
)
from .penalties import PenaltyKind, SINGLE_SELECT, penalty_cycles
from .recovery import RecoveryEntry
from .selection import (
    BlockPrediction,
    CodeWindowCache,
    SRC_ARRAY,
    SRC_FALLTHROUGH,
    SRC_NEAR,
    SRC_RAS,
    walk_block,
)
from .stats import FetchStats


class SingleBlockEngine:
    """Fetches one block per cycle using BIT + blocked-PHT prediction."""

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        geometry = config.geometry
        self.pht = BlockedPHT(config.history_length, geometry.block_width,
                              config.n_pht_tables)
        if config.target_kind == TARGET_BTB:
            self.targets = BlockBTB(config.target_entries, geometry.line_size,
                                    config.btb_associativity)
        else:
            self.targets = NLSTargetArray(config.target_entries,
                                          geometry.line_size)
        self.ras = ReturnAddressStack(config.ras_size)
        self.bit_table: Optional[BITTable] = None
        if config.bit_entries is not None:
            self.bit_table = BITTable(config.bit_entries, geometry.line_size)
        self.recovery_log: List[RecoveryEntry] = []

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, fetch_input: FetchInput) -> FetchStats:
        """Replay the block stream, returning aggregated fetch metrics."""
        config = self.config
        # Recovery tracking needs the per-branch scalar walk context, so
        # it always takes the reference loop.
        if not config.track_recovery and use_fast_engine():
            from .fast import run_single_fast
            return run_single_fast(self, fetch_input)
        geometry = config.geometry
        if geometry != fetch_input.geometry:
            raise ValueError("fetch input was segmented under a different "
                             "cache geometry")
        codes = CodeWindowCache(fetch_input.static, geometry,
                                config.near_block)
        self._static_targets = fetch_input.static.direct_target
        cursor = BlockCursor(fetch_input.blocks)
        trace = fetch_input.trace
        ghr = GlobalHistory(config.history_length)
        pht = self.pht
        line_size = geometry.line_size

        stats = FetchStats(
            n_blocks=cursor.n_blocks,
            n_instructions=trace.n_instructions,
            n_branches=trace.n_branches,
            n_cond=trace.n_cond,
            base_cycles=cursor.n_blocks,
        )

        for i in range(cursor.n_blocks):
            actual = cursor.block(i)
            start = actual.start
            limit = geometry.block_limit(start)
            # Block-width-granular history index (see DualBlockEngine).
            pht_base = pht.index(ghr.value, start // geometry.block_width)
            window = codes.window(start, limit)
            pred = walk_block(window, start, limit, pht, pht_base)

            # Separate BIT table: a stale walk that differs costs a cycle.
            if self.bit_table is not None:
                stale = self._stale_window(start, limit)
                stale_pred = walk_block(stale, start, limit, pht, pht_base)
                if stale_pred != pred:
                    stats.charge(PenaltyKind.BIT, penalty_cycles(
                        SINGLE_SELECT, 1, PenaltyKind.BIT))
                self._fill_bit(codes, start, limit)

            if config.track_recovery:
                self._record_recovery(pred, actual, window, start, limit,
                                      pht_base, ghr)

            self._analyze(pred, actual, stats, block_slot=1)
            self._train(pred, actual, pht_base, ghr)

        return stats

    # ------------------------------------------------------------------
    # Prediction analysis (Table 3, block-1 column)
    # ------------------------------------------------------------------

    def _analyze(self, pred: BlockPrediction, actual: ActualBlock,
                 stats: FetchStats, block_slot: int) -> None:
        if actual.exit_kind == K_HALT:
            return
        outcome, offset = classify_divergence(pred, actual)
        scheme = SINGLE_SELECT
        if outcome == EARLY_TAKEN:
            cycles = penalty_cycles(scheme, block_slot, PenaltyKind.COND)
            # Footnote: mispredicted-taken with instructions remaining in
            # the block costs an extra re-fetch cycle.
            if actual.n_instr - 1 - offset > 0:
                cycles += 1
            stats.charge(PenaltyKind.COND, cycles)
            return
        if outcome == LATE_TAKEN:
            cycles = penalty_cycles(scheme, block_slot, PenaltyKind.COND)
            if not self.config.track_not_taken_targets:
                cycles += 1  # re-read the target array after resolution
            stats.charge(PenaltyKind.COND, cycles)
            return
        # MATCH: direction agrees; verify the target.
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            if self.ras.peek(0) != actual.exit_target:
                stats.charge(PenaltyKind.RETURN, penalty_cycles(
                    scheme, block_slot, PenaltyKind.RETURN))
            return
        if pred.source == SRC_NEAR:
            return  # near-block adder targets are exact
        direct = int(self._static_targets[exit_pc]) \
            if exit_pc < len(self._static_targets) else -1
        predicted = self.targets.lookup(
            exit_pc // self.config.geometry.line_size,
            exit_pc % self.config.geometry.line_size)
        if predicted != actual.exit_target:
            kind = target_misfetch_kind(exit_kind, direct)
            if kind is not None:
                stats.charge(kind, penalty_cycles(scheme, block_slot, kind))

    # ------------------------------------------------------------------
    # Table training
    # ------------------------------------------------------------------

    def _train(self, pred: BlockPrediction, actual: ActualBlock,
               pht_base: int, ghr: GlobalHistory) -> None:
        pht = self.pht
        for offset, taken, pc in actual.conds:
            pht.update(pht_base, pht.position(pc), taken)
        if actual.conds:
            ghr.shift_in_block(actual.outcomes)
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            self.ras.pop()
            return
        if exit_kind == K_CALL:
            self.ras.push(exit_pc + 1)
        near_exit = (pred.source == SRC_NEAR
                     and pred.exit_offset == actual.exit_offset)
        if not near_exit:
            line_size = self.config.geometry.line_size
            self.targets.update(exit_pc // line_size, exit_pc % line_size,
                                actual.exit_target)

    # ------------------------------------------------------------------
    # BIT-table plumbing
    # ------------------------------------------------------------------

    def _stale_window(self, start: int, limit: int):
        """Assemble the window as the separate BIT table would supply it."""
        line_size = self.config.geometry.line_size
        table = self.bit_table
        result = []
        addr = start
        remaining = limit
        while remaining > 0:
            line = addr // line_size
            offset = addr % line_size
            span = min(remaining, line_size - offset)
            stored, _exact = table.access(line)
            if stored is None:
                result.extend([BitCode.NONBRANCH] * span)
            else:
                result.extend(stored[offset:offset + span])
            addr += span
            remaining -= span
        return tuple(result)

    def _fill_bit(self, codes: CodeWindowCache, start: int,
                  limit: int) -> None:
        line_size = self.config.geometry.line_size
        first = start // line_size
        last = (start + limit - 1) // line_size
        for line in range(first, last + 1):
            self.bit_table.fill(line, codes.line_codes(line))

    # ------------------------------------------------------------------
    # Recovery entries (Table 4)
    # ------------------------------------------------------------------

    def _record_recovery(self, pred: BlockPrediction, actual: ActualBlock,
                         window, start: int, limit: int, pht_base: int,
                         ghr: GlobalHistory) -> None:
        """Record a BBR entry for each conditional the walk predicted."""
        pht = self.pht
        line_size = self.config.geometry.line_size
        walked = (pred.exit_offset + 1 if pred.exit_offset is not None
                  else limit)
        n_outcome = 0
        for offset in range(walked):
            code = window[offset]
            if code == BitCode.NONBRANCH or code == BitCode.RETURN \
                    or code == BitCode.OTHER:
                continue
            pc = start + offset
            predicted_taken = pred.outcomes[n_outcome]
            n_outcome += 1
            counter = pht.counter(pht_base, pht.position(pc))
            # Alternate path: where fetch restarts if this branch flips.
            if predicted_taken:
                continuation = walk_block(window[offset + 1:], pc + 1,
                                          limit - offset - 1, pht, pht_base)
                if continuation.source == SRC_RAS:
                    alt = self.ras.peek(0) or 0
                elif continuation.source == SRC_ARRAY:
                    alt_pc = pc + 1 + (continuation.exit_offset or 0)
                    alt = self.targets.lookup(alt_pc // line_size,
                                              alt_pc % line_size) or 0
                else:
                    alt = start + limit
                replacement = continuation.selector
            else:
                alt = int(self._static_targets[pc]) \
                    if pc < len(self._static_targets) else 0
                replacement = (SRC_ARRAY, offset, None)
            corrected = GlobalHistory(ghr.length, ghr.value)
            corrected.shift_in_block(pred.outcomes[:n_outcome - 1]
                                     + (not predicted_taken,))
            self.recovery_log.append(RecoveryEntry(
                block_slot=1,
                predicted_taken=predicted_taken,
                second_chance=counter_has_second_chance(counter,
                                                        predicted_taken),
                pht_index=pht_base,
                pht_block=tuple(pht.entry(pht_base)),
                corrected_ghr=corrected.value,
                replacement_selector=replacement,
                alternate_target=alt if alt is not None else 0,
            ))
