"""Block-exit selection: the BIT + PHT walk and its selector encoding.

"Given the starting position in the line fetched, BIT and PHT block
information, the instruction fetch control logic uses the instruction type
information to find the first unconditional branch or conditional branch
predicted to be taken based on its pattern history." (Section 2)

The end product of a walk is a multiplexer selection — which input supplies
the next fetch line (Table 1's prediction sources).  That selection, as a
compact :class:`Selector`, is exactly what the select table stores for
second-block prediction (Section 3: "predict our prediction").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..icache.geometry import CacheGeometry
from ..isa.program import StaticCode
from ..predictors.blocked import BlockedPHT
from ..predictors.ghr import BlockOutcomes, pack_block_outcomes
from ..targets.bit import BitCode, COND_CODES, encode_window

#: Prediction sources (Table 1's right-hand column, collapsed).
SRC_FALLTHROUGH = 0   #: sequential next address
SRC_RAS = 1           #: top of return address stack
SRC_ARRAY = 2         #: NLS/BTB target array entry
SRC_NEAR = 3          #: near-block adder (3-bit BIT codes)

#: A selector is (source, exit offset in block, near-block code) — the
#: multiplexer control the select table stores and verifies.
Selector = Tuple[int, Optional[int], Optional[int]]

FALLTHROUGH_SELECTOR: Selector = (SRC_FALLTHROUGH, None, None)


@dataclass(frozen=True)
class BlockPrediction:
    """Outcome of one BIT + PHT walk.

    Attributes:
        exit_offset: predicted exit position relative to the block start,
            or None for fall-through at the geometry limit.
        source: ``SRC_*`` constant naming the next-line prediction source.
        near_code: the near-block :class:`BitCode` when ``source`` is
            ``SRC_NEAR``.
        outcomes: predicted directions of the conditional branches walked,
            in block order (ending with True when the exit is a taken
            conditional).
    """

    exit_offset: Optional[int]
    source: int
    near_code: Optional[BitCode]
    outcomes: Tuple[bool, ...]

    @property
    def selector(self) -> Selector:
        """The stored/verified multiplexer selection."""
        return (self.source, self.exit_offset,
                int(self.near_code) if self.near_code is not None else None)

    @property
    def ghr_payload(self) -> BlockOutcomes:
        """Select-table GHR-update bits implied by this walk."""
        return pack_block_outcomes(self.outcomes)


def walk_block(codes: Sequence[BitCode], start: int, limit: int,
               pht: BlockedPHT, pht_base: int) -> BlockPrediction:
    """Walk ``limit`` BIT codes from ``start``, returning the prediction."""
    outcomes = []
    for offset in range(limit):
        code = codes[offset]
        if code == BitCode.NONBRANCH:
            continue
        if code == BitCode.RETURN:
            return BlockPrediction(offset, SRC_RAS, None, tuple(outcomes))
        if code == BitCode.OTHER:
            return BlockPrediction(offset, SRC_ARRAY, None, tuple(outcomes))
        # Conditional branch: consult the blocked pattern history.
        position = pht.position(start + offset)
        if pht.predicts_taken(pht_base, position):
            outcomes.append(True)
            if code in COND_CODES and code != BitCode.COND_LONG:
                return BlockPrediction(offset, SRC_NEAR, code,
                                       tuple(outcomes))
            return BlockPrediction(offset, SRC_ARRAY, None, tuple(outcomes))
        outcomes.append(False)
    return BlockPrediction(None, SRC_FALLTHROUGH, None, tuple(outcomes))


class CodeWindowCache:
    """Per-line BIT-code cache over a program's static code map.

    Lines repeat heavily in any trace; encoding each once keeps the
    simulation hot loop cheap.  Also assembles multi-line windows for
    self-aligned blocks.
    """

    def __init__(self, static: StaticCode, geometry: CacheGeometry,
                 near_block: bool) -> None:
        self._static = static
        self._geometry = geometry
        self._near_block = near_block
        self._lines: Dict[int, Tuple[BitCode, ...]] = {}

    def line_codes(self, line: int) -> Tuple[BitCode, ...]:
        """True BIT codes of one full cache line."""
        cached = self._lines.get(line)
        if cached is None:
            size = self._geometry.line_size
            cached = encode_window(self._static, line * size, size, size,
                                   self._near_block)
            self._lines[line] = cached
        return cached

    def window(self, start: int, length: int) -> Tuple[BitCode, ...]:
        """True BIT codes for ``length`` instructions from ``start``."""
        size = self._geometry.line_size
        first_line = start // size
        offset = start % size
        codes = self.line_codes(first_line)[offset:offset + length]
        if len(codes) < length:  # spans into the next line (self-aligned)
            rest = length - len(codes)
            codes = codes + self.line_codes(first_line + 1)[:rest]
        return codes
