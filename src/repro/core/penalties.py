"""Misprediction penalty model — Table 3 of the paper.

Penalties are cycle counts charged per misprediction event, differentiated
by the block slot the error affects (block 1 = the pair's first block,
block 2 = the second) and the selection scheme (single or double).

The table's footnote is modelled by the engines, not here: a conditional
branch mispredicted *taken* in block 1 costs one extra cycle when valid
instructions after it must be re-fetched, and a conditional misprediction
on block 2 always costs the extra cycle.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

#: Selection schemes.
SINGLE_SELECT = "single"
DOUBLE_SELECT = "double"


class PenaltyKind(enum.Enum):
    """Misprediction categories of Table 3 (and Figure 9's breakdown)."""

    COND = "mispredict"             #: conditional branch direction
    RETURN = "return"               #: RAS target wrong
    MISFETCH_INDIRECT = "misfetch indirect"
    MISFETCH_IMMEDIATE = "misfetch immediate"
    MISSELECT = "misselect"         #: select-table selector wrong
    GHR = "ghr"                     #: select-table GHR-update bits wrong
    BIT = "bit"                     #: stale separate-BIT-table information
    BANK_CONFLICT = "bank conflict"


#: (scheme, block_slot) -> {kind: cycles}; None means "cannot occur".
_TABLE3: Dict[Tuple[str, int], Dict[PenaltyKind, Optional[int]]] = {
    (SINGLE_SELECT, 1): {
        PenaltyKind.COND: 5,
        PenaltyKind.RETURN: 4,
        PenaltyKind.MISFETCH_INDIRECT: 4,
        PenaltyKind.MISFETCH_IMMEDIATE: 1,
        PenaltyKind.MISSELECT: None,
        PenaltyKind.GHR: None,
        PenaltyKind.BIT: 1,
        PenaltyKind.BANK_CONFLICT: 0,
    },
    (SINGLE_SELECT, 2): {
        PenaltyKind.COND: 5,
        PenaltyKind.RETURN: 5,
        PenaltyKind.MISFETCH_INDIRECT: 5,
        PenaltyKind.MISFETCH_IMMEDIATE: 2,
        PenaltyKind.MISSELECT: 1,
        PenaltyKind.GHR: 1,
        PenaltyKind.BIT: 1,
        PenaltyKind.BANK_CONFLICT: 1,
    },
    (DOUBLE_SELECT, 1): {
        PenaltyKind.COND: 5,
        PenaltyKind.RETURN: 4,
        PenaltyKind.MISFETCH_INDIRECT: 4,
        PenaltyKind.MISFETCH_IMMEDIATE: 1,
        PenaltyKind.MISSELECT: 1,
        PenaltyKind.GHR: 1,
        PenaltyKind.BIT: None,
        PenaltyKind.BANK_CONFLICT: 0,
    },
    (DOUBLE_SELECT, 2): {
        PenaltyKind.COND: 5,
        PenaltyKind.RETURN: 5,
        PenaltyKind.MISFETCH_INDIRECT: 5,
        PenaltyKind.MISFETCH_IMMEDIATE: 2,
        PenaltyKind.MISSELECT: 2,
        PenaltyKind.GHR: 2,
        PenaltyKind.BIT: None,
        PenaltyKind.BANK_CONFLICT: 1,
    },
}


def penalty_cycles(scheme: str, block_slot: int, kind: PenaltyKind) -> int:
    """Cycles charged for ``kind`` affecting ``block_slot`` under ``scheme``.

    Raises :class:`ValueError` for combinations Table 3 marks N/A.
    """
    try:
        cycles = _TABLE3[(scheme, block_slot)][kind]
    except KeyError:
        raise ValueError(
            f"unknown penalty lookup: {scheme!r}, block {block_slot}") \
            from None
    if cycles is None:
        raise ValueError(
            f"{kind} cannot occur for block {block_slot} under "
            f"{scheme} selection")
    return cycles


def table3() -> Dict[Tuple[str, int], Dict[PenaltyKind, Optional[int]]]:
    """A copy of the full penalty table (for docs/tests)."""
    return {key: dict(val) for key, val in _TABLE3.items()}


def penalty_cycles_slot(scheme: str, slot: int, kind: PenaltyKind) -> int:
    """Penalty for a block in fetch slot ``slot`` of an N-wide group.

    Slots 1 and 2 are Table 3 verbatim.  Beyond that (the Section 5
    extension to >2 predicted blocks per cycle) penalties extrapolate the
    table's +1-per-slot pattern: each later slot's verification and
    re-fetch happen one pipeline stage later, so every penalty that grew
    by one cycle from block 1 to block 2 keeps growing by one per slot.
    """
    if slot < 1:
        raise ValueError("slot must be >= 1")
    if slot <= 2:
        return penalty_cycles(scheme, slot, kind)
    base1 = _TABLE3[(scheme, 1)][kind]
    base2 = _TABLE3[(scheme, 2)][kind]
    if base2 is None:
        raise ValueError(
            f"{kind} cannot occur for block {slot} under {scheme} "
            f"selection")
    growth = base2 - (base1 if base1 is not None else base2 - 1)
    return base2 + growth * (slot - 2)
