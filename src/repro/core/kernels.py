"""Structure-of-arrays block streams and batched engine kernels.

The scalar fetch engines replay one block at a time: rebuild its BIT
window, walk it code by code against the blocked PHT, then train.  This
module compiles a :class:`~repro.core.config.FetchInput` once into flat
numpy arrays (:class:`CompiledBlocks`) and resolves whole runs at once:

* every block's GHR value and PHT base index come straight from the
  trace (the architectural history is a pure function of the conditional
  outcome stream — ``packed_history``);
* every PHT counter read (the walks) and write (the training) is
  resolved by one segmented clamped-shift scan
  (:func:`~repro.predictors.evaluate._clamped_scan_transfers`), with
  reads as identity transfers ordered before the same block's writes;
* the first-predicted-taken walk of every block is a handful of
  row-wise reductions over the packed ``uint8`` window matrix
  (:func:`resolve_walks`).

The compiled form is memoised on the ``FetchInput`` and persisted
through the runtime cache (``<cache-dir>/compiled/``) when the input
came from the workload registry.  :mod:`repro.core.fast` drives these
kernels per engine; the scalar loops remain the readable ground truth
and the parity suite keeps both bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..icache.geometry import CacheGeometry, SELF_ALIGNED
from ..isa.kinds import InstrKind
from ..isa.program import StaticCode
from ..predictors.counters import COUNTER_MAX, COUNTER_MIN
from ..predictors.evaluate import (
    _NO_HI,
    _NO_LO,
    _clamped_scan_transfers,
    _grouping_order,
    packed_history,
)
from ..runtime import cache as disk_cache
from ..runtime import profile
from .config import FetchInput
from .selection import SRC_ARRAY, SRC_FALLTHROUGH, SRC_NEAR, SRC_RAS

K_COND = int(InstrKind.COND)
K_JUMP = int(InstrKind.JUMP)
K_CALL = int(InstrKind.CALL)
K_RETURN = int(InstrKind.RETURN)
K_INDIRECT = int(InstrKind.INDIRECT)
K_HALT = int(InstrKind.HALT)

#: Integer BitCode values (``repro.targets.bit.BitCode``) used in the
#: packed window matrices; near-block conditionals are codes 4..7.
CODE_NONBRANCH = 0
CODE_RETURN = 1
CODE_OTHER = 2
CODE_COND_LONG = 3

#: Counter states >= this predict taken (``counter_predicts_taken``).
TAKEN_MIN = 2

#: ``exit_offset`` sentinel for a fall-through walk (scalar ``None``).
NO_EXIT = -1

#: Large "no exit" offset so MATCH/EARLY/LATE reduce to comparisons.
FAR = np.int64(1) << np.int64(40)


# ----------------------------------------------------------------------
# Static-code and block-stream compilation
# ----------------------------------------------------------------------

def encode_static_codes(static: StaticCode, line_size: int,
                        near_block: bool) -> np.ndarray:
    """Per-address BIT codes of the whole text segment (``uint8``).

    Vectorised twin of :func:`repro.targets.bit.encode_instruction`
    applied to every address at once.
    """
    kind = np.asarray(static.kind, dtype=np.uint8)
    direct = np.asarray(static.direct_target, dtype=np.int64)
    n = len(kind)
    codes = np.zeros(n, dtype=np.uint8)
    codes[kind == K_RETURN] = CODE_RETURN
    codes[(kind == K_JUMP) | (kind == K_CALL)
          | (kind == K_INDIRECT)] = CODE_OTHER
    is_cond = kind == K_COND
    codes[is_cond] = CODE_COND_LONG
    if near_block:
        addr = np.arange(n, dtype=np.int64)
        line_off = direct // line_size - addr // line_size
        near = is_cond & (direct >= 0) & (line_off >= -1) & (line_off <= 2)
        # Line offsets -1/0/1/2 are BitCodes 4/5/6/7 (Table 1).
        codes[near] = (line_off[near] + 5).astype(np.uint8)
    return codes


@dataclass
class CompiledBlocks:
    """One trace's block stream flattened into structure-of-arrays form.

    All per-block arrays have one entry per fetch block, in fetch order;
    the conditional arrays are the trace's conditional-branch stream.
    ``window`` holds each block's true BIT codes padded with non-branch
    beyond the geometry limit, so row-wise kernels need no masks.
    """

    near_block: bool
    n_blocks: int
    start: np.ndarray        #: int64[n]
    limit: np.ndarray        #: int64[n] geometry block limit
    n_instr: np.ndarray      #: int64[n]
    exit_kind: np.ndarray    #: int64[n] InstrKind / EXIT_FALLTHROUGH
    exit_target: np.ndarray  #: int64[n]
    has_exit: np.ndarray     #: bool[n]  taken (non-HALT) exit
    is_halt: np.ndarray      #: bool[n]
    exit_pc: np.ndarray      #: int64[n] (-1 without a taken exit)
    exit_direct: np.ndarray  #: int64[n] static direct target at exit_pc
    act_exit: np.ndarray     #: int64[n] exit offset, FAR for fall-through
    line0: np.ndarray        #: int64[n] start line index
    window: np.ndarray       #: uint8[n, W]
    code_of_addr: np.ndarray  #: uint8[text size] per-address BIT codes
    conds_before: np.ndarray  #: int64[n] conds in trace before the block
    n_conds: np.ndarray      #: int64[n] conds inside the block
    cond_block: np.ndarray   #: int64[m] owning block of each conditional
    cond_pos: np.ndarray     #: int64[m] pc % block_width
    cond_taken: np.ndarray   #: bool[m]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Array payload for the persistent cache."""
        return {
            "start": self.start, "limit": self.limit,
            "n_instr": self.n_instr, "exit_kind": self.exit_kind,
            "exit_target": self.exit_target, "exit_pc": self.exit_pc,
            "exit_direct": self.exit_direct, "act_exit": self.act_exit,
            "line0": self.line0, "window": self.window,
            "code_of_addr": self.code_of_addr,
            "conds_before": self.conds_before, "n_conds": self.n_conds,
            "cond_block": self.cond_block, "cond_pos": self.cond_pos,
            "cond_taken": self.cond_taken,
        }

    @classmethod
    def from_arrays(cls, data, near_block: bool) -> "CompiledBlocks":
        """Rebuild from :meth:`to_arrays` output (or a loaded ``.npz``)."""
        start = np.asarray(data["start"], dtype=np.int64)
        exit_kind = np.asarray(data["exit_kind"], dtype=np.int64)
        return cls(
            near_block=near_block,
            n_blocks=len(start),
            start=start,
            limit=np.asarray(data["limit"], dtype=np.int64),
            n_instr=np.asarray(data["n_instr"], dtype=np.int64),
            exit_kind=exit_kind,
            exit_target=np.asarray(data["exit_target"], dtype=np.int64),
            has_exit=(exit_kind != 0) & (exit_kind != K_HALT),
            is_halt=exit_kind == K_HALT,
            exit_pc=np.asarray(data["exit_pc"], dtype=np.int64),
            exit_direct=np.asarray(data["exit_direct"], dtype=np.int64),
            act_exit=np.asarray(data["act_exit"], dtype=np.int64),
            line0=np.asarray(data["line0"], dtype=np.int64),
            window=np.asarray(data["window"], dtype=np.uint8),
            code_of_addr=np.asarray(data["code_of_addr"], dtype=np.uint8),
            conds_before=np.asarray(data["conds_before"], dtype=np.int64),
            n_conds=np.asarray(data["n_conds"], dtype=np.int64),
            cond_block=np.asarray(data["cond_block"], dtype=np.int64),
            cond_pos=np.asarray(data["cond_pos"], dtype=np.int64),
            cond_taken=np.asarray(data["cond_taken"], dtype=bool),
        )


def _compile(fetch_input: FetchInput, near_block: bool) -> CompiledBlocks:
    """Build the structure-of-arrays form of one fetch input."""
    blocks = fetch_input.blocks
    geometry = fetch_input.geometry
    trace = fetch_input.trace
    width = geometry.block_width
    line_size = geometry.line_size

    start = blocks.start.astype(np.int64)
    n_instr = blocks.n_instr.astype(np.int64)
    exit_kind = blocks.exit_kind.astype(np.int64)
    exit_target = blocks.exit_target.astype(np.int64)
    n = len(start)

    if geometry.kind == SELF_ALIGNED:
        limit = np.full(n, width, dtype=np.int64)
    else:
        room = line_size - start % line_size
        limit = np.minimum(room, width)

    has_exit = (exit_kind != 0) & (exit_kind != K_HALT)
    is_halt = exit_kind == K_HALT
    exit_pc = np.where(has_exit, start + n_instr - 1, np.int64(-1))
    act_exit = np.where(has_exit | is_halt,
                        np.where(has_exit, n_instr - 1, FAR), FAR)

    code_of_addr = encode_static_codes(fetch_input.static, line_size,
                                       near_block)
    n_static = len(code_of_addr)
    direct = np.asarray(fetch_input.static.direct_target,
                        dtype=np.int64)
    exit_direct = np.full(n, -1, dtype=np.int64)
    known = has_exit & (exit_pc < n_static)
    exit_direct[known] = direct[exit_pc[known]]

    cols = np.arange(width, dtype=np.int64)
    addrs = start[:, None] + cols[None, :]
    window = np.zeros((n, width), dtype=np.uint8)
    in_text = addrs < n_static
    window[in_text] = code_of_addr[addrs[in_text]]
    window[cols[None, :] >= limit[:, None]] = CODE_NONBRANCH

    # Conditional stream: record windows partition the trace, so the
    # per-block conds are the global conditional stream chunked by the
    # blocks' record windows.  A chunked trace provides the stream
    # directly (built one chunk at a time) so the full record arrays
    # never materialise for paper-scale captures.
    stream = getattr(trace, "cond_stream", None)
    if stream is not None:
        cond_prefix, cond_pc, cond_taken = stream()
        cond_pc = cond_pc.astype(np.int64, copy=False)
        cond_taken = cond_taken.astype(bool, copy=False)
    else:
        cond_mask = trace.cond_mask
        cond_prefix = np.zeros(len(cond_mask) + 1, dtype=np.int64)
        np.cumsum(cond_mask, out=cond_prefix[1:])
        cond_pc = trace.pc[cond_mask].astype(np.int64)
        cond_taken = trace.taken[cond_mask].astype(bool)
    first_rec = blocks.first_rec.astype(np.int64)
    n_recs = blocks.n_recs.astype(np.int64)
    conds_before = cond_prefix[first_rec]
    n_conds = cond_prefix[first_rec + n_recs] - conds_before
    cond_block = np.repeat(np.arange(n, dtype=np.int64), n_conds)

    return CompiledBlocks(
        near_block=near_block, n_blocks=n, start=start, limit=limit,
        n_instr=n_instr, exit_kind=exit_kind, exit_target=exit_target,
        has_exit=has_exit, is_halt=is_halt, exit_pc=exit_pc,
        exit_direct=exit_direct, act_exit=act_exit,
        line0=start // line_size, window=window,
        code_of_addr=code_of_addr, conds_before=conds_before,
        n_conds=n_conds, cond_block=cond_block,
        cond_pos=cond_pc % width, cond_taken=cond_taken,
    )


def compile_fetch_input(fetch_input: FetchInput,
                        near_block: bool) -> CompiledBlocks:
    """Compiled form of ``fetch_input``, memoised and disk-cached.

    The in-process memo lives on the ``FetchInput`` itself (keyed by the
    near-block flag, the only config knob that changes the compiled
    arrays).  Inputs loaded through the workload registry additionally
    carry a ``cache_key`` and persist under ``<cache-dir>/compiled/``.
    """
    memo = getattr(fetch_input, "_compiled", None)
    if memo is None:
        memo = {}
        fetch_input._compiled = memo
    compiled = memo.get(near_block)
    if compiled is not None:
        return compiled
    with profile.phase("compile"):
        key = getattr(fetch_input, "cache_key", None)
        if key is not None:
            name, budget, digest = key
            data = disk_cache.load_compiled(
                name, budget, fetch_input.geometry, near_block, digest,
                fetch_input.trace.n_records)
            if data is not None:
                compiled = CompiledBlocks.from_arrays(data, near_block)
                if compiled.n_blocks != fetch_input.blocks.n_blocks:
                    compiled = None  # stale artifact; recompile
        if compiled is None:
            compiled = _compile(fetch_input, near_block)
            if key is not None:
                name, budget, digest = key
                disk_cache.store_compiled(
                    compiled.to_arrays(), name, budget,
                    fetch_input.geometry, near_block, digest,
                    fetch_input.trace.n_records)
    memo[near_block] = compiled
    return compiled


# ----------------------------------------------------------------------
# Batched counter-bank resolution (PHT reads interleaved with training)
# ----------------------------------------------------------------------

def scan_counters(counters: np.ndarray,
                  read_blocks: np.ndarray, read_slots: np.ndarray,
                  write_blocks: np.ndarray, write_slots: np.ndarray,
                  write_taken: np.ndarray):
    """Resolve every PHT read against the interleaved training stream.

    Each block's walk reads happen before its own training writes and
    blocks proceed in stream order — encoded as the time key
    ``2*block + is_write`` — so the counter state a read observes is
    determined by the writes to its slot with a smaller time key.
    ``counters`` is a snapshot of the table (each slot starts from its
    current state).

    Reads are pure observers, so only the write stream needs grouping
    and the clamped saturating scan; each read then finds its preceding
    same-slot write count with a binary search over the packed
    ``slot * stride + time`` write keys — the read array itself is
    never sorted or scattered.

    Returns ``(read_taken, final_slots, final_states)``: the taken
    prediction of every read (in input order) and the post-run state of
    every written slot (ascending), for write-back.
    """
    n_r = len(read_slots)
    n_w = len(write_slots)
    if n_r + n_w == 0 or n_w == 0:
        empty = np.zeros(0, dtype=np.int64)
        reads = (counters[read_slots] >= TAKEN_MIN
                 if n_r else np.zeros(0, dtype=bool))
        return reads, empty, empty.copy()

    # Group writes by slot, time-ascending inside each group.  The
    # write stream arrives in block order from the compiled cond
    # arrays, so a stable grouping sort preserves time; fall back to a
    # full (slot, time) sort if it is ever out of order.
    if np.all(write_blocks[1:] >= write_blocks[:-1]):
        wg = _grouping_order(write_slots)
    else:
        wg = np.lexsort((write_blocks, write_slots))
    ws = write_slots[wg]
    wb = write_blocks[wg]
    wt = write_taken[wg]
    w_start = np.empty(n_w, dtype=bool)
    w_start[0] = True
    w_start[1:] = ws[1:] != ws[:-1]
    k = np.where(wt, 1, -1)
    lo = np.where(wt, _NO_LO, np.int64(COUNTER_MIN))
    hi = np.where(wt, np.int64(COUNTER_MAX), _NO_HI)
    _, after_w = _clamped_scan_transfers(k, lo, hi, w_start,
                                         counters[ws])

    w_end = np.empty(n_w, dtype=bool)
    w_end[:-1] = w_start[1:]
    w_end[-1] = True
    final_slots = ws[w_end]
    final_states = after_w[w_end].astype(np.int64)

    if n_r == 0:
        return np.zeros(0, dtype=bool), final_slots, final_states

    # Packed search keys: stride past the largest time key so keys
    # ascend with (slot, time).  Reads use time 2*block, writes
    # 2*block + 1, so a read at block b observes only writes at blocks
    # strictly before b — exactly the scalar interleaving.
    stride = 2 * np.int64(max(int(read_blocks.max()),
                              int(write_blocks.max()))) + 2
    wkey = ws * stride + 2 * wb + 1
    pos = np.searchsorted(wkey, read_slots * stride + 2 * read_blocks,
                          side="left")
    slot_base = np.searchsorted(wkey, read_slots * stride, side="left")
    has_prior = pos > slot_base
    state = np.where(has_prior, after_w[np.maximum(pos - 1, 0)],
                     counters[read_slots])
    return state >= TAKEN_MIN, final_slots, final_states


# ----------------------------------------------------------------------
# Batched block walks
# ----------------------------------------------------------------------

@dataclass
class WalkArrays:
    """Per-block results of the batched first-predicted-taken walk.

    ``sel``/``pay`` encode the scalar walk's ``selector`` and
    ``ghr_payload`` as single integers whose equality matches the
    scalar dataclass equality; the cold select-table default encodes to
    ``(0, 0)``.
    """

    exit_off: np.ndarray    #: int64[n], NO_EXIT for fall-through
    pred_exit: np.ndarray   #: int64[n], exit_off with FAR for fall-through
    src: np.ndarray         #: int64[n] SRC_* constant
    near: np.ndarray        #: int64[n] near BitCode or -1
    n_not_taken: np.ndarray  #: int64[n]
    ends_taken: np.ndarray  #: bool[n]
    sel: np.ndarray         #: int64[n] encoded selector
    pay: np.ndarray         #: int64[n] encoded GHR payload


def encode_selector(width: int, src: int, exit_off: Optional[int],
                    near: Optional[int]) -> int:
    """Scalar twin of the walk kernel's selector encoding."""
    off = NO_EXIT if exit_off is None else exit_off
    near_code = -1 if near is None else int(near)
    return (src * (width + 2) + (off + 1)) * 16 + (near_code + 1)


def decode_selector(width: int, sel: int) -> Tuple[int, Optional[int],
                                                   Optional[int]]:
    """Inverse of :func:`encode_selector` (select-table write-back)."""
    near_code = sel % 16 - 1
    rest = sel // 16
    off = rest % (width + 2) - 1
    src = rest // (width + 2)
    return (src, None if off < 0 else off,
            None if near_code < 0 else near_code)


def resolve_walks(window: np.ndarray, width: int,
                  pred_mat: np.ndarray) -> WalkArrays:
    """Resolve every block's walk given its window and read predictions.

    ``pred_mat`` holds the PHT taken-prediction at every conditional
    window position (other positions are ignored).  Predictions at
    positions past the first exit cannot affect the result — exactly as
    the scalar walk, which never reads them.
    """
    n = len(window)
    rows = np.arange(n, dtype=np.int64)
    is_cond = window >= CODE_COND_LONG
    # RETURN/OTHER always exit; conditionals exit when predicted taken.
    # Codes are 0 non-branch / 1 return / 2 other / >=3 cond, so this
    # is "branch and (unconditional or predicted taken)".
    exit_ev = (window != CODE_NONBRANCH) & (~is_cond | pred_mat)
    any_exit = exit_ev.any(axis=1)
    first = np.argmax(exit_ev, axis=1)
    exit_off = np.where(any_exit, first, np.int64(NO_EXIT))
    exit_code = window[rows, first].astype(np.int64)

    src = np.full(n, SRC_FALLTHROUGH, dtype=np.int64)
    cond_exit = any_exit & (exit_code >= CODE_COND_LONG)
    near_cond = cond_exit & (exit_code > CODE_COND_LONG)
    src[any_exit & (exit_code == CODE_RETURN)] = SRC_RAS
    src[any_exit & (exit_code == CODE_OTHER)] = SRC_ARRAY
    src[cond_exit] = SRC_ARRAY
    src[near_cond] = SRC_NEAR
    near = np.where(near_cond, exit_code, np.int64(-1))

    # Every conditional before the exit was predicted not taken (else it
    # would have been the exit), so the payload is a prefix count — only
    # the count strictly before the exit (or the row total) is needed,
    # so count under a column mask instead of materializing a cumsum.
    if width:
        cols = np.arange(width, dtype=np.int64)
        limit = np.where(any_exit, first, np.int64(width))
        n_not_taken = np.count_nonzero(
            is_cond & (cols < limit[:, None]), axis=1)
    else:
        n_not_taken = np.zeros(n, dtype=np.int64)
    ends_taken = cond_exit
    sel = (src * (width + 2) + (exit_off + 1)) * 16 + (near + 1)
    pay = n_not_taken * 2 + ends_taken
    return WalkArrays(
        exit_off=exit_off,
        pred_exit=np.where(any_exit, first, FAR),
        src=src, near=near, n_not_taken=n_not_taken,
        ends_taken=ends_taken, sel=sel, pay=pay,
    )


# ----------------------------------------------------------------------
# Bank-conflict pairs (dual / two-ahead)
# ----------------------------------------------------------------------

def pair_conflicts(compiled: CompiledBlocks,
                   geometry: CacheGeometry) -> np.ndarray:
    """``out[j]`` = blocks ``j`` and ``j+1`` collide on a cache bank.

    Vectorised :func:`repro.icache.banks.blocks_conflict` for
    consecutive block pairs.  Normal/extended blocks read one line each;
    self-aligned blocks always read their aligned line pair.
    """
    n = compiled.n_blocks
    out = np.zeros(n, dtype=bool)
    if n < 2:
        return out
    nb = geometry.n_banks
    f1 = compiled.line0[:-1]
    f2 = compiled.line0[1:]
    if geometry.kind != SELF_ALIGNED:
        out[:-1] = (f2 != f1) & ((f2 % nb) == (f1 % nb))
        return out
    bf1 = f1 % nb
    bf2 = (f1 + 1) % nb
    a, b = f2, f2 + 1
    a_shared = (a == f1) | (a == f1 + 1)
    a_bank = a % nb
    a_hit = ~a_shared & ((a_bank == bf1) | (a_bank == bf2))
    a_claimed = ~a_shared & ~a_hit
    b_shared = (b == f1) | (b == f1 + 1)
    b_bank = b % nb
    b_hit = ~b_shared & ((b_bank == bf1) | (b_bank == bf2)
                         | (a_claimed & (b_bank == a_bank)))
    out[:-1] = a_hit | b_hit
    return out


# ----------------------------------------------------------------------
# Separate-BIT-table stale windows (Figure 7)
# ----------------------------------------------------------------------

@dataclass
class StaleWindows:
    """Vectorised separate-BIT-table behaviour for a whole run."""

    window: np.ndarray       #: uint8[n, W] stale codes per block
    accesses: int            #: BITTable.access calls the run performs
    stale_hits: int          #: aliased non-empty reads
    final_slots: np.ndarray  #: int64 slots the run filled
    final_lines: np.ndarray  #: int64 last line filled per slot


def stale_bit_windows(compiled: CompiledBlocks, line_size: int,
                      n_entries: int, width: int,
                      init_lines: np.ndarray,
                      init_codes: np.ndarray) -> StaleWindows:
    """Replay the tag-less BIT table's reads/fills for every block.

    Each block reads its spanned lines' entries (stale if aliased) and
    then fills them with the true codes.  A per-slot forward fill over
    the (read, fill) event stream recovers which line each read saw;
    gathering that line's true codes builds the stale window matrix.
    ``init_lines``/``init_codes`` seed slots from the table's pre-run
    state (-1 = never written); reads served by that state use the
    *stored* codes, which a warm table may have encoded from a different
    program's static code.
    """
    n = compiled.n_blocks
    start = compiled.start
    limit = compiled.limit
    l0 = compiled.line0
    span1 = np.minimum(limit, line_size - start % line_size)
    l_last = (start + limit - 1) // line_size
    second = np.nonzero(l_last > l0)[0]

    # Events: per block, reads of its lines (key 2b) then fills of the
    # same lines in ascending line order (key 2b+1, stable).
    blocks_ev = np.concatenate([np.arange(n, dtype=np.int64), second])
    lines_ev = np.concatenate([l0, l_last[second]])
    n_reads = len(blocks_ev)
    ev_block = np.concatenate([blocks_ev, blocks_ev])
    ev_line = np.concatenate([lines_ev, lines_ev])
    ev_fill = np.zeros(2 * n_reads, dtype=bool)
    ev_fill[n_reads:] = True
    ev_key = ev_block * 2 + ev_fill
    ev_slot = ev_line % n_entries

    order_t = np.argsort(ev_key, kind="stable")
    g = _grouping_order(ev_slot[order_t])
    order = order_t[g]
    sl = ev_slot[order]
    ln = ev_line[order]
    fl = ev_fill[order]
    m = len(order)
    seg_start = np.empty(m, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = sl[1:] != sl[:-1]

    # Segmented "index of the latest fill at or before me".
    idx = np.arange(m, dtype=np.int64)
    fill_idx = np.where(fl, idx, np.int64(-1))
    seg_base = np.maximum.accumulate(np.where(seg_start, idx, 0))
    last_fill = np.maximum.accumulate(fill_idx)
    filled = last_fill >= seg_base
    stored_g = np.where(filled, ln[np.maximum(last_fill, 0)],
                        init_lines[sl])

    stored_all = np.empty(m, dtype=np.int64)
    stored_all[order] = stored_g
    from_init_all = np.empty(m, dtype=bool)
    from_init_all[order] = ~filled
    stored_reads = stored_all[:n_reads]
    from_init = from_init_all[:n_reads]
    stale_hits = int(np.count_nonzero(
        (stored_reads >= 0) & (stored_reads != lines_ev)))

    # Last fill per touched slot, for table-state write-back.
    seg_end = np.empty(m, dtype=bool)
    seg_end[:-1] = seg_start[1:]
    seg_end[-1] = True
    end_filled = seg_end & filled
    final_slots = sl[end_filled]
    final_lines = ln[np.maximum(last_fill, 0)][end_filled]

    # Stale window: the stored line's codes at each block offset.  Fills
    # from this run store the current program's true codes; slots still
    # in their pre-run state supply whatever codes they were seeded with.
    stored0 = stored_reads[:n]
    stored1 = np.full(n, -1, dtype=np.int64)
    stored1[second] = stored_reads[n:]
    init0 = from_init[:n]
    init1 = np.zeros(n, dtype=bool)
    init1[second] = from_init[n:]
    cols = np.arange(width, dtype=np.int64)
    use_second = cols[None, :] >= span1[:, None]
    stored_line = np.where(use_second, stored1[:, None], stored0[:, None])
    use_init = np.where(use_second, init1[:, None], init0[:, None])
    slot_mat = np.where(use_second, (l_last % n_entries)[:, None],
                        (l0 % n_entries)[:, None])
    offs = (start[:, None] + cols[None, :]) % line_size
    stale_addr = stored_line * line_size + offs
    code_pad = np.concatenate(
        [compiled.code_of_addr, np.zeros(1, dtype=np.uint8)])
    n_static = len(compiled.code_of_addr)
    valid = (cols[None, :] < limit[:, None]) & (stored_line >= 0) \
        & (stale_addr < n_static) & ~use_init
    window = code_pad[np.where(valid, stale_addr, n_static)]
    seeded = (cols[None, :] < limit[:, None]) & (stored_line >= 0) \
        & use_init
    window = np.where(seeded, init_codes[slot_mat, offs], window)
    return StaleWindows(window=window, accesses=n_reads,
                        stale_hits=stale_hits, final_slots=final_slots,
                        final_lines=final_lines)
