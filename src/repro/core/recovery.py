"""Bad branch recovery (BBR) entries — Table 4.

Every in-flight conditional branch is assigned a recovery entry holding
everything needed to restart fetch in the Table 3 cycle counts: the
alternate target (the branch target when predicted not-taken; the next
control transfer or fall-through when predicted taken), a corrected GHR, a
replacement selector and the counter's "second chance" bit.

The engines can record these entries (``EngineConfig.track_recovery``) so
tests and examples can inspect the recovery machinery; the paper assumes
the processor always has enough entries, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .selection import Selector


@dataclass(frozen=True)
class RecoveryEntry:
    """One bad-branch-recovery entry (fields of Table 4).

    Attributes:
        block_slot: 1 or 2 — which block of the pair held the branch.
        predicted_taken: the direction the PHT predicted.
        second_chance: counter was in a strong state, so one misprediction
            will not flip the stored prediction.
        pht_index: entry base the prediction came from (to update on
            resolution).
        pht_block: optional snapshot of the whole counter block, letting
            the PHT be repaired with one write instead of
            read/modify/write per branch.
        corrected_ghr: GHR value to restore on misprediction.
        replacement_selector: selector to write into the select table when
            the branch had no second chance.
        alternate_target: where to fetch from if the prediction was wrong.
    """

    block_slot: int
    predicted_taken: bool
    second_chance: bool
    pht_index: int
    pht_block: Optional[Tuple[int, ...]]
    corrected_ghr: int
    replacement_selector: Selector
    alternate_target: int

    def bits(self, history_length: int = 10, block_width: int = 8,
             full_address: bool = False) -> int:
        """Storage cost of this entry per Table 4's field sizes."""
        return recovery_entry_bits(history_length, block_width,
                                   include_pht_block=self.pht_block
                                   is not None,
                                   full_address=full_address)


def recovery_entry_bits(history_length: int = 10, block_width: int = 8,
                        include_pht_block: bool = True,
                        full_address: bool = False) -> int:
    """Bit cost of one BBR entry (Table 4).

    block-1-or-2 (1) + taken (1) + second chance (1) + PHT index (h) +
    optional PHT block (2B) + corrected GHR (h) + replacement selector
    (log2(B) + 1 + near bits, ~8) + corrected index or address (10 or 30).
    """
    bits = 1 + 1 + 1
    bits += history_length              # PHT index
    if include_pht_block:
        bits += 2 * block_width         # PHT block (optional)
    bits += history_length              # corrected GHR
    bits += 8                           # replacement selector
    bits += 30 if full_address else 10  # corrected i-cache index / address
    return bits
