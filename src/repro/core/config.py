"""Fetch-engine configuration and input bundling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..icache.geometry import CacheGeometry
from ..isa.program import Program, StaticCode
from ..trace.blocks import BlockStream, segment_blocks
from ..trace.record import Trace
from .penalties import DOUBLE_SELECT, SINGLE_SELECT

#: Target-array implementations.
TARGET_NLS = "nls"
TARGET_BTB = "btb"


@dataclass(frozen=True)
class EngineConfig:
    """Configuration shared by the single- and dual-block engines.

    Defaults reproduce the paper's Section 4 baseline: block width 8, one
    global blocked PHT with a 10-bit GHR, one 1024-entry select table,
    256-entry NLS target array, 32-entry RAS, BIT stored in the (perfect)
    instruction cache, near-block prediction off.
    """

    geometry: CacheGeometry = field(default_factory=CacheGeometry.normal)
    history_length: int = 10
    n_pht_tables: int = 1
    n_select_tables: int = 1
    target_kind: str = TARGET_NLS
    target_entries: int = 256
    btb_associativity: int = 4
    near_block: bool = False
    ras_size: int = 32
    bit_entries: Optional[int] = None   #: None = BIT held in the i-cache
    selection: str = SINGLE_SELECT      #: dual engine: single or double
    track_recovery: bool = False        #: record BBR entries (Table 4)
    #: Section 2: "The processor should keep track of the target address
    #: of each conditional branch that is predicted not taken. In the
    #: case it was mispredicted, the correct block may be immediately
    #: fetched the following cycle after branch resolution.  Otherwise,
    #: an additional cycle is required to read the target address from
    #: the target array."  True (paper default) = tracked; False charges
    #: the extra cycle on every not-taken-misprediction.
    track_not_taken_targets: bool = True

    def __post_init__(self) -> None:
        if self.history_length < 1:
            raise ValueError("history_length must be positive")
        if self.target_kind not in (TARGET_NLS, TARGET_BTB):
            raise ValueError(f"unknown target_kind: {self.target_kind!r}")
        if self.selection not in (SINGLE_SELECT, DOUBLE_SELECT):
            raise ValueError(f"unknown selection: {self.selection!r}")
        if self.bit_entries is not None and self.bit_entries < 1:
            raise ValueError("bit_entries must be positive when given")


@dataclass
class FetchInput:
    """Everything a fetch engine consumes for one workload.

    Bundles the dynamic trace, the program's static code map (the source of
    true BIT information) and the block segmentation under one geometry.
    """

    trace: Trace
    static: StaticCode
    geometry: CacheGeometry
    blocks: BlockStream

    @classmethod
    def from_trace(cls, trace: Trace, static: StaticCode,
                   geometry: CacheGeometry) -> "FetchInput":
        """Segment ``trace`` under ``geometry`` and bundle."""
        return cls(trace=trace, static=static, geometry=geometry,
                   blocks=segment_blocks(trace, geometry))

    @classmethod
    def from_program(cls, program: Program, geometry: CacheGeometry,
                     max_instructions: int = 10_000_000) -> "FetchInput":
        """Execute ``program`` (via the ``REPRO_TRACER`` tier) and bundle."""
        from ..cpu import capture_machine

        trace = capture_machine(program).run(
            max_instructions=max_instructions).trace
        return cls.from_trace(trace, program.static_code(), geometry)
