"""Optional numba backend (``REPRO_BACKEND=numba``).

Reuses the compiled backend's generated kernels unchanged — every
generated source routes its primitives through the backend object — and
overrides only the keyed replay with a dense ``@njit`` loop over the
event stream.  Registers only when :mod:`numba` imports; the registry
degrades the request to ``compiled`` otherwise, so selecting this
backend is always safe.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import BoolArray, IntArray, ReplayResult
from .compiled import CompiledKernelBackend


def dense_replay(keys: IntArray, values: IntArray, writes: BoolArray,
                 state: IntArray, observed: IntArray,
                 written: BoolArray) -> None:
    """Dense O(events) replay loop; the njit kernel of this backend.

    Kept a plain-Python callable so its logic is testable without
    numba installed; the backend jits it on first use.  ``state`` and
    ``written`` are mutated in place.
    """
    for i in range(keys.shape[0]):
        k = keys[i]
        observed[i] = state[k]
        if writes[i]:
            state[k] = values[i]
            written[k] = True


class NumbaBackend(CompiledKernelBackend):
    """Compiled-kernel backend with an njit event-replay loop."""

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        self._replay_loop: Any = None

    def available(self) -> bool:
        try:
            import numba  # noqa: F401  (availability probe only)
        except ImportError:
            return False
        return True

    def _loop(self) -> Any:
        if self._replay_loop is None:
            try:
                from numba import njit
                self._replay_loop = njit(dense_replay)
            except ImportError:
                self._replay_loop = dense_replay
        return self._replay_loop

    def replay(self, keys: IntArray, values: IntArray,
               writes: BoolArray, init: IntArray) -> ReplayResult:
        m = int(keys.shape[0])
        observed = np.zeros(m, dtype=np.int64)
        state = np.array(init, dtype=np.int64)
        written = np.zeros(state.shape[0], dtype=bool)
        if m:
            self._loop()(
                np.ascontiguousarray(keys, dtype=np.int64),
                np.ascontiguousarray(values, dtype=np.int64),
                np.ascontiguousarray(writes, dtype=bool),
                state, observed, written)
        final_keys = np.nonzero(written)[0].astype(np.int64)
        return (observed, final_keys,
                np.asarray(state[final_keys], dtype=np.int64))
