"""The default pure-numpy backend (``REPRO_BACKEND=numpy``).

Runs the shared vectorized front half of :mod:`repro.core.fast` and
then the reference serial residual loops (select tables, target
arrays) exactly as the fast tier always has — this backend *is* the
pre-backend behaviour, preserved bit for bit.
"""

from __future__ import annotations

from typing import Any

from .base import KernelBackend


class NumpyBackend(KernelBackend):
    """Always-available baseline backend."""

    name = "numpy"

    def run_single(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_single(engine, fetch_input)
        if run.n == 0:
            return stats
        return fast._residual_single_numpy(engine, run, stats)

    def run_dual(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_dual(engine, fetch_input)
        if run.n == 0:
            return stats
        return fast._residual_dual_numpy(engine, run, stats)

    def run_multi(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_multi(engine, fetch_input)
        if run.n == 0:
            return stats
        return fast._residual_multi_numpy(engine, run, stats)

    def run_two_ahead(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_two_ahead(engine, fetch_input)
        if run.n == 0:
            return stats
        return fast._residual_two_ahead_numpy(engine, run, stats)
