"""Pluggable kernel backends for the fast fetch-engine tier.

``REPRO_BACKEND`` selects how the vectorized engine core executes its
kernels.  Every backend implements the same narrow contract
(:class:`repro.core.backends.base.KernelBackend`) behind the existing
``FetchInput`` -> ``FetchStats`` boundary and is locked bit-exact —
stats *and* full predictor state — against the scalar reference loops
by the parity suite and the ``repro.qa`` differential oracle's backend
axis.

Registered tiers, each degrading to the next when unavailable:

* ``numpy`` (default) — the pure-numpy kernels of
  :mod:`repro.core.fast`, always available.
* ``compiled`` — exec-generated kernels specialized per (geometry,
  predictor-config) cell with all shape constants folded in, persisted
  under ``<cache>/compiled/kernels/``; falls back to ``numpy`` for
  shapes it does not specialize (set-associative BTB targets).
* ``numba`` — ``@njit`` tight loops over the SoA event streams;
  registers only when :mod:`numba` imports, otherwise degrades to
  ``compiled``.
"""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

from ... import envvars

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import KernelBackend

#: Environment variable selecting the kernel backend.
BACKEND_ENV = "REPRO_BACKEND"

BACKEND_NUMPY = "numpy"
BACKEND_COMPILED = "compiled"
BACKEND_NUMBA = "numba"

#: Accepted values, in display order.
BACKEND_MODES: Tuple[str, ...] = (BACKEND_NUMPY, BACKEND_COMPILED,
                                  BACKEND_NUMBA)

#: Degradation order per requested mode: the first available backend
#: along the chain runs.  ``numpy`` is always available.
FALLBACK_CHAINS: Dict[str, Tuple[str, ...]] = {
    BACKEND_NUMPY: (BACKEND_NUMPY,),
    BACKEND_COMPILED: (BACKEND_COMPILED, BACKEND_NUMPY),
    BACKEND_NUMBA: (BACKEND_NUMBA, BACKEND_COMPILED, BACKEND_NUMPY),
}

_instances: Dict[str, "KernelBackend"] = {}


def backend_mode() -> str:
    """Selected backend from ``REPRO_BACKEND``.

    Unset or empty defaults to ``numpy``.  Anything else outside
    :data:`BACKEND_MODES` raises a :class:`ValueError` naming the
    variable (the CLI validates eagerly and exits 2).
    """
    raw = envvars.read(BACKEND_ENV)
    if raw is None or not raw.strip():
        return BACKEND_NUMPY
    text = raw.strip().lower()
    if text in BACKEND_MODES:
        return text
    raise ValueError(
        f"{BACKEND_ENV} must be one of {'/'.join(BACKEND_MODES)}, "
        f"got {raw!r}")


def get_backend(name: str) -> "KernelBackend":
    """The (cached) backend instance registered under ``name``."""
    backend = _instances.get(name)
    if backend is None:
        if name == BACKEND_NUMPY:
            from .numpy_backend import NumpyBackend
            backend = NumpyBackend()
        elif name == BACKEND_COMPILED:
            from .compiled import CompiledKernelBackend
            backend = CompiledKernelBackend()
        elif name == BACKEND_NUMBA:
            from .numba_backend import NumbaBackend
            backend = NumbaBackend()
        else:
            raise ValueError(f"unknown backend: {name!r}")
        _instances[name] = backend
    return backend


def resolve_backend(name: str) -> "KernelBackend":
    """First *available* backend along ``name``'s fallback chain."""
    for candidate in FALLBACK_CHAINS[name]:
        backend = get_backend(candidate)
        if backend.available():
            return backend
    return get_backend(BACKEND_NUMPY)


def active_backend() -> "KernelBackend":
    """The backend selected by ``REPRO_BACKEND``, after degradation."""
    return resolve_backend(backend_mode())


def available_backends() -> Tuple[str, ...]:
    """Modes whose backend can run in this interpreter, display order."""
    return tuple(mode for mode in BACKEND_MODES
                 if get_backend(mode).available())
