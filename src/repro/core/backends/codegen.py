"""Exec-compiled residual kernels for ``REPRO_BACKEND=compiled``.

Mirrors the superblock compiler of :mod:`repro.cpu.codegen` (PR 7):
for every (engine kind, geometry, predictor-config) cell a small
Python source file is generated with *all* shape constants folded in —
line size, table extents, slot masks, Table 3 penalty cycles — then
``exec``-compiled and memoized.  The generated function replays the
run's select-table / target-array event stream through the backend's
keyed last-write replay primitive, so the per-block Python loops of
the reference residual disappear into a handful of straight-line
integer numpy ops.

Kernels persist under ``<cache>/compiled/kernels/<kind>-<digest>.py``
so later processes skip generation; a corrupt or stale file is
regenerated and overwritten.  Bump :data:`KERNEL_VERSION` whenever the
templates change — the digest covers it, so old artifacts simply stop
being referenced.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Template version; part of every spec digest.
KERNEL_VERSION = 1

#: Signature of a generated kernel: (backend, engine, run, stats) -> stats.
KernelFunc = Callable[..., Any]


@dataclass(frozen=True)
class KernelSpec:
    """One specialization cell: engine kind + folded shape constants."""

    kind: str
    constants: Tuple[Tuple[str, Any], ...]

    def digest(self) -> str:
        """Stable content digest naming the persisted kernel."""
        payload = json.dumps(
            {"version": KERNEL_VERSION, "kind": self.kind,
             "constants": list(self.constants)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Source templates
# ----------------------------------------------------------------------

def _header(spec: KernelSpec) -> List[str]:
    return [
        f'"""Generated {spec.kind} residual kernel (do not edit).',
        "",
        "Executed inside a namespace providing np / PenaltyKind /",
        "SRC_NEAR / DualSelectEntry / seed_combined / seed_targets;",
        "everything else is folded constants.",
        f'kernel-version: {KERNEL_VERSION}',
        f'spec: {json.dumps(dict(spec.constants), sort_keys=True)}',
        '"""',
        "",
        "",
    ]


def _single_source(c: Dict[str, Any]) -> List[str]:
    return [
        "def kernel(backend, engine, run, stats):",
        "    compiled = run.compiled",
        "    walk = run.walk",
        "    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]",
        "    if todo.shape[0] == 0:",
        "        return stats",
        "    exit_pc = compiled.exit_pc[todo]",
        f"    keys = (exit_pc // {c['LS']} % {c['NBE']}) * {c['TLS']}"
        f" + exit_pc % {c['LS']}",
        "    values = compiled.exit_target[todo]",
        "    writes = ~run.near_ok[todo]",
        "    store = engine.targets._targets",
        "    observed, fin_k, fin_v = backend.replay(",
        "        keys, values, writes, seed_targets(store))",
        "    wrong = (run.match[todo] & (walk.src[todo] != SRC_NEAR)",
        "             & (observed != values))",
        "    kind = run.mf[todo]",
        "    imm = int(np.count_nonzero(wrong & (kind == 1)))",
        "    ind = int(np.count_nonzero(wrong & (kind == 2)))",
        "    backend.charge(stats, PenaltyKind.MISFETCH_IMMEDIATE, imm,",
        f"                   imm * {c['IMM']})",
        "    backend.charge(stats, PenaltyKind.MISFETCH_INDIRECT, ind,",
        f"                   ind * {c['IND']})",
        "    for k, v in zip(fin_k.tolist(), fin_v.tolist()):",
        "        store[k] = v",
        "    return stats",
    ]


def _dual_select_double(c: Dict[str, Any]) -> List[str]:
    return [
        f"    keys = np.concatenate([st_slot[even],"
        f" st_slot[eo] + {c['TOTAL']}])",
        "    values = np.concatenate([comb[even], comb[eo + 1]])",
        "    writes = np.concatenate(",
        "        [odd_ok, np.ones(eo.shape[0], dtype=bool)])",
        "    init = np.concatenate([",
        f"        seed_combined({c['W']}, {c['PAYL']},",
        "                      [None if e is None else e.first",
        "                       for e in entries]),",
        f"        seed_combined({c['W']}, {c['PAYL']},",
        "                      [None if e is None else e.second",
        "                       for e in entries])])",
        "    observed, fin_k, fin_v = backend.replay(keys, values,",
        "                                            writes, init)",
        "    p = even.shape[0]",
        "    obs1 = observed[:p]",
        f"    mis1 = (obs1 // {c['PAYL']}) != walk.sel[even]",
        "    g1 = ~mis1 & (obs1 != comb[even])",
        "    obs2 = observed[p:]",
        f"    mis2 = (obs2 // {c['PAYL']}) != walk.sel[eo + 1]",
        "    g2 = ~mis2 & (obs2 != comb[eo + 1])",
        "    c1 = int(np.count_nonzero(mis1))",
        "    c2 = int(np.count_nonzero(mis2))",
        "    backend.charge(stats, PenaltyKind.MISSELECT, c1 + c2,",
        f"                   c1 * {c['MS1']} + c2 * {c['MS2']})",
        "    c1 = int(np.count_nonzero(g1))",
        "    c2 = int(np.count_nonzero(g2))",
        "    backend.charge(stats, PenaltyKind.GHR, c1 + c2,",
        f"                   c1 * {c['G1']} + c2 * {c['G2']})",
        "    fin = dict(zip(fin_k.tolist(), fin_v.tolist()))",
        "    for k, v in fin.items():",
        f"        if k >= {c['TOTAL']}:",
        "            continue",
        f"        w = fin[k + {c['TOTAL']}]",
        "        entries[k] = DualSelectEntry(",
        f"            backend.decode_select_entry({c['W']},"
        f" v // {c['PAYL']}, v % {c['PAYL']}),",
        f"            backend.decode_select_entry({c['W']},"
        f" w // {c['PAYL']}, w % {c['PAYL']}))",
    ]


def _dual_select_single(c: Dict[str, Any]) -> List[str]:
    return [
        "    keys = st_slot[eo]",
        "    values = comb[eo + 1]",
        "    writes = np.ones(eo.shape[0], dtype=bool)",
        f"    init = seed_combined({c['W']}, {c['PAYL']}, entries)",
        "    observed, fin_k, fin_v = backend.replay(keys, values,",
        "                                            writes, init)",
        f"    mis2 = (observed // {c['PAYL']}) != walk.sel[eo + 1]",
        "    g2 = ~mis2 & (observed != values)",
        "    c2 = int(np.count_nonzero(mis2))",
        f"    backend.charge(stats, PenaltyKind.MISSELECT, c2,"
        f" c2 * {c['MS2']})",
        "    c2 = int(np.count_nonzero(g2))",
        f"    backend.charge(stats, PenaltyKind.GHR, c2, c2 * {c['G2']})",
        "    for k, v in zip(fin_k.tolist(), fin_v.tolist()):",
        f"        entries[k] = backend.decode_select_entry(",
        f"            {c['W']}, v // {c['PAYL']}, v % {c['PAYL']})",
    ]


def _dual_source(c: Dict[str, Any]) -> List[str]:
    lines = [
        "def kernel(backend, engine, run, stats):",
        "    compiled = run.compiled",
        "    walk = run.walk",
        "    n = run.n",
        f"    comb = walk.sel * {c['PAYL']} + walk.pay",
        f"    st_slot = ((run.anchor_start % {c['LS']}) % {c['NT']})"
        f" * {c['NE']} + (run.base & {c['MASK']})",
        "    even = np.arange(0, n, 2, dtype=np.int64)",
        "    odd_ok = even + 1 < n",
        "    eo = even[odd_ok]",
        "    entries = engine.select._entries",
    ]
    if c["DOUBLE"]:
        lines.extend(_dual_select_double(c))
    else:
        lines.extend(_dual_select_single(c))
    lines.extend([
        "    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]",
        "    if todo.shape[0] == 0:",
        "        return stats",
        "    which2 = (todo % 2) == 1",
        "    anchor = compiled.line0[todo - todo % 2]",
        "    exit_pc = compiled.exit_pc[todo]",
        f"    keys = (which2.astype(np.int64) * {c['HALF']}",
        f"            + (anchor % {c['NBE']}) * {c['TLS']}"
        f" + exit_pc % {c['LS']})",
    ])
    lines.extend(_pair_target_tail(c))
    return lines


def _two_ahead_source(c: Dict[str, Any]) -> List[str]:
    lines = [
        "def kernel(backend, engine, run, stats):",
        "    compiled = run.compiled",
        "    walk = run.walk",
        "    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]",
        "    if todo.shape[0] == 0:",
        "        return stats",
        "    which2 = (todo % 2) == 0",
        f"    anchor = run.anchor_start[todo] // {c['LS']}",
        "    exit_pc = compiled.exit_pc[todo]",
        f"    keys = (which2.astype(np.int64) * {c['HALF']}",
        f"            + (anchor % {c['NBE']}) * {c['TLS']}"
        f" + exit_pc % {c['LS']})",
    ]
    lines.extend(_pair_target_tail(c))
    return lines


def _pair_target_tail(c: Dict[str, Any]) -> List[str]:
    """Dual-half NLS target replay shared by dual and two-ahead."""
    return [
        "    values = compiled.exit_target[todo]",
        "    writes = ~run.near_ok[todo]",
        "    first = engine.targets.first._targets",
        "    second = engine.targets.second._targets",
        "    init = np.concatenate(",
        "        [seed_targets(first), seed_targets(second)])",
        "    observed, fin_k, fin_v = backend.replay(keys, values,",
        "                                            writes, init)",
        "    wrong = (run.match[todo] & (walk.src[todo] != SRC_NEAR)",
        "             & (observed != values))",
        "    kind = run.mf[todo]",
        "    i1 = int(np.count_nonzero(wrong & (kind == 1) & ~which2))",
        "    i2 = int(np.count_nonzero(wrong & (kind == 1) & which2))",
        "    d1 = int(np.count_nonzero(wrong & (kind == 2) & ~which2))",
        "    d2 = int(np.count_nonzero(wrong & (kind == 2) & which2))",
        "    backend.charge(stats, PenaltyKind.MISFETCH_IMMEDIATE,",
        f"                   i1 + i2, i1 * {c['C11']} + i2 * {c['C12']})",
        "    backend.charge(stats, PenaltyKind.MISFETCH_INDIRECT,",
        f"                   d1 + d2, d1 * {c['C21']} + d2 * {c['C22']})",
        "    for k, v in zip(fin_k.tolist(), fin_v.tolist()):",
        f"        if k < {c['HALF']}:",
        "            first[k] = v",
        "        else:",
        f"            second[k - {c['HALF']}] = v",
        "    return stats",
    ]


def _multi_source(c: Dict[str, Any]) -> List[str]:
    lines = [
        "def kernel(backend, engine, run, stats):",
        "    compiled = run.compiled",
        "    walk = run.walk",
        "    n = run.n",
    ]
    if c["T"]:
        lines.extend([
            f"    comb = walk.sel * {c['PAYL']} + walk.pay",
            f"    st_slot = ((run.anchor_start % {c['LS']}) % {c['NT']})"
            f" * {c['NE']} + (run.base & {c['MASK']})",
            "    idx = np.arange(n, dtype=np.int64)",
            f"    slot_key = st_slot[idx - idx % {c['G']}]",
            f"    mods = {tuple(c['MODS'])!r}",
            f"    ms_cyc = {tuple(c['MS'])!r}",
            f"    gh_cyc = {tuple(c['GH'])!r}",
            "    parts_j = []",
            "    parts_k = []",
            "    parts_v = []",
            f"    for t in range({c['T']}):",
            f"        js = np.arange(mods[t], n, {c['G']}, dtype=np.int64)",
            "        parts_j.append(js)",
            f"        parts_k.append(slot_key[js] + t * {c['TOTAL']})",
            "        parts_v.append(comb[js])",
            "    keys = np.concatenate(parts_k)",
            "    values = np.concatenate(parts_v)",
            "    writes = np.ones(keys.shape[0], dtype=bool)",
            "    init = np.concatenate(",
            f"        [seed_combined({c['W']}, {c['PAYL']}, tbl._entries)",
            "         for tbl in engine.selects])",
            "    observed, fin_k, fin_v = backend.replay(keys, values,",
            "                                            writes, init)",
            "    ms_n = ms_c = gh_n = gh_c = 0",
            "    lo = 0",
            f"    for t in range({c['T']}):",
            "        hi = lo + parts_j[t].shape[0]",
            "        obs = observed[lo:hi]",
            f"        mis = (obs // {c['PAYL']}) != walk.sel[parts_j[t]]",
            "        g = ~mis & (obs != parts_v[t])",
            "        cm = int(np.count_nonzero(mis))",
            "        cg = int(np.count_nonzero(g))",
            "        ms_n += cm",
            "        ms_c += cm * ms_cyc[t]",
            "        gh_n += cg",
            "        gh_c += cg * gh_cyc[t]",
            "        lo = hi",
            "    backend.charge(stats, PenaltyKind.MISSELECT, ms_n, ms_c)",
            "    backend.charge(stats, PenaltyKind.GHR, gh_n, gh_c)",
            "    for k, v in zip(fin_k.tolist(), fin_v.tolist()):",
            f"        engine.selects[k // {c['TOTAL']}]._entries["
            f"k % {c['TOTAL']}] = \\",
            f"            backend.decode_select_entry({c['W']},"
            f" v // {c['PAYL']}, v % {c['PAYL']})",
        ])
    lines.extend([
        "    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]",
        "    if todo.shape[0] == 0:",
        "        return stats",
        f"    slot_of = todo % {c['G']}",
        "    anchor = compiled.line0[todo - slot_of]",
        "    exit_pc = compiled.exit_pc[todo]",
        f"    keys = (slot_of * {c['ARRSZ']}",
        f"            + (anchor % {c['NBE']}) * {c['TLS']}"
        f" + exit_pc % {c['LS']})",
        "    values = compiled.exit_target[todo]",
        "    writes = ~run.near_ok[todo]",
        "    arrays = engine.targets._arrays",
        "    init = np.concatenate(",
        "        [seed_targets(arr._targets) for arr in arrays])",
        "    observed, fin_k, fin_v = backend.replay(keys, values,",
        "                                            writes, init)",
        "    wrong = (run.match[todo] & (walk.src[todo] != SRC_NEAR)",
        "             & (observed != values))",
        "    kind = run.mf[todo]",
        f"    imm_cyc = np.array({tuple(c['IMMS'])!r}, dtype=np.int64)",
        f"    ind_cyc = np.array({tuple(c['INDS'])!r}, dtype=np.int64)",
        "    w_imm = wrong & (kind == 1)",
        "    w_ind = wrong & (kind == 2)",
        "    n_imm = int(np.count_nonzero(w_imm))",
        "    n_ind = int(np.count_nonzero(w_ind))",
        "    c_imm = int(imm_cyc[slot_of[w_imm]].sum()) if n_imm else 0",
        "    c_ind = int(ind_cyc[slot_of[w_ind]].sum()) if n_ind else 0",
        "    backend.charge(stats, PenaltyKind.MISFETCH_IMMEDIATE,",
        "                   n_imm, c_imm)",
        "    backend.charge(stats, PenaltyKind.MISFETCH_INDIRECT,",
        "                   n_ind, c_ind)",
        "    for k, v in zip(fin_k.tolist(), fin_v.tolist()):",
        f"        arrays[k // {c['ARRSZ']}]._targets[k % {c['ARRSZ']}] = v",
        "    return stats",
    ])
    return lines


_GENERATORS = {
    "single": _single_source,
    "dual": _dual_source,
    "multi": _multi_source,
    "two_ahead": _two_ahead_source,
}


def generate_source(spec: KernelSpec) -> str:
    """Render the specialized kernel source for one spec cell."""
    generator = _GENERATORS.get(spec.kind)
    if generator is None:
        raise ValueError(f"unknown kernel kind: {spec.kind!r}")
    lines = _header(spec) + generator(dict(spec.constants))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Loading: in-process memo + on-disk persistence
# ----------------------------------------------------------------------

#: Gate mode knob for generated kernels (off / warn / enforce).
GATE_ENV = "REPRO_KERNEL_GATE"


def gate_mode() -> str:
    """Resolve REPRO_KERNEL_GATE: 'off' | 'warn' | 'enforce'."""
    from ...envvars import read
    value = read(GATE_ENV)
    if value is None or not value.strip():
        return "enforce"
    mode = value.strip().lower()
    if mode not in ("off", "warn", "enforce"):
        raise ValueError(
            f"REPRO_KERNEL_GATE={value!r}: expected 'off', 'warn' "
            f"or 'enforce'")
    return mode


def _gate_source(source: str, digest: str, mode: str) -> bool:
    """Run the REP7xx lint gate on one kernel source.

    Returns True when the source may be compiled.  In enforce mode a
    dirty source raises KernelGateError (generation) — callers loading
    a *persisted* artifact catch it and regenerate, exactly like any
    other corrupt artifact.
    """
    from ...analysis.kernelgate import gate_generated_kernel
    gate_generated_kernel(source, digest, mode)
    return True


def _kernel_namespace() -> Dict[str, Any]:
    import numpy as np

    from ..penalties import PenaltyKind
    from ..select_table import DualSelectEntry
    from ..selection import SRC_NEAR
    from .compiled import _seed_combined, _seed_targets
    return {
        "np": np,
        "PenaltyKind": PenaltyKind,
        "SRC_NEAR": SRC_NEAR,
        "DualSelectEntry": DualSelectEntry,
        "seed_combined": _seed_combined,
        "seed_targets": _seed_targets,
    }


def _compile_source(source: str, filename: str) -> KernelFunc:
    """Exec one kernel source; KeyError when it defines no ``kernel``."""
    namespace = _kernel_namespace()
    code = compile(source, filename, "exec")
    exec(code, namespace)
    fn: KernelFunc = namespace["kernel"]
    return fn


def _persist(path: Path, source: str) -> None:
    """Best-effort atomic write; a read-only cache never breaks a run."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(source, encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        pass


class KernelLoader:
    """Loads generated kernels: memo, then disk, then generation.

    ``last_origin`` records where the most recent :meth:`load` found
    its kernel (``memo`` / ``disk`` / ``generated``) so tests can
    assert cross-process reuse of persisted artifacts.
    """

    def __init__(self, cache_root: Optional[Path] = None) -> None:
        self._memo: Dict[str, KernelFunc] = {}
        self._cache_root = cache_root
        self.last_origin: Optional[str] = None

    def kernel_dir(self) -> Optional[Path]:
        """Directory persisted kernels live in (None: cache disabled)."""
        if self._cache_root is not None:
            return self._cache_root
        from ...runtime.cache import cache_dir
        root = cache_dir()
        if root is None:
            return None
        return root / "compiled" / "kernels"

    def load(self, spec: KernelSpec) -> KernelFunc:
        digest = spec.digest()
        fn = self._memo.get(digest)
        if fn is not None:
            self.last_origin = "memo"
            return fn
        from ...analysis.kernelgate import KernelGateError
        mode = gate_mode()
        directory = self.kernel_dir()
        path = (directory / f"{spec.kind}-{digest}.py"
                if directory is not None else None)
        origin = "generated"
        if path is not None and path.exists():
            try:
                disk_source = path.read_text(encoding="utf-8")
                _gate_source(disk_source, digest, mode)
                fn = _compile_source(disk_source, str(path))
                origin = "disk"
            except (OSError, SyntaxError, KeyError, KernelGateError):
                fn = None  # corrupt artifact: fall through and regenerate
        if fn is None:
            source = generate_source(spec)
            # A dirty freshly-generated kernel is a template bug:
            # under enforce the gate raises here rather than letting
            # the unverified source exec.
            _gate_source(source, digest, mode)
            fn = _compile_source(
                source, str(path) if path is not None
                else f"<kernel {spec.kind}-{digest}>")
            origin = "generated"
            if path is not None:
                _persist(path, source)
        self._memo[digest] = fn
        self.last_origin = origin
        return fn
