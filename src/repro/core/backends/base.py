"""Kernel-backend ABI for the vectorized fetch engines.

A backend implements the narrow kernel contract the fast tier is built
from — counter-bank scan, walk resolution, selector decode, penalty
bulk-charge, and the keyed last-write replay that resolves select-table
and target-array aliasing — behind the existing ``FetchInput`` ->
``FetchStats`` boundary.  The four engines never see a backend: they
call ``repro.core.fast.run_*_fast``, which dispatches to
:func:`repro.core.backends.active_backend`, so new tiers slot in
without touching the engines.

:func:`replay_last_write` is the primitive that removes the fast
tier's remaining per-block Python loops.  Select tables and target
arrays are tag-less direct-mapped stores, so one engine run is a
time-ordered stream of (key, observe, maybe-write) events; the
vectorized form groups events by key with a stable argsort and
resolves each observation to the latest preceding write inside its key
segment — the same segmented-maximum idiom as
``kernels.stale_bit_windows``.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np
from numpy import typing as npt

IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

#: (observed, final_keys, final_values) of one replayed event stream.
ReplayResult = Tuple[IntArray, IntArray, IntArray]


def replay_last_write(keys: IntArray, values: IntArray,
                      writes: BoolArray, init: IntArray) -> ReplayResult:
    """Replay a keyed observe-then-maybe-write event stream.

    Event ``i`` (in time order) observes the state stored under
    ``keys[i]`` *before* the event, then — when ``writes[i]`` — stores
    ``values[i]`` there.  Returns the per-event observations plus the
    final state of every key that received at least one write event
    (``final_keys`` ascending).  A write event always counts, even when
    it stores the value already present: the scalar engines replace
    cold ``None`` entries with real objects on every write, and state
    parity requires mirroring that.
    """
    m = int(keys.shape[0])
    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    from ...predictors.evaluate import _grouping_order
    order = _grouping_order(keys)
    k_s = keys[order]
    w_s = writes[order]
    v_s = values[order]
    idx = np.arange(m, dtype=np.int64)
    seg_start = np.ones(m, dtype=bool)
    seg_start[1:] = k_s[1:] != k_s[:-1]
    # Index of each event's segment start (its key's first event).
    seg_first = np.maximum.accumulate(np.where(seg_start, idx, np.int64(0)))
    # Index of the latest write event at or before each position.
    wpos = np.where(w_s, idx, np.int64(-1))
    last_w = np.maximum.accumulate(wpos)
    prev = np.empty(m, dtype=np.int64)
    prev[0] = -1
    prev[1:] = last_w[:-1]
    # A preceding write is visible only when it falls inside the same
    # key segment; otherwise the event reads the seeded initial state.
    valid = prev >= seg_first
    observed_s = np.where(valid, v_s[np.maximum(prev, np.int64(0))],
                          init[k_s])
    observed = np.empty(m, dtype=np.int64)
    observed[order] = observed_s
    seg_end = np.ones(m, dtype=bool)
    seg_end[:-1] = seg_start[1:]
    written = seg_end & (last_w >= seg_first)
    final_keys = np.asarray(k_s[written], dtype=np.int64)
    final_values = np.asarray(v_s[np.maximum(last_w, np.int64(0))][written],
                              dtype=np.int64)
    return np.asarray(observed, dtype=np.int64), final_keys, final_values


class KernelBackend:
    """The kernel contract every ``REPRO_BACKEND`` tier implements.

    The four ``run_*`` entry points share the vectorized front half of
    ``repro.core.fast`` (counter scan, walk resolution, divergence
    charges, RAS replay); backends differ in how they execute the
    residual select-table / target-array replay.  The narrow helper
    methods exist so generated kernels (and future tiers) route every
    primitive through the backend object.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def available(self) -> bool:
        """True when this backend can run in the current interpreter."""
        return True

    # -- narrow kernel contract ----------------------------------------

    def scan_counters(self, *args: Any, **kwargs: Any) -> Any:
        """Counter-bank scan (see :func:`repro.core.kernels.scan_counters`)."""
        from ..kernels import scan_counters
        return scan_counters(*args, **kwargs)

    def resolve_walks(self, *args: Any, **kwargs: Any) -> Any:
        """Block-walk resolution (see :func:`repro.core.kernels.resolve_walks`)."""
        from ..kernels import resolve_walks
        return resolve_walks(*args, **kwargs)

    def decode_select_entry(self, width: int, sel: int, pay: int) -> Any:
        """Selector decode back into a ``SelectEntry``."""
        from ..fast import _decode_select_entry
        return _decode_select_entry(width, sel, pay)

    def charge(self, stats: Any, kind: Any, count: int,
               cycles: int) -> None:
        """Penalty bulk-charge (pre-summed events, no zero-count keys)."""
        from ..fast import _charge_bulk
        _charge_bulk(stats, kind, count, cycles)

    def replay(self, keys: IntArray, values: IntArray,
               writes: BoolArray, init: IntArray) -> ReplayResult:
        """Keyed last-write replay; see :func:`replay_last_write`."""
        return replay_last_write(keys, values, writes, init)

    # -- engine entry points --------------------------------------------

    def run_single(self, engine: Any, fetch_input: Any) -> Any:
        """Vectorized ``SingleBlockEngine.run``."""
        raise NotImplementedError

    def run_dual(self, engine: Any, fetch_input: Any) -> Any:
        """Vectorized ``DualBlockEngine.run``."""
        raise NotImplementedError

    def run_multi(self, engine: Any, fetch_input: Any) -> Any:
        """Vectorized ``MultiBlockEngine.run``."""
        raise NotImplementedError

    def run_two_ahead(self, engine: Any, fetch_input: Any) -> Any:
        """Vectorized ``TwoBlockAheadEngine.run``."""
        raise NotImplementedError
