"""Exec-compiled backend (``REPRO_BACKEND=compiled``).

Runs the shared :mod:`repro.core.fast` prep, then replaces the
reference serial residual with an exec-generated kernel specialized to
the engine's exact (geometry, predictor-config) cell — see
:mod:`repro.core.backends.codegen`.  The generated kernels resolve
select-table and target-array aliasing through the backend's keyed
last-write replay primitive instead of a per-block Python loop.

Shapes the templates do not specialize — the set-associative BTB
target variants, whose LRU stacks side-effect on every lookup — fall
back to the reference numpy residual after the shared prep, keeping
behaviour exact for every configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from .base import IntArray, KernelBackend
from .codegen import KernelLoader, KernelSpec


def _seed_targets(store: List[Optional[int]]) -> IntArray:
    """Encoded NLS target store; -1 marks cold slots (targets are >= 0)."""
    size = len(store)
    if store.count(None) == size:  # fresh array: skip the per-slot loop
        return np.full(size, -1, dtype=np.int64)
    return np.asarray([-1 if t is None else t for t in store],
                      dtype=np.int64)


def _seed_combined(width: int, payl: int, entries: Any) -> IntArray:
    """Select entries packed as ``sel * payl + pay`` (cold reads as 0)."""
    size = len(entries)
    if entries.count(None) == size:  # cold entries all encode to (0, 0)
        return np.zeros(size, dtype=np.int64)
    from .. import fast
    sels, pays = fast._seed_select_arrays(width, entries)
    return (np.asarray(sels, dtype=np.int64) * payl
            + np.asarray(pays, dtype=np.int64))


class CompiledKernelBackend(KernelBackend):
    """Shape-specialized exec-compiled kernels with exact fallback."""

    name = "compiled"

    def __init__(self) -> None:
        self.loader = KernelLoader()
        self._decode_memo: Dict[Any, Any] = {}

    def decode_select_entry(self, width: int, sel: int, pay: int) -> Any:
        """Memoized selector decode.

        Generated kernels decode one entry per written slot per run;
        the (width, sel, pay) space is tiny and entries are immutable
        records, so shared instances are safe and save the rebuild.
        """
        key = (width, sel, pay)
        entry = self._decode_memo.get(key)
        if entry is None:
            from ..fast import _decode_select_entry
            entry = _decode_select_entry(width, sel, pay)
            self._decode_memo[key] = entry
        return entry

    # -- engine entry points --------------------------------------------

    def run_single(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_single(engine, fetch_input)
        if run.n == 0:
            return stats
        spec = self._single_spec(engine, run)
        if spec is None:
            return fast._residual_single_numpy(engine, run, stats)
        return self.loader.load(spec)(self, engine, run, stats)

    def run_dual(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_dual(engine, fetch_input)
        if run.n == 0:
            return stats
        spec = self._dual_spec(engine, run)
        if spec is None:
            return fast._residual_dual_numpy(engine, run, stats)
        return self.loader.load(spec)(self, engine, run, stats)

    def run_multi(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_multi(engine, fetch_input)
        if run.n == 0:
            return stats
        return self.loader.load(self._multi_spec(engine, run))(
            self, engine, run, stats)

    def run_two_ahead(self, engine: Any, fetch_input: Any) -> Any:
        from .. import fast
        run, stats = fast._prep_two_ahead(engine, fetch_input)
        if run.n == 0:
            return stats
        spec = self._two_ahead_spec(engine, run)
        if spec is None:
            return fast._residual_two_ahead_numpy(engine, run, stats)
        return self.loader.load(spec)(self, engine, run, stats)

    # -- specialization cells --------------------------------------------

    def _single_spec(self, engine: Any, run: Any) -> Optional[KernelSpec]:
        from ...targets.nls import NLSTargetArray
        from ..penalties import PenaltyKind, SINGLE_SELECT, penalty_cycles
        targets = engine.targets
        if type(targets) is not NLSTargetArray:
            return None  # BlockBTB: LRU lookups side-effect, keep exact
        scheme = SINGLE_SELECT
        consts: Dict[str, Any] = {
            "LS": run.line_size,
            "NBE": targets.n_block_entries,
            "TLS": targets.line_size,
            "IMM": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_IMMEDIATE),
            "IND": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_INDIRECT),
        }
        return KernelSpec("single", tuple(sorted(consts.items())))

    def _dual_spec(self, engine: Any, run: Any) -> Optional[KernelSpec]:
        from ...targets.nls import DualNLSTargetArray
        from ..penalties import (DOUBLE_SELECT, PenaltyKind, SINGLE_SELECT,
                                 penalty_cycles)
        targets = engine.targets
        if type(targets) is not DualNLSTargetArray:
            return None  # dual BTB variant: keep the exact residual
        scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
        select = engine.select
        double = bool(engine.double)
        nbe = targets.first.n_block_entries
        tls = targets.first.line_size
        consts: Dict[str, Any] = {
            "DOUBLE": double,
            "W": run.width,
            "PAYL": 2 * run.width + 4,
            "LS": run.line_size,
            "NT": select.n_tables,
            "NE": select.n_entries,
            "MASK": select.n_entries - 1,
            "TOTAL": select.n_tables * select.n_entries,
            "MS1": (penalty_cycles(scheme, 1, PenaltyKind.MISSELECT)
                    if double else 0),
            "G1": (penalty_cycles(scheme, 1, PenaltyKind.GHR)
                   if double else 0),
            "MS2": penalty_cycles(scheme, 2, PenaltyKind.MISSELECT),
            "G2": penalty_cycles(scheme, 2, PenaltyKind.GHR),
            "NBE": nbe,
            "TLS": tls,
            "HALF": nbe * tls,
            "C11": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_IMMEDIATE),
            "C12": penalty_cycles(scheme, 2,
                                  PenaltyKind.MISFETCH_IMMEDIATE),
            "C21": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_INDIRECT),
            "C22": penalty_cycles(scheme, 2,
                                  PenaltyKind.MISFETCH_INDIRECT),
        }
        return KernelSpec("dual", tuple(sorted(consts.items())))

    def _multi_spec(self, engine: Any, run: Any) -> KernelSpec:
        from ..penalties import (DOUBLE_SELECT, PenaltyKind, SINGLE_SELECT,
                                 penalty_cycles_slot)
        scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
        double = bool(engine.double)
        group = engine.n
        n_tables = len(engine.selects)
        first = engine.targets._arrays[0]
        nbe = first.n_block_entries
        tls = first.line_size
        consts: Dict[str, Any] = {
            "DOUBLE": double,
            "G": group,
            "T": n_tables,
            "W": run.width,
            "PAYL": 2 * run.width + 4,
            "LS": run.line_size,
            "NBE": nbe,
            "TLS": tls,
            "ARRSZ": nbe * tls,
            "IMMS": tuple(
                penalty_cycles_slot(scheme, s,
                                    PenaltyKind.MISFETCH_IMMEDIATE)
                for s in range(1, group + 1)),
            "INDS": tuple(
                penalty_cycles_slot(scheme, s,
                                    PenaltyKind.MISFETCH_INDIRECT)
                for s in range(1, group + 1)),
        }
        if n_tables:
            select = engine.selects[0]
            # Table t serves blocks at group residue t (double: the
            # anchor's own table is t=0) fetched in slot t+1 / t+2.
            slots = tuple((t + 1 if double else t + 2)
                          for t in range(n_tables))
            consts.update({
                "NT": select.n_tables,
                "NE": select.n_entries,
                "MASK": select.n_entries - 1,
                "TOTAL": select.n_tables * select.n_entries,
                "MODS": tuple((t if double else t + 1)
                              for t in range(n_tables)),
                "MS": tuple(
                    penalty_cycles_slot(scheme, s, PenaltyKind.MISSELECT)
                    for s in slots),
                "GH": tuple(
                    penalty_cycles_slot(scheme, s, PenaltyKind.GHR)
                    for s in slots),
            })
        else:
            consts.update({"NT": 0, "NE": 0, "MASK": 0, "TOTAL": 0,
                           "MODS": (), "MS": (), "GH": ()})
        return KernelSpec("multi", tuple(sorted(consts.items())))

    def _two_ahead_spec(self, engine: Any,
                        run: Any) -> Optional[KernelSpec]:
        from ...targets.nls import DualNLSTargetArray
        from ..penalties import PenaltyKind, SINGLE_SELECT, penalty_cycles
        targets = engine.targets
        if type(targets) is not DualNLSTargetArray:
            return None
        scheme = SINGLE_SELECT
        nbe = targets.first.n_block_entries
        tls = targets.first.line_size
        consts: Dict[str, Any] = {
            "LS": run.line_size,
            "NBE": nbe,
            "TLS": tls,
            "HALF": nbe * tls,
            "C11": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_IMMEDIATE),
            "C12": penalty_cycles(scheme, 2,
                                  PenaltyKind.MISFETCH_IMMEDIATE),
            "C21": penalty_cycles(scheme, 1,
                                  PenaltyKind.MISFETCH_INDIRECT),
            "C22": penalty_cycles(scheme, 2,
                                  PenaltyKind.MISFETCH_INDIRECT),
        }
        return KernelSpec("two_ahead", tuple(sorted(consts.items())))
