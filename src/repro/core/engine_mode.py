"""The ``REPRO_ENGINE`` switch between scalar and vectorized engines.

Every cycle-accurate fetch engine has two implementations of the same
semantics:

* ``scalar`` — the reference block-at-a-time Python loops, kept as the
  readable ground truth;
* ``fast`` (default) — the batched kernels of :mod:`repro.core.kernels`
  driven by :mod:`repro.core.fast`, locked bit-exact against the scalar
  engines by the parity test suite.

The knob follows the other runtime environment variables: validated
eagerly by the CLI (a bad value exits 2 with an error naming the
variable) and overridable per invocation with ``--engine``.
"""

from __future__ import annotations

import os

#: Environment variable selecting the engine implementation.
ENGINE_ENV = "REPRO_ENGINE"

ENGINE_SCALAR = "scalar"
ENGINE_FAST = "fast"

#: Accepted values, in display order.
ENGINE_MODES = (ENGINE_SCALAR, ENGINE_FAST)


def engine_mode() -> str:
    """Selected engine implementation from ``REPRO_ENGINE``.

    Unset or empty defaults to ``fast``.  Anything other than ``scalar``
    or ``fast`` raises a :class:`ValueError` naming the variable.
    """
    raw = os.environ.get(ENGINE_ENV)
    if raw is None or not raw.strip():
        return ENGINE_FAST
    text = raw.strip().lower()
    if text in ENGINE_MODES:
        return text
    raise ValueError(
        f"{ENGINE_ENV} must be one of {'/'.join(ENGINE_MODES)}, "
        f"got {raw!r}")


def use_fast_engine() -> bool:
    """True when the vectorized engine core should run."""
    return engine_mode() == ENGINE_FAST
