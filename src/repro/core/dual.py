"""Dual-block fetch engine — Section 3's mechanism (Figures 2-5).

Two blocks are fetched per cycle.  Blocks pair up as (b1,b2), (b3,b4), ...
after a lone cold-start block b0.  Predictions anchor on the *current second
block* (b0, b2, ...): its BIT + blocked-PHT walk predicts the next first
block, and the select table — indexed identically (``GHR XOR block
address``) — predicts the next second block ("predict our prediction").

Selection schemes:

* **single** (Figure 2/3): the first block of each pair is predicted from
  BIT + PHT, only the second comes from the select table.  Misselect and
  GHR-misprediction penalties hit the second block only.
* **double** (Figure 4/5): both selections come from a dual select table,
  eliminating BIT storage but adding a verification penalty on the first
  block and deepening the second's (Table 3's double-select columns).

The return-address stack is architectural and trained block-by-block in
fetch order, which reproduces exactly the call/return bypassing of Section
3.1 (a call in the first block bypasses its return address to the second;
a return in the first block exposes the next-older entry).
"""

from __future__ import annotations

from ..icache.banks import blocks_conflict
from ..predictors.blocked import BlockedPHT
from ..predictors.ghr import GlobalHistory
from ..targets.btb import DualBTBTargetArray
from ..targets.nls import DualNLSTargetArray
from ..targets.ras import ReturnAddressStack
from .config import EngineConfig, FetchInput, TARGET_BTB
from .engine_mode import use_fast_engine
from .engine_common import (
    ActualBlock,
    BlockCursor,
    EARLY_TAKEN,
    K_CALL,
    K_HALT,
    K_RETURN,
    LATE_TAKEN,
    classify_divergence,
    target_misfetch_kind,
)
from .penalties import DOUBLE_SELECT, PenaltyKind, SINGLE_SELECT, \
    penalty_cycles
from .select_table import DualSelectEntry, DualSelectTable, SelectEntry, \
    SelectTable
from .selection import BlockPrediction, CodeWindowCache, SRC_NEAR, walk_block
from .stats import FetchStats


class DualBlockEngine:
    """Fetches two blocks per cycle with select-table second-block
    prediction."""

    def __init__(self, config: EngineConfig) -> None:
        if config.bit_entries is not None:
            raise ValueError(
                "the dual-block engine assumes BIT information is stored in "
                "the instruction cache (paper Section 4.2); bit_entries is "
                "only meaningful for the single-block engine")
        self.config = config
        geometry = config.geometry
        self.pht = BlockedPHT(config.history_length, geometry.block_width,
                              config.n_pht_tables)
        if config.target_kind == TARGET_BTB:
            self.targets = DualBTBTargetArray(config.target_entries,
                                              geometry.line_size,
                                              config.btb_associativity)
        else:
            self.targets = DualNLSTargetArray(config.target_entries,
                                              geometry.line_size)
        self.ras = ReturnAddressStack(config.ras_size)
        self.double = config.selection == DOUBLE_SELECT
        if self.double:
            self.select = DualSelectTable(config.history_length,
                                          config.n_select_tables,
                                          geometry.line_size)
        else:
            self.select = SelectTable(config.history_length,
                                      config.n_select_tables,
                                      geometry.line_size)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, fetch_input: FetchInput,
            record_timeline: bool = False) -> FetchStats:
        """Replay the block stream two blocks per cycle.

        With ``record_timeline`` the returned stats carry a per-cycle
        delivered-instruction timeline (stall cycles deliver 0) for
        :func:`repro.metrics.issue.simulate_issue`.  Stalls are emitted
        before the next delivery; pair alignment follows the Figure 3
        schedule (b0 alone, then (b1,b2), (b3,b4), ...).
        """
        config = self.config
        # Timeline recording needs per-cycle delivery interleaving, which
        # only the reference loop tracks.
        if not record_timeline and use_fast_engine():
            from .fast import run_dual_fast
            return run_dual_fast(self, fetch_input)
        geometry = config.geometry
        if geometry != fetch_input.geometry:
            raise ValueError("fetch input was segmented under a different "
                             "cache geometry")
        codes = CodeWindowCache(fetch_input.static, geometry,
                                config.near_block)
        self._static_targets = fetch_input.static.direct_target
        cursor = BlockCursor(fetch_input.blocks)
        trace = fetch_input.trace
        ghr = GlobalHistory(config.history_length)
        pht = self.pht
        line_size = geometry.line_size
        scheme = DOUBLE_SELECT if self.double else SINGLE_SELECT
        n_blocks = cursor.n_blocks

        stats = FetchStats(
            n_blocks=n_blocks,
            n_instructions=trace.n_instructions,
            n_branches=trace.n_branches,
            n_cond=trace.n_cond,
            base_cycles=1 + (n_blocks - 1 + 1) // 2,
        )
        timeline = [] if record_timeline else None
        carry = 0              # pair's first (odd) block, pending delivery
        flushed = 0            # penalty cycles already emitted as stalls

        def emit_delivery(delivered: int) -> None:
            nonlocal flushed
            timeline.extend([0] * (stats.penalty_cycles - flushed))
            flushed = stats.penalty_cycles
            timeline.append(delivered)

        for i in range(0, n_blocks, 2):
            even = cursor.block(i)
            limit = geometry.block_limit(even.start)
            anchor_line = even.start // line_size
            # History index at block-width granularity: an extended line
            # holds two blocks whose PHT/ST entries must stay distinct
            # (positions wrap modulo B, so line-granular indexing would
            # alias them destructively).
            index = pht.index(ghr.value, even.start // geometry.block_width)
            window = codes.window(even.start, limit)
            walk_even = walk_block(window, even.start, limit, pht, index)

            if self.double:
                entry: DualSelectEntry = self.select.read(index, even.start)
                self._verify_selection(entry.first, walk_even, stats,
                                       scheme, block_slot=1)

            self._analyze(walk_even, even, stats, scheme, block_slot=1,
                          which=1, anchor_line=anchor_line)
            self._train(walk_even, even, index, ghr, which=1,
                        anchor_line=anchor_line)

            if timeline is not None:
                # Block i completes the pair (i-1, i); b0 ships alone.
                emit_delivery(carry + even.n_instr)
                carry = 0

            if i + 1 >= n_blocks:
                break
            odd = cursor.block(i + 1)
            odd_limit = geometry.block_limit(odd.start)
            odd_index = pht.index(ghr.value,
                                  odd.start // geometry.block_width)
            odd_window = codes.window(odd.start, odd_limit)
            walk_odd = walk_block(odd_window, odd.start, odd_limit, pht,
                                  odd_index)

            if self.double:
                self._verify_selection(entry.second, walk_odd, stats,
                                       scheme, block_slot=2)
                self.select.write(index, even.start, DualSelectEntry(
                    SelectEntry(walk_even.selector, walk_even.ghr_payload),
                    SelectEntry(walk_odd.selector, walk_odd.ghr_payload)))
            else:
                stored: SelectEntry = self.select.read(index, even.start)
                self._verify_selection(stored, walk_odd, stats, scheme,
                                       block_slot=2)
                self.select.write(index, even.start, SelectEntry(
                    walk_odd.selector, walk_odd.ghr_payload))

            self._analyze(walk_odd, odd, stats, scheme, block_slot=2,
                          which=2, anchor_line=anchor_line)
            self._train(walk_odd, odd, odd_index, ghr, which=2,
                        anchor_line=anchor_line)

            # Bank conflicts hit the pair fetched together: (i+1, i+2).
            if i + 2 < n_blocks:
                nxt = cursor.block(i + 2)
                first_lines = geometry.lines_for_block(odd.start,
                                                       odd.n_instr)
                second_lines = geometry.lines_for_block(nxt.start,
                                                        nxt.n_instr)
                if blocks_conflict(geometry, first_lines, second_lines):
                    stats.charge(PenaltyKind.BANK_CONFLICT, penalty_cycles(
                        scheme, 2, PenaltyKind.BANK_CONFLICT))

            if timeline is not None:
                carry = odd.n_instr

        if timeline is not None:
            if carry:
                emit_delivery(carry)  # trailing odd block ships alone
            timeline.extend([0] * (stats.penalty_cycles - flushed))
            stats.timeline = timeline
        return stats

    # ------------------------------------------------------------------
    # Select-table verification (misselect / GHR penalties)
    # ------------------------------------------------------------------

    def _verify_selection(self, stored: SelectEntry, walk: BlockPrediction,
                          stats: FetchStats, scheme: str,
                          block_slot: int) -> None:
        if stored.selector != walk.selector:
            stats.charge(PenaltyKind.MISSELECT, penalty_cycles(
                scheme, block_slot, PenaltyKind.MISSELECT))
        elif stored.outcomes != walk.ghr_payload:
            stats.charge(PenaltyKind.GHR, penalty_cycles(
                scheme, block_slot, PenaltyKind.GHR))

    # ------------------------------------------------------------------
    # Prediction analysis (Table 3 columns by block slot)
    # ------------------------------------------------------------------

    def _analyze(self, pred: BlockPrediction, actual: ActualBlock,
                 stats: FetchStats, scheme: str, block_slot: int,
                 which: int, anchor_line: int) -> None:
        if actual.exit_kind == K_HALT:
            return
        outcome, offset = classify_divergence(pred, actual)
        if outcome == EARLY_TAKEN or outcome == LATE_TAKEN:
            cycles = penalty_cycles(scheme, block_slot, PenaltyKind.COND)
            if block_slot == 2:
                cycles += 1  # "a misprediction on the second block always
                #               requires another cycle"
            elif outcome == EARLY_TAKEN and actual.n_instr - 1 - offset > 0:
                cycles += 1  # re-fetch the remaining valid instructions
            if outcome == LATE_TAKEN and \
                    not self.config.track_not_taken_targets:
                cycles += 1  # re-read the target array after resolution
            stats.charge(PenaltyKind.COND, cycles)
            return
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            if self.ras.peek(0) != actual.exit_target:
                stats.charge(PenaltyKind.RETURN, penalty_cycles(
                    scheme, block_slot, PenaltyKind.RETURN))
            return
        if pred.source == SRC_NEAR:
            return
        direct = int(self._static_targets[exit_pc]) \
            if exit_pc < len(self._static_targets) else -1
        line_size = self.config.geometry.line_size
        predicted = self.targets.lookup(which, anchor_line,
                                        exit_pc % line_size)
        if predicted != actual.exit_target:
            kind = target_misfetch_kind(exit_kind, direct)
            if kind is not None:
                stats.charge(kind, penalty_cycles(scheme, block_slot, kind))

    # ------------------------------------------------------------------
    # Table training
    # ------------------------------------------------------------------

    def _train(self, pred: BlockPrediction, actual: ActualBlock,
               pht_base: int, ghr: GlobalHistory, which: int,
               anchor_line: int) -> None:
        pht = self.pht
        for offset, taken, pc in actual.conds:
            pht.update(pht_base, pht.position(pc), taken)
        if actual.conds:
            ghr.shift_in_block(actual.outcomes)
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            self.ras.pop()
            return
        if exit_kind == K_CALL:
            self.ras.push(exit_pc + 1)
        near_exit = (pred.source == SRC_NEAR
                     and pred.exit_offset == actual.exit_offset)
        if not near_exit:
            line_size = self.config.geometry.line_size
            self.targets.update(which, anchor_line, exit_pc % line_size,
                                actual.exit_target)
