"""Two-block-ahead baseline (Seznec, Jourdan, Sainrat & Michaud [8]).

The paper's Section 1 discusses the ASPLOS'96 multiple-block-ahead
predictor: "their idea is to always use the current instruction block
information to predict the block following the next instruction block.
Its accuracy is as good as a single block fetching and requires little
additional storage cost.  The major drawback ... is that the prediction
for the second block is dependent on the prediction from the first block
(the tag-matching is serialized).  Our scheme, however, is able to
predict multiple blocks in parallel without such a dependency."

Functional model used here: a dual-block fetcher in which **every**
block's exit is predicted by a full BIT+PHT walk (no select table — hence
no misselect or GHR-payload penalties), but the pattern-history index for
block ``j`` is formed from the *previous* block's address and the GHR as
it stood before that block — the "ahead" indexing that lets the
prediction start early.  Block contents (BIT codes) are taken from the
block itself, idealising the part of the scheme the authors realise with
per-entry stored predictions; what the model preserves is the accuracy
structure (full PHT, slightly stale history) and the serial dependency,
exposed as a configurable ``serialization_penalty`` charged per fetched
pair (0 = ignore timing, 1 = one bubble per pair when cycle time cannot
absorb the serialized tag match).
"""

from __future__ import annotations

from ..icache.banks import blocks_conflict
from ..predictors.blocked import BlockedPHT
from ..predictors.ghr import GlobalHistory
from ..targets.nls import DualNLSTargetArray
from ..targets.ras import ReturnAddressStack
from .config import EngineConfig, FetchInput, TARGET_NLS
from .engine_mode import use_fast_engine
from .engine_common import (
    BlockCursor,
    EARLY_TAKEN,
    K_CALL,
    K_HALT,
    K_RETURN,
    LATE_TAKEN,
    classify_divergence,
    target_misfetch_kind,
)
from .penalties import PenaltyKind, SINGLE_SELECT, penalty_cycles
from .selection import CodeWindowCache, SRC_NEAR, walk_block
from .stats import FetchStats


class TwoBlockAheadEngine:
    """Dual-block fetching with block-ahead indexed predictions."""

    def __init__(self, config: EngineConfig,
                 serialization_penalty: int = 0) -> None:
        if config.target_kind != TARGET_NLS:
            raise ValueError("the two-block-ahead model uses NLS arrays")
        if serialization_penalty < 0:
            raise ValueError("serialization_penalty must be >= 0")
        self.config = config
        self.serialization_penalty = serialization_penalty
        geometry = config.geometry
        self.pht = BlockedPHT(config.history_length, geometry.block_width,
                              config.n_pht_tables)
        self.targets = DualNLSTargetArray(config.target_entries,
                                          geometry.line_size)
        self.ras = ReturnAddressStack(config.ras_size)

    def run(self, fetch_input: FetchInput) -> FetchStats:
        """Replay the block stream with block-ahead predictions."""
        config = self.config
        if use_fast_engine():
            from .fast import run_two_ahead_fast
            return run_two_ahead_fast(self, fetch_input)
        geometry = config.geometry
        if geometry != fetch_input.geometry:
            raise ValueError("fetch input was segmented under a different "
                             "cache geometry")
        codes = CodeWindowCache(fetch_input.static, geometry,
                                config.near_block)
        self._static_targets = fetch_input.static.direct_target
        cursor = BlockCursor(fetch_input.blocks)
        trace = fetch_input.trace
        ghr = GlobalHistory(config.history_length)
        pht = self.pht
        n_blocks = cursor.n_blocks

        stats = FetchStats(
            n_blocks=n_blocks,
            n_instructions=trace.n_instructions,
            n_branches=trace.n_branches,
            n_cond=trace.n_cond,
            base_cycles=1 + n_blocks // 2,
        )

        # "Ahead" state: the index context of the previous block.
        prev_ghr = ghr.value
        prev_addr = cursor.block(0).start if n_blocks else 0

        for i in range(n_blocks):
            blk = cursor.block(i)
            slot = 1 if i % 2 == 1 else 2  # pairs are (odd, even)
            limit = geometry.block_limit(blk.start)
            window = codes.window(blk.start, limit)
            # Block-ahead index: previous block's address + its pre-GHR.
            index = pht.index(prev_ghr,
                              prev_addr // geometry.block_width)
            walk = walk_block(window, blk.start, limit, pht, index)

            self._analyze(walk, blk, stats, slot,
                          anchor_line=prev_addr // geometry.line_size,
                          which=1 if slot == 1 else 2)

            # Train at the same ahead index the prediction used.
            for offset, taken, pc in blk.conds:
                pht.update(index, pht.position(pc), taken)
            self._train_targets(walk, blk,
                                anchor_line=prev_addr // geometry.line_size,
                                which=1 if slot == 1 else 2)

            # Advance the ahead context.
            prev_ghr = ghr.value
            prev_addr = blk.start
            if blk.conds:
                ghr.shift_in_block(blk.outcomes)

            # Serialization: the second block's tag-match waits on the
            # first's prediction (the drawback the paper highlights).
            if slot == 2 and i >= 2 and self.serialization_penalty:
                stats.charge(PenaltyKind.MISSELECT,
                             self.serialization_penalty)

            # Bank conflicts between the pair's blocks.
            if slot == 1 and i + 1 < n_blocks:
                nxt = cursor.block(i + 1)
                if blocks_conflict(
                        geometry,
                        geometry.lines_for_block(blk.start, blk.n_instr),
                        geometry.lines_for_block(nxt.start, nxt.n_instr)):
                    stats.charge(PenaltyKind.BANK_CONFLICT, penalty_cycles(
                        SINGLE_SELECT, 2, PenaltyKind.BANK_CONFLICT))

        return stats

    # ------------------------------------------------------------------

    def _analyze(self, pred, actual, stats, slot, anchor_line, which):
        if actual.exit_kind == K_HALT:
            return
        outcome, offset = classify_divergence(pred, actual)
        if outcome == EARLY_TAKEN or outcome == LATE_TAKEN:
            cycles = penalty_cycles(SINGLE_SELECT, slot, PenaltyKind.COND)
            if slot == 2:
                cycles += 1
            elif outcome == EARLY_TAKEN and actual.n_instr - 1 - offset > 0:
                cycles += 1
            stats.charge(PenaltyKind.COND, cycles)
            return
        if not actual.has_taken_exit:
            return
        if actual.exit_kind == K_RETURN:
            if self.ras.peek(0) != actual.exit_target:
                stats.charge(PenaltyKind.RETURN, penalty_cycles(
                    SINGLE_SELECT, slot, PenaltyKind.RETURN))
            return
        if pred.source == SRC_NEAR:
            return
        exit_pc = actual.exit_pc
        direct = int(self._static_targets[exit_pc]) \
            if exit_pc < len(self._static_targets) else -1
        line_size = self.config.geometry.line_size
        predicted = self.targets.lookup(which, anchor_line,
                                        exit_pc % line_size)
        if predicted != actual.exit_target:
            kind = target_misfetch_kind(actual.exit_kind, direct)
            if kind is not None:
                stats.charge(kind, penalty_cycles(SINGLE_SELECT, slot,
                                                  kind))

    def _train_targets(self, pred, actual, anchor_line, which):
        if not actual.has_taken_exit:
            return
        exit_kind = actual.exit_kind
        exit_pc = actual.exit_pc
        if exit_kind == K_RETURN:
            self.ras.pop()
            return
        if exit_kind == K_CALL:
            self.ras.push(exit_pc + 1)
        near_exit = (pred.source == SRC_NEAR
                     and pred.exit_offset == actual.exit_offset)
        if not near_exit:
            line_size = self.config.geometry.line_size
            self.targets.update(which, anchor_line, exit_pc % line_size,
                                actual.exit_target)
