"""Vectorized fetch-engine runs (``REPRO_ENGINE=fast``).

Each ``run_*_fast`` function replays one engine's whole block stream
with the batched kernels of :mod:`repro.core.kernels`, falling back to
plain Python only at true serialization points: select-table and
target-array state (aliasing reads depend on earlier writes) and the
return-address stack.  Every number charged — and every piece of
predictor state left behind (PHT counters, select tables, target
arrays, RAS, BIT table) — is bit-identical to the scalar engines,
which ``tests/core/test_engine_parity.py`` locks down.

The scalar loops in ``single.py``/``dual.py``/``multi.py``/
``two_ahead.py`` remain the readable ground truth; the engines
dispatch here based on :func:`repro.core.engine_mode.use_fast_engine`.

Since the backend tier (``REPRO_BACKEND``, :mod:`repro.core.backends`)
each run is split into a backend-shared ``_prep_*`` front half (counter
scan, divergence charges, RAS replay — everything vectorizable without
aliasing state) and a per-backend residual that replays the
select-table and target-array event streams: ``_residual_*_numpy``
below is the reference serial form, the ``compiled`` backend replaces
it with exec-generated keyed-replay kernels.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..icache.geometry import SELF_ALIGNED
from ..predictors.evaluate import packed_history
from ..predictors.ghr import BlockOutcomes
from ..targets.bit import BitCode
from .engine_common import K_CALL, K_COND, K_INDIRECT, K_JUMP, K_RETURN
from .kernels import (
    CODE_COND_LONG,
    CompiledBlocks,
    WalkArrays,
    compile_fetch_input,
    decode_selector,
    encode_selector,
    pair_conflicts,
    resolve_walks,
    scan_counters,
    stale_bit_windows,
)
from .penalties import (
    DOUBLE_SELECT,
    PenaltyKind,
    SINGLE_SELECT,
    penalty_cycles,
    penalty_cycles_slot,
)
from .select_table import DualSelectEntry, SelectEntry
from .selection import SRC_NEAR
from .stats import FetchStats

_GEOMETRY_ERROR = ("fetch input was segmented under a different "
                   "cache geometry")


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _charge_bulk(stats: FetchStats, kind: PenaltyKind, count: int,
                 cycles: int) -> None:
    """Fold ``count`` pre-summed events into the stats dicts.

    Matches ``count`` scalar ``charge`` calls; like them, it never
    creates a key for categories that did not occur.
    """
    if count:
        stats.event_counts[kind] = stats.event_counts.get(kind, 0) + count
        stats.event_cycles[kind] = (stats.event_cycles.get(kind, 0)
                                    + cycles)


class _Run:
    """Per-run bundle: compiled arrays, resolved walks, actuals."""

    def __init__(self, engine, fetch_input, ahead: bool = False) -> None:
        config = engine.config
        geometry = config.geometry
        if geometry != fetch_input.geometry:
            raise ValueError(_GEOMETRY_ERROR)
        self.config = config
        self.geometry = geometry
        self.width = geometry.block_width
        self.line_size = geometry.line_size
        self.pht = engine.pht
        self.compiled: CompiledBlocks = compile_fetch_input(
            fetch_input, config.near_block)
        self.n = self.compiled.n_blocks
        self.trace = fetch_input.trace
        self.ahead = ahead
        self.walk: WalkArrays = None  # set by resolve()
        self.stale_walk = None
        self.stale = None
        self.match = None    # divergence masks + residual inputs,
        self.near_ok = None  # populated by the engine preps for the
        self.mf = None       # backend residual kernels

    # -- PHT base indices ------------------------------------------------

    def pht_bases(self) -> np.ndarray:
        """Flat PHT entry base of every block (gshare over block addr).

        With ``ahead`` indexing (two-block-ahead), block ``i`` indexes
        through block ``i-1``'s address and pre-block GHR.
        """
        compiled = self.compiled
        pht = self.pht
        packed = packed_history(compiled.cond_taken,
                                self.config.history_length)
        if self.ahead:
            prev = np.concatenate([np.zeros(1, dtype=np.int64),
                                   np.arange(self.n - 1, dtype=np.int64)])
            self.anchor_start = compiled.start[prev]
        else:
            prev = np.arange(self.n, dtype=np.int64)
            self.anchor_start = compiled.start
        ghr_vals = packed[compiled.conds_before[prev]]
        addr = self.anchor_start // self.width
        entry = (ghr_vals ^ addr) & pht.mask
        return (addr % pht.n_tables * pht.n_entries + entry) * pht.block_width

    # -- counter scan + walks -------------------------------------------

    def resolve(self, bit_table=None) -> None:
        """Resolve every PHT read, walk every block, train, write back.

        With ``bit_table`` (single engine, Figure 7) the stale windows
        are resolved in the same scan and ``self.stale_walk`` is set.
        """
        compiled = self.compiled
        width = self.width
        pht = self.pht
        self.base = self.pht_bases()

        rb, cb = np.nonzero(compiled.window >= CODE_COND_LONG)
        read_blocks = rb
        read_slots = self.base[rb] + (compiled.start[rb] + cb) % width
        n_true = len(rb)
        srb = scb = None
        if bit_table is not None:
            init_lines = np.array(
                [-1 if line is None else line for line in bit_table._lines],
                dtype=np.int64)
            init_codes = np.zeros((bit_table.n_entries, self.line_size),
                                  dtype=np.uint8)
            for i, stored in enumerate(bit_table._codes):
                if stored is not None:
                    init_codes[i] = [int(code) for code in stored]
            self.stale = stale_bit_windows(
                compiled, self.line_size, bit_table.n_entries, width,
                init_lines, init_codes)
            srb, scb = np.nonzero(self.stale.window >= CODE_COND_LONG)
            read_blocks = np.concatenate([rb, srb])
            read_slots = np.concatenate(
                [read_slots,
                 self.base[srb] + (compiled.start[srb] + scb) % width])

        write_slots = self.base[compiled.cond_block] + compiled.cond_pos
        counters = np.asarray(pht._counters, dtype=np.int64)
        preds, final_slots, final_states = scan_counters(
            counters, read_blocks, read_slots, compiled.cond_block,
            write_slots, compiled.cond_taken)

        pred_mat = np.zeros(compiled.window.shape, dtype=bool)
        pred_mat[rb, cb] = preds[:n_true]
        self.walk = resolve_walks(compiled.window, width, pred_mat)
        if bit_table is not None:
            stale_mat = np.zeros(compiled.window.shape, dtype=bool)
            stale_mat[srb, scb] = preds[n_true:]
            self.stale_walk = resolve_walks(self.stale.window, width,
                                            stale_mat)

        store = pht._counters
        for slot, state in zip(final_slots.tolist(), final_states.tolist()):
            store[slot] = state

    # -- divergence classes ---------------------------------------------

    def classify(self):
        """(match, early, late) masks; halt blocks are never charged."""
        p = self.walk.pred_exit
        act = self.compiled.act_exit
        live = ~self.compiled.is_halt
        return p == act, (p < act) & live, (p > act) & live

    def cond_charges(self, early, late, slot_arr, base_arr,
                     slot2_extra, late_extra: bool):
        """COND count/cycles per the engines' shared footnote rules.

        ``slot2_extra`` marks blocks that always pay +1 (second-slot
        re-fetch); first-slot EARLY blocks pay +1 when valid
        instructions remained; ``late_extra`` adds +1 on LATE when
        not-taken targets are untracked.
        """
        charged = early | late
        remaining = (self.compiled.n_instr - 1 - self.walk.pred_exit) > 0
        cycles = base_arr[slot_arr] + slot2_extra.astype(np.int64)
        cycles += (~slot2_extra) & early & remaining
        if late_extra:
            cycles += late
        count = int(np.count_nonzero(charged))
        total = int(cycles[charged].sum()) if count else 0
        return count, total

    # -- RAS replay ------------------------------------------------------

    def replay_ras(self, ras) -> np.ndarray:
        """Drive the engine's RAS through the run's call/return exits.

        Returns each return-exit block's top-of-stack at its analysis
        point (-1 encodes an empty stack, which never matches a target).
        """
        compiled = self.compiled
        is_ret = compiled.has_exit & (compiled.exit_kind == K_RETURN)
        is_call = compiled.has_exit & (compiled.exit_kind == K_CALL)
        self.is_ret = is_ret
        peeks = np.full(self.n, -1, dtype=np.int64)
        exit_pc = compiled.exit_pc.tolist()
        ret_flags = is_ret.tolist()
        for b in np.nonzero(is_ret | is_call)[0].tolist():
            if ret_flags[b]:
                top = ras.peek(0)
                if top is not None:
                    peeks[b] = top
                ras.pop()
            else:
                ras.push(exit_pc[b] + 1)
        return peeks

    # -- misfetch kinds --------------------------------------------------

    def misfetch_kinds(self) -> np.ndarray:
        """1 = immediate, 2 = indirect, 0 = none (returns excluded)."""
        compiled = self.compiled
        kind = compiled.exit_kind
        mf = np.zeros(self.n, dtype=np.uint8)
        mf[compiled.has_exit & (kind == K_COND)] = 1
        jump_call = compiled.has_exit & ((kind == K_JUMP)
                                         | (kind == K_CALL))
        mf[jump_call & (compiled.exit_direct >= 0)] = 1
        mf[jump_call & (compiled.exit_direct < 0)] = 2
        mf[compiled.has_exit & (kind == K_INDIRECT)] = 2
        return mf


def _empty_stats(engine_input_trace, n_blocks: int,
                 base_cycles: int) -> FetchStats:
    return FetchStats(
        n_blocks=n_blocks,
        n_instructions=engine_input_trace.n_instructions,
        n_branches=engine_input_trace.n_branches,
        n_cond=engine_input_trace.n_cond,
        base_cycles=base_cycles,
    )


def _line_codes_tuple(compiled: CompiledBlocks, line: int,
                      line_size: int):
    """True BIT codes of one full line (BIT-table write-back)."""
    coa = compiled.code_of_addr
    n_static = len(coa)
    base = line * line_size
    return tuple(
        BitCode(int(coa[addr])) if addr < n_static else BitCode.NONBRANCH
        for addr in range(base, base + line_size))


# ----------------------------------------------------------------------
# Single-block engine
# ----------------------------------------------------------------------

def run_single_fast(engine, fetch_input) -> FetchStats:
    """Vectorized :meth:`SingleBlockEngine.run` (no recovery tracking).

    Dispatches to the kernel backend selected by ``REPRO_BACKEND``
    (see :mod:`repro.core.backends`).
    """
    from .backends import active_backend
    return active_backend().run_single(engine, fetch_input)


def _prep_single(engine, fetch_input) -> tuple:
    """Backend-shared front half of the single-block run.

    Runs every vectorized phase (counter scan, BIT handling, COND and
    RETURN charges, RAS replay) and all engine-state mutation *except*
    the target array, then returns ``(run, stats)`` with ``run.match``
    / ``run.near_ok`` / ``run.mf`` populated for the residual replay
    (``run.match`` stays ``None`` when ``run.n == 0``).
    """
    run = _Run(engine, fetch_input)
    compiled = run.compiled
    n = run.n
    stats = _empty_stats(run.trace, n, base_cycles=n)
    run.match = None
    if n == 0:
        return run, stats
    scheme = SINGLE_SELECT
    run.resolve(bit_table=engine.bit_table)
    walk = run.walk

    # Separate BIT table: stale-walk mismatches, counters and state.
    if engine.bit_table is not None:
        mismatch = (run.stale_walk.sel != walk.sel) \
            | (run.stale_walk.pay != walk.pay)
        count = int(np.count_nonzero(mismatch))
        _charge_bulk(stats, PenaltyKind.BIT, count,
                     count * penalty_cycles(scheme, 1, PenaltyKind.BIT))
        bit = engine.bit_table
        bit.accesses += run.stale.accesses
        bit.stale_hits += run.stale.stale_hits
        for slot, line in zip(run.stale.final_slots.tolist(),
                              run.stale.final_lines.tolist()):
            bit._lines[slot] = line
            bit._codes[slot] = _line_codes_tuple(compiled, line,
                                                 run.line_size)

    match, early, late = run.classify()
    slot_arr = np.zeros(n, dtype=np.int64)
    base_arr = np.array([penalty_cycles(scheme, 1, PenaltyKind.COND)],
                        dtype=np.int64)
    count, cycles = run.cond_charges(
        early, late, slot_arr, base_arr,
        slot2_extra=np.zeros(n, dtype=bool),
        late_extra=not run.config.track_not_taken_targets)
    _charge_bulk(stats, PenaltyKind.COND, count, cycles)

    peeks = run.replay_ras(engine.ras)
    ret_bad = match & run.is_ret & (peeks != compiled.exit_target)
    count = int(np.count_nonzero(ret_bad))
    _charge_bulk(stats, PenaltyKind.RETURN, count,
                 count * penalty_cycles(scheme, 1, PenaltyKind.RETURN))

    run.match = match
    run.near_ok = (walk.src == SRC_NEAR) \
        & (walk.pred_exit == compiled.act_exit)
    run.mf = run.misfetch_kinds()
    return run, stats


def _residual_single_numpy(engine, run, stats) -> FetchStats:
    """Reference serial residual: the tag-less/LRU target array."""
    compiled = run.compiled
    walk = run.walk
    scheme = SINGLE_SELECT
    mf_cycles = (0, penalty_cycles(scheme, 1,
                                   PenaltyKind.MISFETCH_IMMEDIATE),
                 penalty_cycles(scheme, 1, PenaltyKind.MISFETCH_INDIRECT))
    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]
    match_l = run.match.tolist()
    src_l = walk.src.tolist()
    near_l = run.near_ok.tolist()
    mf_l = run.mf.tolist()
    exit_pc_l = compiled.exit_pc.tolist()
    target_l = compiled.exit_target.tolist()
    line_size = run.line_size
    lookup = engine.targets.lookup
    update = engine.targets.update
    imm = ind = imm_cyc = ind_cyc = 0
    for b in todo.tolist():
        exit_pc = exit_pc_l[b]
        line = exit_pc // line_size
        position = exit_pc % line_size
        target = target_l[b]
        if match_l[b] and src_l[b] != SRC_NEAR:
            if lookup(line, position) != target:
                kind = mf_l[b]
                if kind == 1:
                    imm += 1
                    imm_cyc += mf_cycles[1]
                elif kind == 2:
                    ind += 1
                    ind_cyc += mf_cycles[2]
        if not near_l[b]:
            update(line, position, target)
    _charge_bulk(stats, PenaltyKind.MISFETCH_IMMEDIATE, imm, imm_cyc)
    _charge_bulk(stats, PenaltyKind.MISFETCH_INDIRECT, ind, ind_cyc)
    return stats


# ----------------------------------------------------------------------
# Select-table encoding shared by the dual/multi fast paths
# ----------------------------------------------------------------------

def _encode_select_entry(width: int, entry: SelectEntry):
    sel = encode_selector(width, *entry.selector)
    pay = entry.outcomes.n_not_taken * 2 + int(entry.outcomes.ends_taken)
    return sel, pay


def _decode_select_entry(width: int, sel: int, pay: int) -> SelectEntry:
    return SelectEntry(decode_selector(width, sel),
                       BlockOutcomes(pay // 2, bool(pay % 2)))


def _seed_select_arrays(width: int, entries) -> (List[int], List[int]):
    """Encoded (selector, payload) arrays mirroring a select table.

    Cold entries encode to ``(0, 0)`` — exactly the fall-through
    default a cold read returns — so reads need no presence check.
    """
    sels = [0] * len(entries)
    pays = [0] * len(entries)
    for i, entry in enumerate(entries):
        if entry is not None:
            sels[i], pays[i] = _encode_select_entry(width, entry)
    return sels, pays


def _st_slots(run: _Run) -> np.ndarray:
    """Select-table slot of every block (anchor-indexed reads/writes)."""
    select = getattr(run, "select_like")
    n_tables = select.n_tables
    n_entries = select.n_entries
    table = (run.anchor_start % run.line_size) % n_tables
    return table * n_entries + (run.base & (n_entries - 1))


# ----------------------------------------------------------------------
# Dual-block engine
# ----------------------------------------------------------------------

def run_dual_fast(engine, fetch_input) -> FetchStats:
    """Vectorized :meth:`DualBlockEngine.run` (no timeline recording).

    Dispatches to the kernel backend selected by ``REPRO_BACKEND``.
    """
    from .backends import active_backend
    return active_backend().run_dual(engine, fetch_input)


def _prep_dual(engine, fetch_input) -> tuple:
    """Backend-shared front half of the dual-block run.

    Everything up to (and including) the bank-conflict charges; the
    residual select-table / dual-target replay is backend-specific.
    """
    run = _Run(engine, fetch_input)
    compiled = run.compiled
    n = run.n
    stats = _empty_stats(run.trace, n, base_cycles=1 + (n - 1 + 1) // 2)
    run.match = None
    if n == 0:
        return run, stats
    scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
    run.resolve()
    walk = run.walk

    match, early, late = run.classify()
    slot_arr = ((np.arange(n, dtype=np.int64) % 2) == 1) \
        .astype(np.int64)  # 0=slot1, 1=slot2
    base_arr = np.array(
        [penalty_cycles(scheme, 1, PenaltyKind.COND),
         penalty_cycles(scheme, 2, PenaltyKind.COND)], dtype=np.int64)
    count, cycles = run.cond_charges(
        early, late, slot_arr, base_arr, slot2_extra=slot_arr.astype(bool),
        late_extra=not run.config.track_not_taken_targets)
    _charge_bulk(stats, PenaltyKind.COND, count, cycles)

    peeks = run.replay_ras(engine.ras)
    ret_bad = match & run.is_ret & (peeks != compiled.exit_target)
    for slot in (1, 2):
        in_slot = ret_bad & (slot_arr == slot - 1)
        count = int(np.count_nonzero(in_slot))
        _charge_bulk(stats, PenaltyKind.RETURN, count,
                     count * penalty_cycles(scheme, slot,
                                            PenaltyKind.RETURN))

    # Bank conflicts: pairs (i+1, i+2) for every completed (i, i+1).
    conflicts = pair_conflicts(compiled, run.geometry)
    odd = np.arange(1, n - 1, 2, dtype=np.int64)
    count = int(np.count_nonzero(conflicts[odd]))
    _charge_bulk(stats, PenaltyKind.BANK_CONFLICT, count,
                 count * penalty_cycles(scheme, 2,
                                        PenaltyKind.BANK_CONFLICT))

    run.match = match
    run.near_ok = (walk.src == SRC_NEAR) \
        & (walk.pred_exit == compiled.act_exit)
    run.mf = run.misfetch_kinds()
    return run, stats


def _residual_dual_numpy(engine, run, stats) -> FetchStats:
    """Reference serial residual: select table + dual target array."""
    compiled = run.compiled
    walk = run.walk
    match = run.match
    n = run.n
    width = run.width
    scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
    run.select_like = engine.select
    st_slot = _st_slots(run).tolist()
    if engine.double:
        firsts = [None if e is None else e.first
                  for e in engine.select._entries]
        seconds = [None if e is None else e.second
                   for e in engine.select._entries]
        st1_sel, st1_pay = _seed_select_arrays(width, firsts)
        st2_sel, st2_pay = _seed_select_arrays(width, seconds)
        ms1 = penalty_cycles(scheme, 1, PenaltyKind.MISSELECT)
        g1 = penalty_cycles(scheme, 1, PenaltyKind.GHR)
    else:
        st1_sel = st1_pay = None
        st2_sel, st2_pay = _seed_select_arrays(width,
                                               engine.select._entries)
    ms2 = penalty_cycles(scheme, 2, PenaltyKind.MISSELECT)
    g2 = penalty_cycles(scheme, 2, PenaltyKind.GHR)

    mf = run.mf.tolist()
    mf_cycles = {
        (1, s): penalty_cycles(scheme, s, PenaltyKind.MISFETCH_IMMEDIATE)
        for s in (1, 2)
    }
    mf_cycles.update({
        (2, s): penalty_cycles(scheme, s, PenaltyKind.MISFETCH_INDIRECT)
        for s in (1, 2)
    })
    near_ok = run.near_ok.tolist()
    has_exit = compiled.has_exit.tolist()
    is_ret = run.is_ret.tolist()
    match_l = match.tolist()
    src_l = walk.src.tolist()
    sel_l = walk.sel.tolist()
    pay_l = walk.pay.tolist()
    exit_pc_l = compiled.exit_pc.tolist()
    target_l = compiled.exit_target.tolist()
    line0 = compiled.line0.tolist()
    line_size = run.line_size
    lookup = engine.targets.lookup
    update = engine.targets.update
    tallies: Dict[PenaltyKind, List[int]] = {}

    def bump(kind: PenaltyKind, cyc: int) -> None:
        entry = tallies.get(kind)
        if entry is None:
            tallies[kind] = [1, cyc]
        else:
            entry[0] += 1
            entry[1] += cyc

    def handle_target(b: int, which: int, slot: int,
                      anchor_line: int) -> None:
        if not has_exit[b] or is_ret[b]:
            return
        exit_pc = exit_pc_l[b]
        position = exit_pc % line_size
        target = target_l[b]
        if match_l[b] and src_l[b] != SRC_NEAR:
            if lookup(which, anchor_line, position) != target:
                kind = mf[b]
                if kind:
                    bump(PenaltyKind.MISFETCH_IMMEDIATE if kind == 1
                         else PenaltyKind.MISFETCH_INDIRECT,
                         mf_cycles[(kind, slot)])
        if not near_ok[b]:
            update(which, anchor_line, position, target)

    double = engine.double
    for e in range(0, n, 2):
        slot = st_slot[e]
        anchor_line = line0[e]
        if double:
            if st1_sel[slot] != sel_l[e]:
                bump(PenaltyKind.MISSELECT, ms1)
            elif st1_pay[slot] != pay_l[e]:
                bump(PenaltyKind.GHR, g1)
        handle_target(e, which=1, slot=1, anchor_line=anchor_line)
        o = e + 1
        if o >= n:
            break
        if st2_sel[slot] != sel_l[o]:
            bump(PenaltyKind.MISSELECT, ms2)
        elif st2_pay[slot] != pay_l[o]:
            bump(PenaltyKind.GHR, g2)
        if double:
            st1_sel[slot] = sel_l[e]
            st1_pay[slot] = pay_l[e]
        st2_sel[slot] = sel_l[o]
        st2_pay[slot] = pay_l[o]
        handle_target(o, which=2, slot=2, anchor_line=anchor_line)

    for kind, (count, cycles) in tallies.items():
        _charge_bulk(stats, kind, count, cycles)

    # Select-table state write-back (exact, including repeated runs).
    written = sorted({st_slot[e] for e in range(0, n - 1, 2)})
    entries = engine.select._entries
    for slot in written:
        second = _decode_select_entry(width, st2_sel[slot], st2_pay[slot])
        if double:
            entries[slot] = DualSelectEntry(
                _decode_select_entry(width, st1_sel[slot], st1_pay[slot]),
                second)
        else:
            entries[slot] = second
    return stats


# ----------------------------------------------------------------------
# Multi-block engine
# ----------------------------------------------------------------------

def run_multi_fast(engine, fetch_input) -> FetchStats:
    """Vectorized :meth:`MultiBlockEngine.run`.

    Dispatches to the kernel backend selected by ``REPRO_BACKEND``.
    """
    from .backends import active_backend
    return active_backend().run_multi(engine, fetch_input)


def _prep_multi(engine, fetch_input) -> tuple:
    """Backend-shared front half of the N-block run.

    Includes the bank claim-set charges (pure geometry, no predictor
    state); the residual select-table / target-array replay is
    backend-specific.
    """
    run = _Run(engine, fetch_input)
    compiled = run.compiled
    n = run.n
    group = engine.n
    stats = _empty_stats(
        run.trace, n,
        base_cycles=1 + (n - 2 + group) // group if n > 1 else 1)
    run.match = None
    if n == 0:
        return run, stats
    scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
    run.resolve()
    walk = run.walk

    match, early, late = run.classify()
    slot_arr = np.arange(n, dtype=np.int64) % group  # slot - 1
    max_slot = group
    base_arr = np.array(
        [penalty_cycles_slot(scheme, s, PenaltyKind.COND)
         for s in range(1, max_slot + 1)], dtype=np.int64)
    count, cycles = run.cond_charges(
        early, late, slot_arr, base_arr, slot2_extra=slot_arr >= 1,
        late_extra=not run.config.track_not_taken_targets)
    _charge_bulk(stats, PenaltyKind.COND, count, cycles)

    peeks = run.replay_ras(engine.ras)
    ret_bad = match & run.is_ret & (peeks != compiled.exit_target)
    for slot in range(1, max_slot + 1):
        in_slot = ret_bad & (slot_arr == slot - 1)
        count = int(np.count_nonzero(in_slot))
        _charge_bulk(stats, PenaltyKind.RETURN, count,
                     count * penalty_cycles_slot(scheme, slot,
                                                 PenaltyKind.RETURN))

    # Bank claim sets over each group fetched together (a+1..a+n);
    # depends only on line geometry, so it is backend-shared.
    bank = [0] + [penalty_cycles_slot(scheme, s,
                                      PenaltyKind.BANK_CONFLICT)
                  for s in range(1, group + 2)]
    line0 = compiled.line0.tolist()
    n_banks = run.geometry.n_banks
    self_aligned = run.geometry.kind == SELF_ALIGNED
    bank_count = 0
    bank_cycles = 0
    for a in range(0, n, group):
        claimed_lines = set()
        claimed_banks = set()
        slot_i = 0
        for b in range(a + 1, min(a + group + 1, n)):
            slot_i += 1
            first = line0[b]
            lines = (first, first + 1) if self_aligned else (first,)
            conflict = False
            for line in lines:
                if line in claimed_lines:
                    continue
                bank_of = line % n_banks
                if bank_of in claimed_banks:
                    conflict = True
                else:
                    claimed_lines.add(line)
                    claimed_banks.add(bank_of)
            if conflict and slot_i >= 2:
                bank_count += 1
                bank_cycles += bank[slot_i]
    _charge_bulk(stats, PenaltyKind.BANK_CONFLICT, bank_count, bank_cycles)

    run.match = match
    run.near_ok = (walk.src == SRC_NEAR) \
        & (walk.pred_exit == compiled.act_exit)
    run.mf = run.misfetch_kinds()
    return run, stats


def _residual_multi_numpy(engine, run, stats) -> FetchStats:
    """Reference serial residual: select tables + per-slot targets."""
    compiled = run.compiled
    walk = run.walk
    match = run.match
    n = run.n
    group = engine.n
    width = run.width
    max_slot = group
    scheme = DOUBLE_SELECT if engine.double else SINGLE_SELECT
    if engine.selects:
        run.select_like = engine.selects[0]
        st_slot = _st_slots(run).tolist()
        tables = [_seed_select_arrays(width, t._entries)
                  for t in engine.selects]
    else:
        st_slot = None
        tables = []
    # Slot-1 verification exists only under double selection (Table 3
    # marks single/slot-1 MISSELECT and GHR N/A), so only build it there.
    ms = [0] + [penalty_cycles_slot(scheme, s, PenaltyKind.MISSELECT)
                if (engine.double or s >= 2) else 0
                for s in range(1, max_slot + 1)]
    gh = [0] + [penalty_cycles_slot(scheme, s, PenaltyKind.GHR)
                if (engine.double or s >= 2) else 0
                for s in range(1, max_slot + 1)]
    mf_cycles = {}
    for s in range(1, max_slot + 1):
        mf_cycles[(1, s)] = penalty_cycles_slot(
            scheme, s, PenaltyKind.MISFETCH_IMMEDIATE)
        mf_cycles[(2, s)] = penalty_cycles_slot(
            scheme, s, PenaltyKind.MISFETCH_INDIRECT)

    mf = run.mf.tolist()
    near_ok = run.near_ok.tolist()
    has_exit = compiled.has_exit.tolist()
    is_ret = run.is_ret.tolist()
    match_l = match.tolist()
    src_l = walk.src.tolist()
    sel_l = walk.sel.tolist()
    pay_l = walk.pay.tolist()
    exit_pc_l = compiled.exit_pc.tolist()
    target_l = compiled.exit_target.tolist()
    line0 = compiled.line0.tolist()
    line_size = run.line_size
    lookup = engine.targets.lookup
    update = engine.targets.update
    double = engine.double
    tallies: Dict[PenaltyKind, List[int]] = {}

    def bump(kind: PenaltyKind, cyc: int) -> None:
        entry = tallies.get(kind)
        if entry is None:
            tallies[kind] = [1, cyc]
        else:
            entry[0] += 1
            entry[1] += cyc

    def handle_target(b: int, slot: int, anchor_line: int) -> None:
        if not has_exit[b] or is_ret[b]:
            return
        exit_pc = exit_pc_l[b]
        position = exit_pc % line_size
        target = target_l[b]
        if match_l[b] and src_l[b] != SRC_NEAR:
            if lookup(slot, anchor_line, position) != target:
                kind = mf[b]
                if kind:
                    bump(PenaltyKind.MISFETCH_IMMEDIATE if kind == 1
                         else PenaltyKind.MISFETCH_INDIRECT,
                         mf_cycles[(kind, slot)])
        if not near_ok[b]:
            update(slot, anchor_line, position, target)

    written = [set() for _ in tables]
    for a in range(0, n, group):
        anchor_line = line0[a]
        slot_a = st_slot[a] if st_slot is not None else 0
        if double:
            t_sel, t_pay = tables[0]
            if t_sel[slot_a] != sel_l[a]:
                bump(PenaltyKind.MISSELECT, ms[1])
            elif t_pay[slot_a] != pay_l[a]:
                bump(PenaltyKind.GHR, gh[1])
            t_sel[slot_a] = sel_l[a]
            t_pay[slot_a] = pay_l[a]
            written[0].add(slot_a)
        handle_target(a, slot=1, anchor_line=anchor_line)
        for k in range(1, group):
            j = a + k
            if j >= n:
                break
            t_sel, t_pay = tables[k] if double else tables[k - 1]
            if t_sel[slot_a] != sel_l[j]:
                bump(PenaltyKind.MISSELECT, ms[k + 1])
            elif t_pay[slot_a] != pay_l[j]:
                bump(PenaltyKind.GHR, gh[k + 1])
            t_sel[slot_a] = sel_l[j]
            t_pay[slot_a] = pay_l[j]
            written[k if double else k - 1].add(slot_a)
            handle_target(j, slot=k + 1, anchor_line=anchor_line)

    for kind, (count, cycles) in tallies.items():
        _charge_bulk(stats, kind, count, cycles)

    for table, (t_sel, t_pay), touched in zip(engine.selects, tables,
                                              written):
        entries = table._entries
        for slot in sorted(touched):
            entries[slot] = _decode_select_entry(width, t_sel[slot],
                                                 t_pay[slot])
    return stats


# ----------------------------------------------------------------------
# Two-block-ahead engine
# ----------------------------------------------------------------------

def run_two_ahead_fast(engine, fetch_input) -> FetchStats:
    """Vectorized :meth:`TwoBlockAheadEngine.run`.

    Dispatches to the kernel backend selected by ``REPRO_BACKEND``.
    """
    from .backends import active_backend
    return active_backend().run_two_ahead(engine, fetch_input)


def _prep_two_ahead(engine, fetch_input) -> tuple:
    """Backend-shared front half of the two-block-ahead run."""
    run = _Run(engine, fetch_input, ahead=True)
    compiled = run.compiled
    n = run.n
    stats = _empty_stats(run.trace, n, base_cycles=1 + n // 2)
    run.match = None
    if n == 0:
        return run, stats
    scheme = SINGLE_SELECT
    run.resolve()
    walk = run.walk

    match, early, late = run.classify()
    # Pairs are (odd, even): odd indices are slot 1, even are slot 2.
    index = np.arange(n, dtype=np.int64)
    slot_arr = (index % 2 == 0).astype(np.int64)  # 0=slot1, 1=slot2
    base_arr = np.array(
        [penalty_cycles(scheme, 1, PenaltyKind.COND),
         penalty_cycles(scheme, 2, PenaltyKind.COND)], dtype=np.int64)
    count, cycles = run.cond_charges(
        early, late, slot_arr, base_arr, slot2_extra=slot_arr.astype(bool),
        late_extra=False)
    _charge_bulk(stats, PenaltyKind.COND, count, cycles)

    peeks = run.replay_ras(engine.ras)
    ret_bad = match & run.is_ret & (peeks != compiled.exit_target)
    for slot in (1, 2):
        in_slot = ret_bad & (slot_arr == slot - 1)
        count = int(np.count_nonzero(in_slot))
        _charge_bulk(stats, PenaltyKind.RETURN, count,
                     count * penalty_cycles(scheme, slot,
                                            PenaltyKind.RETURN))

    if engine.serialization_penalty:
        count = int(np.count_nonzero((index % 2 == 0) & (index >= 2)))
        _charge_bulk(stats, PenaltyKind.MISSELECT, count,
                     count * engine.serialization_penalty)

    conflicts = pair_conflicts(compiled, run.geometry)
    odd = np.arange(1, n - 1, 2, dtype=np.int64)
    count = int(np.count_nonzero(conflicts[odd]))
    _charge_bulk(stats, PenaltyKind.BANK_CONFLICT, count,
                 count * penalty_cycles(scheme, 2,
                                        PenaltyKind.BANK_CONFLICT))

    run.match = match
    run.near_ok = (walk.src == SRC_NEAR) \
        & (walk.pred_exit == compiled.act_exit)
    run.mf = run.misfetch_kinds()
    return run, stats


def _residual_two_ahead_numpy(engine, run, stats) -> FetchStats:
    """Reference serial residual: ahead-line indexed dual NLS array."""
    compiled = run.compiled
    walk = run.walk
    match = run.match
    scheme = SINGLE_SELECT
    mf = run.mf.tolist()
    mf_cycles = {
        (1, s): penalty_cycles(scheme, s, PenaltyKind.MISFETCH_IMMEDIATE)
        for s in (1, 2)
    }
    mf_cycles.update({
        (2, s): penalty_cycles(scheme, s, PenaltyKind.MISFETCH_INDIRECT)
        for s in (1, 2)
    })
    near_ok = run.near_ok.tolist()
    anchor_line = (run.anchor_start // run.line_size).tolist()
    match_l = match.tolist()
    src_l = walk.src.tolist()
    exit_pc_l = compiled.exit_pc.tolist()
    target_l = compiled.exit_target.tolist()
    line_size = run.line_size
    lookup = engine.targets.lookup
    update = engine.targets.update
    tallies: Dict[PenaltyKind, List[int]] = {}
    for b in np.nonzero(compiled.has_exit & ~run.is_ret)[0].tolist():
        slot = 1 if b % 2 == 1 else 2
        exit_pc = exit_pc_l[b]
        position = exit_pc % line_size
        target = target_l[b]
        line = anchor_line[b]
        if match_l[b] and src_l[b] != SRC_NEAR:
            if lookup(slot, line, position) != target:
                kind = mf[b]
                if kind:
                    key = (PenaltyKind.MISFETCH_IMMEDIATE if kind == 1
                           else PenaltyKind.MISFETCH_INDIRECT)
                    entry = tallies.get(key)
                    cyc = mf_cycles[(kind, slot)]
                    if entry is None:
                        tallies[key] = [1, cyc]
                    else:
                        entry[0] += 1
                        entry[1] += cyc
        if not near_ok[b]:
            update(slot, line, position, target)
    for kind, (count, cycles) in tallies.items():
        _charge_bulk(stats, kind, count, cycles)
    return stats
