"""Branch predictors: counters, history, scalar/blocked PHTs, BAC baseline."""

from .bac import BACCost, blocked_pht_lookups, evaluate_bac_direction
from .blocked import BlockedPHT
from .counters import (
    COUNTER_INIT,
    SaturatingCounter,
    counter_has_second_chance,
    counter_predicts_taken,
    counter_update,
)
from .evaluate import (
    DirectionResult,
    direction_accuracy_sweep,
    evaluate_blocked_direction,
    evaluate_blocked_direction_vectorized,
    evaluate_scalar_direction,
    evaluate_scalar_direction_vectorized,
    packed_history,
    simulate_counter_stream,
)
from .ghr import BlockOutcomes, GlobalHistory, pack_block_outcomes
from .scalar import INDEX_GHR, INDEX_GSHARE, ScalarPHT

__all__ = [
    "BACCost",
    "BlockOutcomes",
    "BlockedPHT",
    "COUNTER_INIT",
    "DirectionResult",
    "GlobalHistory",
    "INDEX_GHR",
    "INDEX_GSHARE",
    "SaturatingCounter",
    "ScalarPHT",
    "blocked_pht_lookups",
    "counter_has_second_chance",
    "counter_predicts_taken",
    "counter_update",
    "direction_accuracy_sweep",
    "evaluate_bac_direction",
    "evaluate_blocked_direction",
    "evaluate_blocked_direction_vectorized",
    "evaluate_scalar_direction",
    "evaluate_scalar_direction_vectorized",
    "pack_block_outcomes",
    "packed_history",
    "simulate_counter_stream",
]
