"""Yeh, Marr & Patt's multi-branch prediction baseline [11].

The paper's Section 2 argues against the branch-address-cache (BAC) approach
because its PHT lookup count and BAC entry width grow *exponentially* with
the number of branches predicted per cycle: the first prediction needs one
entry, the second needs the entries for both possible first outcomes, and so
on — ``2**k - 1`` lookups and ``2**(k+1) - 2`` stored target addresses for
``k`` branches.

This module provides (a) the analytic cost model used in the comparison
benchmark and (b) a functional BAC direction evaluator, so the accuracy
equivalence and the cost divergence can both be demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.kinds import InstrKind
from ..trace.record import Trace
from .scalar import ScalarPHT


@dataclass(frozen=True)
class BACCost:
    """Per-cycle lookup and storage cost of ``k``-branch BAC prediction."""

    branches_per_cycle: int
    pht_lookups: int
    bac_addresses_per_entry: int
    bac_entry_bits: int

    @classmethod
    def for_branches(cls, k: int, address_bits: int = 30) -> "BACCost":
        """Cost of predicting ``k`` branches per cycle (Section 2).

        One PHT entry is read for the first branch, two for the second,
        four for the third, ...; the BAC entry must hold both possible
        successor addresses for every anticipated basic block.
        """
        if k < 1:
            raise ValueError("k must be positive")
        lookups = (1 << k) - 1
        addresses = (1 << (k + 1)) - 2
        return cls(
            branches_per_cycle=k,
            pht_lookups=lookups,
            bac_addresses_per_entry=addresses,
            bac_entry_bits=addresses * address_bits,
        )


def blocked_pht_lookups(k: int) -> int:
    """Lookups per cycle for the paper's blocked PHT: always one per block."""
    if k < 1:
        raise ValueError("k must be positive")
    return 1


def evaluate_bac_direction(trace: Trace, history_length: int = 10,
                           n_tables: int = 8):
    """Direction accuracy of the BAC scheme.

    The BAC retains the *scalar* two-level prediction accuracy (its PHT is
    the same; only the lookup fan-out differs), so this evaluator is the
    scalar evaluator with per-branch GHR update.  It exists to document that
    equivalence executably: the paper's claim is that the blocked PHT
    matches this accuracy at linear rather than exponential cost.
    """
    from .evaluate import evaluate_scalar_direction

    predictor = ScalarPHT(history_length=history_length, n_tables=n_tables)
    return evaluate_scalar_direction(trace, predictor)


def max_branches_per_block(trace: Trace, block_width: int = 8) -> int:
    """Largest number of distinct conditional branches in one fetch block.

    Counts *static* conditional-branch addresses per aligned
    ``block_width`` window — the quantity that sizes a BAC: how many
    branch predictions one block fetch may need at once.  Used by the
    comparison benchmark to pick the ``k`` a BAC would need to match a
    blocked configuration.
    """
    k_cond = int(InstrKind.COND)
    per_block = {}
    for pc, kind, taken, target in trace.records():
        if kind != k_cond:
            continue
        per_block.setdefault(pc // block_width, set()).add(pc)
    return max((len(pcs) for pcs in per_block.values()), default=0)
