"""The blocked Pattern History Table — the paper's core predictor structure.

A conventional two-level PHT entry holds one 2-bit counter.  A *blocked* PHT
entry holds ``block_width`` counters, one per instruction position in a fetch
block, so a single lookup yields a prediction for every conditional branch a
block may contain.  Cost grows linearly in the block width (Section 5), not
exponentially as in Yeh's multi-branch lookup (see
:mod:`repro.predictors.bac` for that baseline).

Indexing follows Figure 1: ``GHR XOR block address`` (the cache-line index of
the block's start).  Counter positions are ``address mod block_width``; for
extended and self-aligned caches the positions simply wrap around the entry
(Section 4.5).
"""

from __future__ import annotations

from typing import List, Sequence

from .counters import COUNTER_INIT, counter_predicts_taken, counter_update


class BlockedPHT:
    """Pattern history table with one counter per block position.

    Args:
        history_length: GHR length; the table has ``2**history_length``
            entries (the paper's default is 10 -> 1024 entries).
        block_width: counters per entry (the paper's ``B``; default 8).
        n_tables: number of PHTs; the low bits of the block address select
            the table (1 in all of the paper's multi-block results).
    """

    def __init__(self, history_length: int = 10, block_width: int = 8,
                 n_tables: int = 1) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if block_width < 1:
            raise ValueError("block_width must be positive")
        if n_tables < 1:
            raise ValueError("n_tables must be positive")
        self.history_length = history_length
        self.block_width = block_width
        self.n_tables = n_tables
        self.n_entries = 1 << history_length
        self.mask = self.n_entries - 1
        # Flat storage: table-major, then entry, then position.
        self._counters: List[int] = (
            [COUNTER_INIT] * (n_tables * self.n_entries * block_width))

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def index(self, ghr_value: int, block_address: int) -> int:
        """Flat base offset of the entry for (history, block address)."""
        table = (block_address % self.n_tables)
        entry = (ghr_value ^ block_address) & self.mask
        return (table * self.n_entries + entry) * self.block_width

    def position(self, address: int) -> int:
        """Counter position of an instruction address (wraps modulo B)."""
        return address % self.block_width

    # ------------------------------------------------------------------
    # Prediction / update
    # ------------------------------------------------------------------

    def counter(self, base: int, position: int) -> int:
        """Raw counter state at (entry base, position)."""
        return self._counters[base + position]

    def predicts_taken(self, base: int, position: int) -> bool:
        """Direction prediction for the branch at ``position``."""
        return counter_predicts_taken(self._counters[base + position])

    def update(self, base: int, position: int, taken: bool) -> None:
        """Train the counter at (entry base, position) with an outcome."""
        slot = base + position
        self._counters[slot] = counter_update(self._counters[slot], taken)

    def entry(self, base: int) -> Sequence[int]:
        """The full counter vector of one entry (for display/tests)."""
        return tuple(self._counters[base:base + self.block_width])

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Total storage (Table 7: ``2 * B * 2**h * p`` bits)."""
        return 2 * self.block_width * self.n_entries * self.n_tables
