"""Scalar two-level adaptive predictors — the Figure 6 baseline.

Yeh & Patt's global two-level scheme predicts one branch per lookup and
updates the GHR after every branch.  The paper compares its blocked PHT
against "a per-addr PHT with 8 PHTs to give it equal size" as a blocked PHT
with ``B = 8``: the branch address selects one of 8 scalar PHTs and the GHR
(optionally XORed with the address, McFarling's gshare) indexes within it.

This gives the scalar baseline exactly the same storage and, in gshare mode,
the same aliasing structure as the blocked scheme — isolating the one
variable the paper studies: per-branch versus per-block history update.
"""

from __future__ import annotations

from typing import List

from .counters import COUNTER_INIT, counter_predicts_taken, counter_update

#: Index by GHR only (Yeh & Patt's GAs/per-addr style).
INDEX_GHR = "ghr"
#: Index by GHR XOR branch address (McFarling's gshare).
INDEX_GSHARE = "gshare"


class ScalarPHT:
    """Per-address scalar two-level predictor.

    Args:
        history_length: GHR length; each PHT has ``2**history_length``
            counters.
        n_tables: number of PHTs; the branch address low bits pick one
            (8 in the paper's comparison, matching a B=8 blocked PHT).
        index_mode: ``"gshare"`` (default, mirrors the blocked scheme's
            Figure 1 indexing) or ``"ghr"``.
    """

    def __init__(self, history_length: int = 10, n_tables: int = 8,
                 index_mode: str = INDEX_GSHARE) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if n_tables < 1:
            raise ValueError("n_tables must be positive")
        if index_mode not in (INDEX_GHR, INDEX_GSHARE):
            raise ValueError(f"unknown index_mode: {index_mode!r}")
        self.history_length = history_length
        self.n_tables = n_tables
        self.index_mode = index_mode
        self.n_entries = 1 << history_length
        self.mask = self.n_entries - 1
        self._counters: List[int] = (
            [COUNTER_INIT] * (n_tables * self.n_entries))

    def _slot(self, ghr_value: int, pc: int) -> int:
        table = pc % self.n_tables
        if self.index_mode == INDEX_GSHARE:
            entry = (ghr_value ^ (pc // self.n_tables)) & self.mask
        else:
            entry = ghr_value & self.mask
        return table * self.n_entries + entry

    def predicts_taken(self, ghr_value: int, pc: int) -> bool:
        """Direction prediction for the branch at ``pc``."""
        return counter_predicts_taken(self._counters[self._slot(ghr_value, pc)])

    def update(self, ghr_value: int, pc: int, taken: bool) -> None:
        """Train with the resolved outcome (same index as the prediction)."""
        slot = self._slot(ghr_value, pc)
        self._counters[slot] = counter_update(self._counters[slot], taken)

    @property
    def storage_bits(self) -> int:
        """Total storage: matches a blocked PHT when ``n_tables == B``."""
        return 2 * self.n_entries * self.n_tables
