"""Two-bit up/down saturating counters.

All of the paper's pattern-history state is built from the classic 2-bit
counter: states 0 (strong not-taken) .. 3 (strong taken); predictions flip
only after two consecutive mispredictions — the paper's "second chance".

The module exposes both plain-int helpers (used in the simulation hot loops)
and a small class for readability in tests and examples.
"""

from __future__ import annotations

COUNTER_MIN = 0
COUNTER_MAX = 3
COUNTER_BITS = 2

#: Paper default: weakly-taken initial state so cold loops predict taken.
COUNTER_INIT = 2


def counter_predicts_taken(state: int) -> bool:
    """Prediction encoded by counter ``state`` (taken when >= 2)."""
    return state >= 2


def counter_update(state: int, taken: bool) -> int:
    """Saturating increment on taken, decrement on not-taken."""
    if taken:
        return state + 1 if state < COUNTER_MAX else COUNTER_MAX
    return state - 1 if state > COUNTER_MIN else COUNTER_MIN


def counter_has_second_chance(state: int, taken_prediction: bool) -> bool:
    """True when a misprediction would not yet flip the prediction.

    A counter in a strong state (0 or 3) agreeing with its prediction keeps
    predicting the same direction after one miss — the "second chance" bit
    recorded in the paper's bad-branch-recovery entries (Table 4).
    """
    if taken_prediction:
        return state == COUNTER_MAX
    return state == COUNTER_MIN


class SaturatingCounter:
    """Object wrapper over the counter helpers (tests/examples)."""

    __slots__ = ("state",)

    def __init__(self, state: int = COUNTER_INIT) -> None:
        if not COUNTER_MIN <= state <= COUNTER_MAX:
            raise ValueError(f"counter state out of range: {state}")
        self.state = state

    @property
    def taken(self) -> bool:
        """Current direction prediction."""
        return counter_predicts_taken(self.state)

    @property
    def second_chance(self) -> bool:
        """True when one misprediction will not flip the prediction."""
        return counter_has_second_chance(self.state, self.taken)

    def update(self, taken: bool) -> "SaturatingCounter":
        """Train with an outcome; returns self for chaining."""
        self.state = counter_update(self.state, taken)
        return self

    def __repr__(self) -> str:
        return f"SaturatingCounter({self.state})"
