"""Direction-accuracy evaluators (Figure 6).

These run just the *conditional-branch direction* part of each scheme over a
trace — no target arrays, penalties or cycle accounting — so history-length
sweeps are cheap.  Accuracy is counted per executed conditional branch, the
paper's metric ("branch misprediction rate").

Both evaluators model the architectural (post-recovery) history: the GHR a
prediction sees reflects actual prior outcomes, which is the standard
trace-driven idealisation and matches the paper's assumption of always-
available bad-branch-recovery entries carrying a corrected GHR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from ..icache.geometry import CacheGeometry
from ..isa.kinds import InstrKind
from ..trace.blocks import BlockStream
from ..trace.record import Trace
from .blocked import BlockedPHT
from .counters import COUNTER_INIT, COUNTER_MAX, COUNTER_MIN
from .ghr import GlobalHistory
from .scalar import INDEX_GSHARE, ScalarPHT


@dataclass(frozen=True)
class DirectionResult:
    """Outcome of a direction-accuracy run."""

    n_cond: int
    mispredicts: int

    @property
    def misprediction_rate(self) -> float:
        """Fraction of executed conditional branches mispredicted."""
        return self.mispredicts / self.n_cond if self.n_cond else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return 1.0 - self.misprediction_rate


def evaluate_scalar_direction(trace: Trace,
                              predictor: ScalarPHT) -> DirectionResult:
    """Per-branch two-level prediction with per-branch GHR update."""
    ghr = GlobalHistory(predictor.history_length)
    k_cond = int(InstrKind.COND)

    pcs = trace.pc.tolist()
    kinds = trace.kind.tolist()
    takens = trace.taken.tolist()

    n_cond = 0
    mispredicts = 0
    for i in range(len(pcs)):
        if kinds[i] != k_cond:
            continue
        pc = pcs[i]
        taken = takens[i]
        n_cond += 1
        if predictor.predicts_taken(ghr.value, pc) != taken:
            mispredicts += 1
        predictor.update(ghr.value, pc, taken)
        ghr.shift_in(taken)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)


def evaluate_blocked_direction(blocks: BlockStream,
                               pht: BlockedPHT) -> DirectionResult:
    """Blocked-PHT prediction with per-block GHR update.

    Every conditional branch in a block is predicted from the single entry
    indexed by ``GHR XOR line(block start)``; the GHR shifts once per block
    with all the block's outcomes.
    """
    geometry: CacheGeometry = blocks.geometry
    trace = blocks.trace
    k_cond = int(InstrKind.COND)
    block_width = geometry.block_width

    t_pc = trace.pc.tolist()
    t_kind = trace.kind.tolist()
    t_taken = trace.taken.tolist()

    starts = blocks.start.tolist()
    first_recs = blocks.first_rec.tolist()
    n_recs = blocks.n_recs.tolist()

    ghr = GlobalHistory(pht.history_length)
    n_cond = 0
    mispredicts = 0

    for b in range(len(starts)):
        first = first_recs[b]
        count = n_recs[b]
        if count == 0:
            continue
        base = pht.index(ghr.value, starts[b] // block_width)
        outcomes = []
        for r in range(first, first + count):
            if t_kind[r] != k_cond:
                continue
            pc = t_pc[r]
            taken = t_taken[r]
            pos = pht.position(pc)
            n_cond += 1
            if pht.predicts_taken(base, pos) != taken:
                mispredicts += 1
            pht.update(base, pos, taken)
            outcomes.append(taken)
        if outcomes:
            ghr.shift_in_block(outcomes)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)


# ----------------------------------------------------------------------
# Vectorized kernels
# ----------------------------------------------------------------------
#
# Both evaluators above are trace-driven with architectural history: the
# GHR a prediction sees is a pure function of the *trace's* conditional
# outcomes, never of predictor state.  That makes the whole evaluation
# vectorizable:
#
# 1. The GHR value stream is a sliding bit-window over the conditional
#    outcome stream (one shift per branch for the scalar scheme, one
#    multi-bit shift per block for the blocked scheme — but the cumulative
#    bit stream is identical, only the sampling points differ).
# 2. PHT slot indices are then elementwise integer arithmetic.
# 3. The 2-bit saturating counters are resolved with a segmented parallel
#    scan: a counter update is the clamped shift  s -> min(hi, max(lo,
#    s+k)),  and clamped shifts compose into clamped shifts, so the state
#    *before* every visit of every slot falls out of an O(log n)-pass
#    Hillis-Steele scan over the visits grouped (stably) by slot.
#
# The kernels are bit-exact with the reference evaluators — same
# misprediction counts and same final counter states — which
# tests/predictors/test_evaluate_vectorized.py locks down.

#: Sentinel clamp bounds that can never bind for a 2-bit counter.
_NO_LO = np.int64(-8)
_NO_HI = np.int64(8)


def _grouping_order(slots: np.ndarray) -> np.ndarray:
    """Stable argsort of a nonnegative integer array.

    numpy's ``kind="stable"`` is an O(n) radix sort only for <=16-bit
    dtypes, so wide-but-bounded keys (PHT slots) are sorted as two
    16-bit LSD radix passes: stable-sort by the low half, then
    stable-sort that order by the high half.
    """
    if len(slots) < (1 << 14) or int(slots.max()) >= (1 << 32):
        return np.argsort(slots, kind="stable")
    low = (slots & np.int64(0xFFFF)).astype(np.uint16)
    high = (slots >> np.int64(16)).astype(np.uint16)
    order = np.argsort(low, kind="stable")
    return order[np.argsort(high[order], kind="stable")]


def packed_history(outcomes: np.ndarray, history_length: int) -> np.ndarray:
    """GHR value after each prefix of ``outcomes`` (newest bit in the LSB).

    Returns an ``int64`` array of length ``len(outcomes) + 1`` whose entry
    ``t`` is the register value once the first ``t`` outcomes have been
    shifted in (entry 0 is the all-zeros cold register).
    """
    outcomes = np.asarray(outcomes, dtype=np.int64)
    n = len(outcomes)
    padded = np.zeros(n + history_length, dtype=np.int64)
    padded[history_length:] = outcomes
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, history_length)[:n + 1]
    weights = (np.int64(1) << np.arange(history_length - 1, -1, -1,
                                        dtype=np.int64))
    return windows @ weights


def _clamped_scan_states(s_taken: np.ndarray, seg_start: np.ndarray):
    """Segmented clamped-shift scan over an already-grouped visit stream.

    ``s_taken`` holds the visit outcomes grouped by slot and ``seg_start``
    flags the first visit of each slot.  Returns ``(state_before,
    state_after)``: the counter value each visit predicted from and the
    value it left behind.  ``len(s_taken)`` must be positive.
    """
    # Per-visit transfer function as a clamped shift (k, lo, hi):
    # taken  -> s+1 capped at COUNTER_MAX;  not-taken -> s-1 floored at 0.
    k = np.where(s_taken, 1, -1)
    lo = np.where(s_taken, _NO_LO, COUNTER_MIN)
    hi = np.where(s_taken, COUNTER_MAX, _NO_HI)
    return _clamped_scan_transfers(k, lo, hi, seg_start)


def _clamped_scan_transfers(k: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                            seg_start: np.ndarray, init=None):
    """Segmented scan over arbitrary per-visit clamped-shift transfers.

    Generalisation of :func:`_clamped_scan_states` used by the engine
    kernels (:mod:`repro.core.kernels`), whose visit streams interleave
    counter *reads* — identity transfers ``(0, _NO_LO, _NO_HI)`` — with
    the training writes.  ``k``/``lo``/``hi`` give each visit's transfer
    ``s -> min(hi, max(lo, s + k))`` in grouped order; ``seg_start``
    flags the first visit of each slot.  ``init``, when given, holds each
    visit's segment's starting counter value (constant within a segment);
    it defaults to ``COUNTER_INIT`` everywhere.  Returns ``(state_before,
    state_after)`` exactly as :func:`_clamped_scan_states` does.
    """
    n = len(k)
    # The composite over a window is again a clamped shift; its net shift
    # is bounded by the window length, so int16 holds every composite for
    # any segment shorter than 32k visits (int64 otherwise).
    indices = np.arange(n, dtype=np.int64)
    pos = indices - np.maximum.accumulate(np.where(seg_start, indices, 0))
    max_pos = int(pos.max())
    dtype = np.int16 if max_pos < 30000 else np.int64
    k = np.asarray(k).astype(dtype)
    lo = np.asarray(lo).astype(dtype)
    hi = np.asarray(hi).astype(dtype)

    if max_pos > 0:
        # After the pass at distance d, element i's composite covers the
        # visits [i-2d+1, i] clipped to its segment — so i participates in
        # that pass iff pos[i] >= d, a static condition.  Keeping the
        # triples sorted by descending position makes every pass's active
        # set a contiguous prefix: the only random access left is
        # gathering each element's partner at original distance d.
        if dtype is np.int16:
            by_pos = np.argsort((-pos).astype(np.int16), kind="stable")
        else:
            by_pos = np.argsort(-pos)
        rank = np.empty(n, dtype=np.int64)
        rank[by_pos] = indices
        neg_sorted = -pos[by_pos]
        k = k[by_pos]
        lo = lo[by_pos]
        hi = hi[by_pos]

        distance = 1
        while distance <= max_pos:
            count = int(np.searchsorted(neg_sorted, -distance,
                                        side="right"))
            partner = rank[by_pos[:count] - distance]
            # Gathered copies of the earlier composite (1)...
            pk = k[partner]
            plo = lo[partner]
            phi = hi[partner]
            # ...composed in place with views of the later one (2):
            # K = k1+k2, HI = min(hi2, max(lo2, hi1+k2)),
            # LO = max(lo2, lo1+k2).  All reads of the active prefix
            # happen before the writes below, so same-pass partners see
            # the pass's input values, as Hillis-Steele requires.
            ak = k[:count]
            alo = lo[:count]
            ahi = hi[:count]
            phi += ak
            np.maximum(phi, alo, out=phi)
            np.minimum(phi, ahi, out=phi)
            plo += ak
            np.maximum(plo, alo, out=plo)
            pk += ak
            k[:count] = pk
            lo[:count] = plo
            hi[:count] = phi
            distance *= 2

        k = k[rank]
        lo = lo[rank]
        hi = hi[rank]

    if init is None:
        base = dtype(COUNTER_INIT)
        first = dtype(COUNTER_INIT)
    else:
        # Composites were reordered and restored by position above, but
        # the per-visit base survives untouched: it is constant within a
        # segment, and both uses below index in original grouped order.
        base = np.asarray(init).astype(dtype)
        first = base[seg_start]
    state_after = np.minimum(hi, np.maximum(lo, base + k))
    state_before = np.empty(n, dtype=dtype)
    state_before[1:] = state_after[:-1]
    state_before[seg_start] = first
    return state_before, state_after


def _scan_counter_states(slots: np.ndarray, taken: np.ndarray):
    """Resolve every counter state of a (slot, outcome) visit stream.

    Stably groups the visits by slot and runs the segmented clamped-shift
    scan.  Returns ``(order, s_slot, s_taken, state_before, state_after,
    seg_start)`` where the ``s_``-prefixed arrays are in grouped order
    (``original[order]``) and ``state_before[i]`` is the counter value the
    visit predicted from.  ``len(slots)`` must be positive.
    """
    order = _grouping_order(slots)
    s_slot = slots[order]
    s_taken = taken[order]
    n = len(s_slot)

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = s_slot[1:] != s_slot[:-1]

    state_before, state_after = _clamped_scan_states(s_taken, seg_start)
    return order, s_slot, s_taken, state_before, state_after, seg_start


def simulate_counter_stream(slots: np.ndarray, taken: np.ndarray,
                            counters=None) -> Tuple[int, Dict[int, int]]:
    """Replay a (slot, outcome) visit stream over 2-bit counters.

    Computes, for every visit in stream order, the prediction the counter
    at ``slots[i]`` would have made, and returns the total number of
    mispredictions plus the final state of every touched slot.  When
    ``counters`` (a mutable sequence, e.g. a predictor's backing list) is
    given, the final states are written back so the predictor ends up in
    exactly the state the sequential evaluators leave it in.

    All counters start at :data:`COUNTER_INIT`; the result is bit-exact
    with a sequential predict/update loop.
    """
    slots = np.asarray(slots, dtype=np.int64)
    taken = np.asarray(taken, dtype=bool)
    if len(slots) == 0:
        return 0, {}

    (_, s_slot, s_taken, state_before, state_after,
     seg_start) = _scan_counter_states(slots, taken)

    mispredicts = int(np.count_nonzero((state_before >= 2) != s_taken))

    seg_end = np.empty(len(s_slot), dtype=bool)
    seg_end[:-1] = seg_start[1:]
    seg_end[-1] = True
    final_states = {int(slot): int(state)
                    for slot, state in zip(s_slot[seg_end],
                                           state_after[seg_end])}
    if counters is not None:
        for slot, state in final_states.items():
            counters[slot] = state
    return mispredicts, final_states


def _batched_mispredicts(slots: np.ndarray, taken: np.ndarray,
                         n_streams: int) -> np.ndarray:
    """Mispredict counts for ``n_streams`` equal-length concatenated
    visit streams resolved in a single segmented scan.

    ``slots`` is the concatenation of the per-stream slot arrays, each
    offset into its own disjoint slot range; ``taken`` is the matching
    outcome concatenation.  One scan resolves every stream at once (the
    disjoint ranges keep their segments separate), and the wrong
    predictions are binned back to their stream of origin.

    Slots whose visits all share one outcome — the common case for the
    heavily biased branches that dominate real traces — never leave the
    scan's reach of ``COUNTER_INIT``: all-taken runs predict correctly
    from the first visit (init 2 = weakly taken) and all-not-taken runs
    mispredict exactly once.  Those segments are answered in closed form
    and only the mixed ones go through the scan.
    """
    n = len(slots)
    order = _grouping_order(slots)
    s_slot = slots[order]
    s_taken = taken[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = s_slot[1:] != s_slot[:-1]
    starts = np.nonzero(seg_start)[0]
    seg_len = np.diff(np.append(starts, n))
    seg_sum = np.add.reduceat(s_taken.astype(np.int64), starts)

    uniform_taken = seg_sum == seg_len
    uniform_nt = seg_sum == 0

    wrong = np.zeros(n, dtype=bool)
    # init COUNTER_INIT=2: all-taken -> 2,3,3,... zero mispredicts;
    # all-not-taken -> 2,1,0,... exactly the first visit mispredicts.
    assert COUNTER_INIT == 2, "closed forms assume weakly-taken init"
    wrong[starts[uniform_nt]] = True

    seg_id = np.cumsum(seg_start) - 1
    mixed_visit = ~(uniform_taken | uniform_nt)[seg_id]
    sub = np.nonzero(mixed_visit)[0]
    if len(sub):
        state_before, _ = _clamped_scan_states(s_taken[sub],
                                               seg_start[sub])
        wrong[sub] = (state_before >= 2) != s_taken[sub]

    per_stream = n // n_streams
    return np.bincount(order[wrong] // per_stream, minlength=n_streams)


def _cond_streams(trace: Trace) -> Tuple[np.ndarray, np.ndarray]:
    """(pc, taken) arrays over the executed conditional branches."""
    mask = trace.cond_mask
    return trace.pc[mask].astype(np.int64), trace.taken[mask]


def _scalar_slots(pcs: np.ndarray, ghr_values: np.ndarray,
                  predictor: ScalarPHT) -> np.ndarray:
    """Vectorized :meth:`ScalarPHT._slot` over per-branch streams."""
    tables = pcs % predictor.n_tables
    if predictor.index_mode == INDEX_GSHARE:
        entries = (ghr_values ^ (pcs // predictor.n_tables)) & predictor.mask
    else:
        entries = ghr_values & predictor.mask
    return tables * predictor.n_entries + entries


def evaluate_scalar_direction_vectorized(
        trace: Trace, predictor: ScalarPHT) -> DirectionResult:
    """Vectorized, bit-exact equivalent of
    :func:`evaluate_scalar_direction` (the predictor is updated too)."""
    pcs, outcomes = _cond_streams(trace)
    n_cond = len(pcs)
    if n_cond == 0:
        return DirectionResult(n_cond=0, mispredicts=0)
    # GHR before conditional t = first t outcomes shifted in.
    ghr_values = packed_history(outcomes, predictor.history_length)[:-1]
    slots = _scalar_slots(pcs, ghr_values, predictor)
    mispredicts, _ = simulate_counter_stream(slots, outcomes,
                                             predictor._counters)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)


def _block_sampling(blocks: BlockStream) -> Tuple[np.ndarray, np.ndarray]:
    """Per-conditional block mapping shared by every blocked predictor.

    Returns ``(line_per_cond, ghr_shifts_per_cond)``: for each executed
    conditional, the cache line of its block's start address and how many
    conditional outcomes precede its block (i.e. which entry of the packed
    GHR stream the block predicted from).  Depends only on the
    segmentation, not on any predictor parameter.
    """
    trace = blocks.trace
    cond_mask = trace.cond_mask
    # Conditionals preceding each record, then sampled per block.
    cond_prefix = np.zeros(len(trace.pc) + 1, dtype=np.int64)
    np.cumsum(cond_mask, out=cond_prefix[1:])
    conds_before_block = cond_prefix[blocks.first_rec]
    conds_in_block = (cond_prefix[blocks.first_rec + blocks.n_recs]
                      - conds_before_block)

    block_of_cond = np.repeat(np.arange(len(blocks.start)), conds_in_block)
    lines = blocks.start // blocks.geometry.block_width
    return lines[block_of_cond], conds_before_block[block_of_cond]


def _blocked_slots_from(pht: BlockedPHT, pcs: np.ndarray,
                        ghr_values: np.ndarray, line_per_cond: np.ndarray,
                        shifts_per_cond: np.ndarray) -> np.ndarray:
    """Blocked-PHT slot stream from precomputed block sampling."""
    # base = (table * n_entries + ((ghr ^ line) & mask)) * block_width
    ghr_per_cond = ghr_values[shifts_per_cond]
    table_per_cond = (line_per_cond % pht.n_tables) * pht.n_entries
    entry_per_cond = (ghr_per_cond ^ line_per_cond) & pht.mask
    base_per_cond = (table_per_cond + entry_per_cond) * pht.block_width
    return base_per_cond + (pcs % pht.block_width)


def _blocked_slots(blocks: BlockStream, pht: BlockedPHT,
                   pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
    """Vectorized blocked-PHT slot stream over the conditional branches.

    Every conditional belongs to exactly one block (the segmentation's
    record windows partition the trace), its entry base comes from the
    GHR *before* that block, and its counter position from its address.
    """
    line_per_cond, shifts_per_cond = _block_sampling(blocks)
    ghr_values = packed_history(outcomes, pht.history_length)
    return _blocked_slots_from(pht, pcs, ghr_values, line_per_cond,
                               shifts_per_cond)


def evaluate_blocked_direction_vectorized(
        blocks: BlockStream, pht: BlockedPHT) -> DirectionResult:
    """Vectorized, bit-exact equivalent of
    :func:`evaluate_blocked_direction` (the PHT is updated too)."""
    pcs, outcomes = _cond_streams(blocks.trace)
    n_cond = len(pcs)
    if n_cond == 0:
        return DirectionResult(n_cond=0, mispredicts=0)
    slots = _blocked_slots(blocks, pht, pcs, outcomes)
    mispredicts, _ = simulate_counter_stream(slots, outcomes,
                                             pht._counters)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)


def direction_accuracy_sweep(
        trace: Trace, blocks: BlockStream,
        history_lengths: Iterable[int], block_width: int = 8,
) -> Dict[int, Tuple[DirectionResult, DirectionResult]]:
    """Figure 6 kernel: both schemes across history lengths, one trace.

    Returns ``{h: (blocked result, scalar result)}`` for fresh
    ``BlockedPHT(h, block_width)`` / ``ScalarPHT(h, block_width)``
    predictors.  Every (scheme, history length) stream is offset into its
    own disjoint slot range and the whole sweep is resolved in a *single*
    segmented scan, so the per-pass numpy overhead is paid once per trace
    rather than once per configuration.  Bit-exact with running the
    sequential evaluators once per history length.
    """
    hs = list(history_lengths)
    pcs, outcomes = _cond_streams(trace)
    n_cond = len(pcs)
    if n_cond == 0 or not hs:
        empty = DirectionResult(n_cond=0, mispredicts=0)
        return {h: (empty, empty) for h in hs}

    line_per_cond, shifts_per_cond = _block_sampling(blocks)
    taken = np.asarray(outcomes, dtype=bool)

    streams = []            # per-config slot arrays, config order
    sizes = []              # matching table sizes
    for h in hs:
        packed = packed_history(outcomes, h)
        pht = BlockedPHT(history_length=h, block_width=block_width)
        streams.append(_blocked_slots_from(pht, pcs, packed,
                                           line_per_cond, shifts_per_cond))
        sizes.append(pht.n_tables * pht.n_entries * pht.block_width)
        scalar = ScalarPHT(history_length=h, n_tables=block_width)
        # GHR before conditional t = first t outcomes shifted in.
        streams.append(_scalar_slots(pcs, packed[:-1], scalar))
        sizes.append(scalar.n_tables * scalar.n_entries)

    stride = max(sizes)
    all_slots = np.concatenate(
        [s + np.int64(i) * stride for i, s in enumerate(streams)])
    all_taken = np.tile(taken, len(streams))
    mispredicts = _batched_mispredicts(all_slots, all_taken, len(streams))

    results: Dict[int, Tuple[DirectionResult, DirectionResult]] = {}
    for i, h in enumerate(hs):
        blocked = DirectionResult(n_cond=n_cond,
                                  mispredicts=int(mispredicts[2 * i]))
        scalar = DirectionResult(n_cond=n_cond,
                                 mispredicts=int(mispredicts[2 * i + 1]))
        results[h] = (blocked, scalar)
    return results
