"""Direction-accuracy evaluators (Figure 6).

These run just the *conditional-branch direction* part of each scheme over a
trace — no target arrays, penalties or cycle accounting — so history-length
sweeps are cheap.  Accuracy is counted per executed conditional branch, the
paper's metric ("branch misprediction rate").

Both evaluators model the architectural (post-recovery) history: the GHR a
prediction sees reflects actual prior outcomes, which is the standard
trace-driven idealisation and matches the paper's assumption of always-
available bad-branch-recovery entries carrying a corrected GHR.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..icache.geometry import CacheGeometry
from ..isa.kinds import InstrKind
from ..trace.blocks import BlockStream
from ..trace.record import Trace
from .blocked import BlockedPHT
from .ghr import GlobalHistory
from .scalar import ScalarPHT


@dataclass(frozen=True)
class DirectionResult:
    """Outcome of a direction-accuracy run."""

    n_cond: int
    mispredicts: int

    @property
    def misprediction_rate(self) -> float:
        """Fraction of executed conditional branches mispredicted."""
        return self.mispredicts / self.n_cond if self.n_cond else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return 1.0 - self.misprediction_rate


def evaluate_scalar_direction(trace: Trace,
                              predictor: ScalarPHT) -> DirectionResult:
    """Per-branch two-level prediction with per-branch GHR update."""
    ghr = GlobalHistory(predictor.history_length)
    k_cond = int(InstrKind.COND)

    pcs = trace.pc.tolist()
    kinds = trace.kind.tolist()
    takens = trace.taken.tolist()

    n_cond = 0
    mispredicts = 0
    for i in range(len(pcs)):
        if kinds[i] != k_cond:
            continue
        pc = pcs[i]
        taken = takens[i]
        n_cond += 1
        if predictor.predicts_taken(ghr.value, pc) != taken:
            mispredicts += 1
        predictor.update(ghr.value, pc, taken)
        ghr.shift_in(taken)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)


def evaluate_blocked_direction(blocks: BlockStream,
                               pht: BlockedPHT) -> DirectionResult:
    """Blocked-PHT prediction with per-block GHR update.

    Every conditional branch in a block is predicted from the single entry
    indexed by ``GHR XOR line(block start)``; the GHR shifts once per block
    with all the block's outcomes.
    """
    geometry: CacheGeometry = blocks.geometry
    trace = blocks.trace
    k_cond = int(InstrKind.COND)
    block_width = geometry.block_width

    t_pc = trace.pc.tolist()
    t_kind = trace.kind.tolist()
    t_taken = trace.taken.tolist()

    starts = blocks.start.tolist()
    first_recs = blocks.first_rec.tolist()
    n_recs = blocks.n_recs.tolist()

    ghr = GlobalHistory(pht.history_length)
    n_cond = 0
    mispredicts = 0

    for b in range(len(starts)):
        first = first_recs[b]
        count = n_recs[b]
        if count == 0:
            continue
        base = pht.index(ghr.value, starts[b] // block_width)
        outcomes = []
        for r in range(first, first + count):
            if t_kind[r] != k_cond:
                continue
            pc = t_pc[r]
            taken = t_taken[r]
            pos = pht.position(pc)
            n_cond += 1
            if pht.predicts_taken(base, pos) != taken:
                mispredicts += 1
            pht.update(base, pos, taken)
            outcomes.append(taken)
        if outcomes:
            ghr.shift_in_block(outcomes)
    return DirectionResult(n_cond=n_cond, mispredicts=mispredicts)
