"""Global history register (GHR) with per-branch and per-block updates.

The paper's key twist on Yeh & Patt: instead of shifting in one outcome per
predicted branch, the GHR is shifted once per *block* with the outcomes of
every conditional branch the block contained ("if three branches are
predicted not taken, not taken, taken, then the GHR is shifted to the left
three bits and a 001 inserted").
"""

from __future__ import annotations

from typing import Iterable


class GlobalHistory:
    """Fixed-length shift register of branch outcomes.

    The newest outcome occupies the least-significant bit.
    """

    __slots__ = ("length", "mask", "value")

    def __init__(self, length: int, value: int = 0) -> None:
        if length < 1:
            raise ValueError("history length must be positive")
        self.length = length
        self.mask = (1 << length) - 1
        self.value = value & self.mask

    def shift_in(self, taken: bool) -> None:
        """Per-branch update (scalar two-level schemes)."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self.mask

    def shift_in_block(self, outcomes: Iterable[bool]) -> None:
        """Per-block update: shift in every outcome, oldest first."""
        value = self.value
        for taken in outcomes:
            value = (value << 1) | (1 if taken else 0)
        self.value = value & self.mask

    def index(self, address: int) -> int:
        """Gshare-style table index: ``GHR XOR address`` (McFarling [7])."""
        return (self.value ^ address) & self.mask

    def snapshot(self) -> int:
        """Current raw value (for recovery entries)."""
        return self.value

    def restore(self, value: int) -> None:
        """Restore a snapshot (bad-branch recovery, Table 4)."""
        self.value = value & self.mask

    def __repr__(self) -> str:
        return f"GlobalHistory(length={self.length}, " \
               f"value={self.value:0{self.length}b})"


def pack_block_outcomes(outcomes: Iterable[bool]) -> "BlockOutcomes":
    """Summarise a block's conditional outcomes for select-table storage."""
    n_not_taken = 0
    ends_taken = False
    for taken in outcomes:
        if taken:
            ends_taken = True
            break
        n_not_taken += 1
    return BlockOutcomes(n_not_taken, ends_taken)


class BlockOutcomes:
    """Select-table GHR-update payload (Section 3.1).

    A select-table entry cannot store the full outcome pattern cheaply; the
    paper uses ``log2(B)`` bits for the number of not-taken branches plus one
    bit for "ends in a taken branch" (the predicted exit) versus "fell
    through".  Two payloads are equal exactly when they imply the same GHR
    update, which is what the GHR-misprediction penalty checks.
    """

    __slots__ = ("n_not_taken", "ends_taken")

    def __init__(self, n_not_taken: int, ends_taken: bool) -> None:
        self.n_not_taken = n_not_taken
        self.ends_taken = ends_taken

    def apply(self, history: GlobalHistory) -> None:
        """Perform the implied GHR update."""
        history.shift_in_block(
            [False] * self.n_not_taken + ([True] if self.ends_taken else []))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockOutcomes):
            return NotImplemented
        return (self.n_not_taken == other.n_not_taken
                and self.ends_taken == other.ends_taken)

    def __hash__(self) -> int:
        return hash((self.n_not_taken, self.ends_taken))

    def __repr__(self) -> str:
        return f"BlockOutcomes(n_not_taken={self.n_not_taken}, " \
               f"ends_taken={self.ends_taken})"
