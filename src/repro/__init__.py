"""repro — reproduction of "Multiple Branch and Block Prediction".

Wallace & Bagherzadeh, Proc. 3rd International Symposium on High
Performance Computer Architecture (HPCA), 1997.

Public API tour:

* :mod:`repro.core` — the paper's contribution: blocked-PHT multiple
  branch prediction and select-table dual-block prediction engines.
* :mod:`repro.workloads` — 18 SPEC95-analog programs (see DESIGN.md).
* :mod:`repro.experiments` — one runner per paper figure/table.
* :mod:`repro.isa` / :mod:`repro.cpu` / :mod:`repro.trace` — the
  execution substrate producing dynamic control-flow traces.
* :mod:`repro.predictors` / :mod:`repro.targets` / :mod:`repro.icache`
  — predictor, target-array and cache-model building blocks.
* :mod:`repro.cost` — Section 5's hardware cost model.

Quickstart::

    from repro.core import DualBlockEngine, EngineConfig
    from repro.icache import CacheGeometry
    from repro.workloads import load_fetch_input

    geometry = CacheGeometry.self_aligned(8)
    fi = load_fetch_input("compress", geometry, max_instructions=100_000)
    stats = DualBlockEngine(EngineConfig(geometry=geometry,
                                         n_select_tables=8)).run(fi)
    print(stats.summary())
"""

__version__ = "1.0.0"
