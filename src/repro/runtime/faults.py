"""Deterministic fault injection for the sweep runtime.

Recovery code that is never exercised is recovery code that does not
work.  This module turns the environment variable ``REPRO_FAULT_SPEC``
into reproducible faults that the resilient executor and the persistent
cache must survive, so every recovery path in
:mod:`repro.runtime.resilience` is provable by an ordinary test — no
sleeps, no signals, no flaky timing.

Grammar: semicolon-separated directives, each ``action:target=value``
with an optional ``,times=N`` (default 1)::

    crash:cell=3          the worker process running sweep cell 3 dies
                          hard (``os._exit``) on the cell's first attempt
    hang:cell=5           the worker running cell 5 blocks far past any
                          reasonable deadline on its first attempt
    fail:cell=2,times=2   cell 2 raises :class:`FaultInjected` on its
                          first two attempts
    corrupt:trace=go      the cached trace artifact for workload ``go``
                          is overwritten with garbage immediately before
                          its next read (once per process)
    corrupt:blocks=go     the same for the cached block segmentation

Cell faults are gated on the *attempt number*, so a retried cell runs
clean: ``crash:cell=3`` proves the pool respawns and re-runs exactly the
lost cell, after which the sweep finishes with bit-identical numbers.
In a worker process a ``crash`` really kills the interpreter; when the
sweep runs serially there is no isolation boundary to sacrifice, so
``crash`` and ``hang`` degrade to a raised :class:`FaultInjected` and
exercise the retry path instead.

**Service-level faults** (consumed by :mod:`repro.serve`) extend the
same grammar to long-lived prediction serving, where requests — not
sweep-cell indexes — are the stable identity::

    crash:request=3f2a    the worker running any request whose digest
                          starts with ``3f2a`` dies hard on its first
                          attempt (``hang``/``fail`` analogous)
    fail:request=kmp      request faults also match by workload name,
                          so one directive can fault a whole family
    corrupt:entry=3f2a    the service's cached result payload for the
                          matching entry reads corrupt once, forcing a
                          verified recompute instead of a wrong answer

Request faults keep the attempt gating of cell faults: the service maps
``crash``/``hang`` onto the translated per-batch cell faults of the
resilient executor (so worker death and deadline kill paths are the real
ones), applies ``fail`` inside the worker body as a typed failure, and
replays still-faulted requests on its in-process degradation ladder
where every action degrades to :class:`FaultInjected` — exactly the
serial semantics above.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Environment variable holding the fault specification.
FAULTS_ENV = "REPRO_FAULT_SPEC"

#: Exit code used by injected worker crashes (recognisable in core dumps
#: of the test suite, never produced by real simulation code).
CRASH_EXIT_CODE = 86

#: How long an injected hang blocks — far beyond any sane cell deadline.
HANG_SECONDS = 600.0

_CELL_ACTIONS = ("crash", "hang", "fail")
_ARTIFACT_KINDS = ("trace", "blocks", "entry")

_CORRUPTION_MARKER = b"repro-injected-corruption"


class FaultInjected(RuntimeError):
    """The failure raised (or simulated) by an injected fault."""


@dataclass(frozen=True)
class Fault:
    """One parsed directive of ``REPRO_FAULT_SPEC``."""

    action: str   #: ``crash`` | ``hang`` | ``fail`` | ``corrupt``
    kind: str     #: ``cell`` for cell faults, else the artifact kind
    target: str   #: cell index (as text) or workload name
    times: int    #: attempts (or reads) the fault fires on


def _bad_spec(raw: str, why: str) -> ValueError:
    return ValueError(f"{FAULTS_ENV}: {why} (in {raw!r}); expected "
                      f"directives like 'crash:cell=3', 'hang:cell=5', "
                      f"'fail:cell=2,times=2' or 'corrupt:trace=go' "
                      f"separated by ';'")


def parse_spec(raw: Optional[str]) -> Tuple[Fault, ...]:
    """Parse a fault specification, raising ``ValueError`` on bad input."""
    if raw is None or not raw.strip():
        return ()
    parsed = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        action, sep, rest = chunk.partition(":")
        action = action.strip().lower()
        if not sep or not rest.strip():
            raise _bad_spec(raw, f"directive {chunk!r} has no target")
        if action not in (*_CELL_ACTIONS, "corrupt"):
            raise _bad_spec(raw, f"unknown action {action!r}")
        parts = [p.strip() for p in rest.split(",")]
        key, sep, value = parts[0].partition("=")
        key, value = key.strip().lower(), value.strip()
        if not sep or not value:
            raise _bad_spec(raw, f"directive {chunk!r} has no target value")
        times = 1
        for extra in parts[1:]:
            opt, sep, amount = extra.partition("=")
            if opt.strip().lower() != "times" or not sep:
                raise _bad_spec(raw, f"unknown option {extra!r}")
            try:
                times = int(amount.strip())
            except ValueError:
                raise _bad_spec(raw, f"times must be an integer, "
                                     f"got {amount!r}") from None
            if times < 1:
                raise _bad_spec(raw, f"times must be >= 1, got {times}")
        if action in _CELL_ACTIONS:
            if key == "request":
                # Service-level fault: the target names a request by
                # digest prefix or workload name (repro.serve).
                parsed.append(Fault(action, "request", value, times))
                continue
            if key != "cell":
                raise _bad_spec(raw, f"{action} faults target 'cell' or "
                                     f"'request', not {key!r}")
            try:
                index = int(value)
            except ValueError:
                raise _bad_spec(raw, f"cell index must be an integer, "
                                     f"got {value!r}") from None
            if index < 0:
                raise _bad_spec(raw, f"cell index must be >= 0, "
                                     f"got {index}")
            parsed.append(Fault(action, "cell", str(index), times))
        else:
            if key not in _ARTIFACT_KINDS:
                raise _bad_spec(raw, f"corrupt faults target one of "
                                     f"{_ARTIFACT_KINDS}, not {key!r}")
            parsed.append(Fault("corrupt", key, value, times))
    return tuple(parsed)


def active() -> Tuple[Fault, ...]:
    """The faults configured in the environment (parsed fresh)."""
    return parse_spec(os.environ.get(FAULTS_ENV))


def validate() -> None:
    """Raise ``ValueError`` if ``REPRO_FAULT_SPEC`` cannot be parsed."""
    active()


def apply_cell_faults(index: int, attempt: int, isolated: bool) -> None:
    """Fire any cell fault matching ``(index, attempt)``.

    ``isolated`` is True inside a sweep worker process, where a crash can
    really take the interpreter down (and a hang really blocks) without
    hurting the parent.  Serial execution has no such boundary, so hard
    faults degrade to :class:`FaultInjected` and exercise the retry path.
    """
    for fault in active():
        if fault.kind != "cell" or int(fault.target) != index:
            continue
        if attempt >= fault.times:
            continue
        if fault.action == "crash" and isolated:
            os._exit(CRASH_EXIT_CODE)
        if fault.action == "hang" and isolated:
            time.sleep(HANG_SECONDS)
        raise FaultInjected(
            f"injected {fault.action}: cell {index}, attempt {attempt}")


# ----------------------------------------------------------------------
# Service-level faults (repro.serve)
# ----------------------------------------------------------------------

def _matches_request(fault: Fault, digest: str, workload: str) -> bool:
    """Whether a request-targeted fault selects this request.

    Targets match either a digest prefix (the content address of the
    request, precise) or the workload name (coarse: one directive faults
    a whole request family).
    """
    return bool(fault.target) and (digest.startswith(fault.target)
                                   or fault.target == workload)


def request_faults(digest: str, workload: str,
                   spec: Optional[Tuple[Fault, ...]] = None,
                   ) -> Tuple[Fault, ...]:
    """The request-targeted faults selecting ``(digest, workload)``.

    ``spec`` defaults to the environment's parsed spec; the service
    passes its construction-time snapshot so mid-campaign environment
    mutation cannot change the plan.
    """
    faults_ = active() if spec is None else spec
    return tuple(f for f in faults_ if f.kind == "request"
                 and _matches_request(f, digest, workload))


def apply_request_faults(digest: str, workload: str, attempt: int,
                         hard: bool,
                         spec: Optional[Tuple[Fault, ...]] = None) -> None:
    """Fire request faults matching ``(digest, workload, attempt)``.

    ``hard=False`` is the worker-side call inside the request body:
    only ``fail`` directives fire (as :class:`FaultInjected`), because
    ``crash``/``hang`` are delivered through the translated per-batch
    cell faults of the resilient executor — the worker genuinely dies
    or wedges there.  ``hard=True`` is the service's in-process
    degradation ladder, where — exactly like serial sweeps — every
    action degrades to a raised :class:`FaultInjected`.
    """
    for fault in request_faults(digest, workload, spec):
        if attempt >= fault.times:
            continue
        if fault.action == "fail" or hard:
            raise FaultInjected(
                f"injected {fault.action}: request {digest[:12]} "
                f"({workload}), attempt {attempt}")


#: (kind, name) -> number of times a corruption fault already fired,
#: so ``times=N`` is honoured within one process.
_corruptions_fired: Dict[Tuple[str, str], int] = {}


def corrupt_artifact(path: Path, kind: str, name: str) -> None:
    """Overwrite a cache artifact with garbage if a fault targets it."""
    for fault in active():
        if fault.action != "corrupt" or fault.kind != kind \
                or fault.target != name:
            continue
        key = (kind, name)
        if _corruptions_fired.get(key, 0) >= fault.times:
            continue
        if not path.exists():
            continue
        path.write_bytes(_CORRUPTION_MARKER)
        _corruptions_fired[key] = _corruptions_fired.get(key, 0) + 1


def corrupt_entry(digest: str, workload: str,
                  spec: Optional[Tuple[Fault, ...]] = None) -> bool:
    """Whether a ``corrupt:entry`` fault fires for this store read.

    The serve result store calls this before serving a cached payload;
    a ``True`` return means the store must hand back corrupted bytes so
    its checksum verification path is exercised.  ``times=N`` is
    honoured per target within one process, mirroring artifact
    corruption.
    """
    faults_ = active() if spec is None else spec
    for fault in faults_:
        if fault.action != "corrupt" or fault.kind != "entry":
            continue
        if not _matches_request(fault, digest, workload):
            continue
        key = ("entry", fault.target)
        if _corruptions_fired.get(key, 0) >= fault.times:
            continue
        _corruptions_fired[key] = _corruptions_fired.get(key, 0) + 1
        return True
    return False


def reset() -> None:
    """Forget which corruption faults already fired (tests)."""
    _corruptions_fired.clear()
