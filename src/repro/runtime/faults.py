"""Deterministic fault injection for the sweep runtime.

Recovery code that is never exercised is recovery code that does not
work.  This module turns the environment variable ``REPRO_FAULT_SPEC``
into reproducible faults that the resilient executor and the persistent
cache must survive, so every recovery path in
:mod:`repro.runtime.resilience` is provable by an ordinary test — no
sleeps, no signals, no flaky timing.

Grammar: semicolon-separated directives, each ``action:target=value``
with an optional ``,times=N`` (default 1)::

    crash:cell=3          the worker process running sweep cell 3 dies
                          hard (``os._exit``) on the cell's first attempt
    hang:cell=5           the worker running cell 5 blocks far past any
                          reasonable deadline on its first attempt
    fail:cell=2,times=2   cell 2 raises :class:`FaultInjected` on its
                          first two attempts
    corrupt:trace=go      the cached trace artifact for workload ``go``
                          is overwritten with garbage immediately before
                          its next read (once per process)
    corrupt:blocks=go     the same for the cached block segmentation

Cell faults are gated on the *attempt number*, so a retried cell runs
clean: ``crash:cell=3`` proves the pool respawns and re-runs exactly the
lost cell, after which the sweep finishes with bit-identical numbers.
In a worker process a ``crash`` really kills the interpreter; when the
sweep runs serially there is no isolation boundary to sacrifice, so
``crash`` and ``hang`` degrade to a raised :class:`FaultInjected` and
exercise the retry path instead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Environment variable holding the fault specification.
FAULTS_ENV = "REPRO_FAULT_SPEC"

#: Exit code used by injected worker crashes (recognisable in core dumps
#: of the test suite, never produced by real simulation code).
CRASH_EXIT_CODE = 86

#: How long an injected hang blocks — far beyond any sane cell deadline.
HANG_SECONDS = 600.0

_CELL_ACTIONS = ("crash", "hang", "fail")
_ARTIFACT_KINDS = ("trace", "blocks")

_CORRUPTION_MARKER = b"repro-injected-corruption"


class FaultInjected(RuntimeError):
    """The failure raised (or simulated) by an injected fault."""


@dataclass(frozen=True)
class Fault:
    """One parsed directive of ``REPRO_FAULT_SPEC``."""

    action: str   #: ``crash`` | ``hang`` | ``fail`` | ``corrupt``
    kind: str     #: ``cell`` for cell faults, else the artifact kind
    target: str   #: cell index (as text) or workload name
    times: int    #: attempts (or reads) the fault fires on


def _bad_spec(raw: str, why: str) -> ValueError:
    return ValueError(f"{FAULTS_ENV}: {why} (in {raw!r}); expected "
                      f"directives like 'crash:cell=3', 'hang:cell=5', "
                      f"'fail:cell=2,times=2' or 'corrupt:trace=go' "
                      f"separated by ';'")


def parse_spec(raw: Optional[str]) -> Tuple[Fault, ...]:
    """Parse a fault specification, raising ``ValueError`` on bad input."""
    if raw is None or not raw.strip():
        return ()
    parsed = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        action, sep, rest = chunk.partition(":")
        action = action.strip().lower()
        if not sep or not rest.strip():
            raise _bad_spec(raw, f"directive {chunk!r} has no target")
        if action not in (*_CELL_ACTIONS, "corrupt"):
            raise _bad_spec(raw, f"unknown action {action!r}")
        parts = [p.strip() for p in rest.split(",")]
        key, sep, value = parts[0].partition("=")
        key, value = key.strip().lower(), value.strip()
        if not sep or not value:
            raise _bad_spec(raw, f"directive {chunk!r} has no target value")
        times = 1
        for extra in parts[1:]:
            opt, sep, amount = extra.partition("=")
            if opt.strip().lower() != "times" or not sep:
                raise _bad_spec(raw, f"unknown option {extra!r}")
            try:
                times = int(amount.strip())
            except ValueError:
                raise _bad_spec(raw, f"times must be an integer, "
                                     f"got {amount!r}") from None
            if times < 1:
                raise _bad_spec(raw, f"times must be >= 1, got {times}")
        if action in _CELL_ACTIONS:
            if key != "cell":
                raise _bad_spec(raw, f"{action} faults target 'cell', "
                                     f"not {key!r}")
            try:
                index = int(value)
            except ValueError:
                raise _bad_spec(raw, f"cell index must be an integer, "
                                     f"got {value!r}") from None
            if index < 0:
                raise _bad_spec(raw, f"cell index must be >= 0, "
                                     f"got {index}")
            parsed.append(Fault(action, "cell", str(index), times))
        else:
            if key not in _ARTIFACT_KINDS:
                raise _bad_spec(raw, f"corrupt faults target one of "
                                     f"{_ARTIFACT_KINDS}, not {key!r}")
            parsed.append(Fault("corrupt", key, value, times))
    return tuple(parsed)


def active() -> Tuple[Fault, ...]:
    """The faults configured in the environment (parsed fresh)."""
    return parse_spec(os.environ.get(FAULTS_ENV))


def validate() -> None:
    """Raise ``ValueError`` if ``REPRO_FAULT_SPEC`` cannot be parsed."""
    active()


def apply_cell_faults(index: int, attempt: int, isolated: bool) -> None:
    """Fire any cell fault matching ``(index, attempt)``.

    ``isolated`` is True inside a sweep worker process, where a crash can
    really take the interpreter down (and a hang really blocks) without
    hurting the parent.  Serial execution has no such boundary, so hard
    faults degrade to :class:`FaultInjected` and exercise the retry path.
    """
    for fault in active():
        if fault.kind != "cell" or int(fault.target) != index:
            continue
        if attempt >= fault.times:
            continue
        if fault.action == "crash" and isolated:
            os._exit(CRASH_EXIT_CODE)
        if fault.action == "hang" and isolated:
            time.sleep(HANG_SECONDS)
        raise FaultInjected(
            f"injected {fault.action}: cell {index}, attempt {attempt}")


#: (kind, name) -> number of times a corruption fault already fired,
#: so ``times=N`` is honoured within one process.
_corruptions_fired: Dict[Tuple[str, str], int] = {}


def corrupt_artifact(path: Path, kind: str, name: str) -> None:
    """Overwrite a cache artifact with garbage if a fault targets it."""
    for fault in active():
        if fault.action != "corrupt" or fault.kind != kind \
                or fault.target != name:
            continue
        key = (kind, name)
        if _corruptions_fired.get(key, 0) >= fault.times:
            continue
        if not path.exists():
            continue
        path.write_bytes(_CORRUPTION_MARKER)
        _corruptions_fired[key] = _corruptions_fired.get(key, 0) + 1


def reset() -> None:
    """Forget which corruption faults already fired (tests)."""
    _corruptions_fired.clear()
