"""Deterministic discrete-event simulation of the shard scheduler.

The scheduler of :mod:`repro.runtime.shard` is recovery logic, and
recovery logic exercised only by real processes is recovery logic
tested by luck: crashes land where the OS scheduler puts them, hangs
need wall-clock timeouts, and a failure seen once in CI may never
reproduce.  This module is the simulator-of-the-simulator: it drives
the *real* :class:`~repro.runtime.shard.ShardScheduler` — the same
class the process driver uses, byte for byte — through its injected
clock boundary, replacing workers with a seeded model (per-cell costs,
per-worker speeds, per-attempt crash/hang fates) and time with a
virtual clock advanced event by event.

Everything is derived from ``SimSpec.seed`` through string-seeded
``random.Random`` instances (stable across processes and
``PYTHONHASHSEED``), so a simulation is a pure function of its spec:
same spec, same event log, every time.  That turns scheduling
*invariants* into fast assertions (:func:`verify_invariants`):

* every cell completes exactly once (none lost, none duplicated), or is
  properly failed after its retry budget;
* steals only ever take from the longest queue, and only when the
  thief's home shards are empty — checked against the queue-depth
  snapshot recorded at each steal, not against trust;
* per-cell attempts never exceed ``retries + 1``;
* on fault-free uniform-speed runs, makespan stays within the greedy
  list-scheduling bound of twice the lower bound
  (:func:`makespan_lower_bound`).

Event traces serialize to JSON (:func:`save_trace`) and replay
bit-exact (:func:`replay_trace`), giving CI a replayable corpus: a
failing schedule uploads as an artifact and re-runs anywhere.

``python -m repro.runtime.sim --seeds N`` runs the seeded invariant
battery (crash, hang, straggler and steady scenarios per seed, each
simulated twice to prove determinism); ``--replay <trace.json>``
re-simulates a saved trace and diffs the event logs.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from . import shard
from .resilience import FAILED, CellOutcome

#: Trace schema version; readers refuse versions they do not understand.
TRACE_FORMAT = 1

COST_MODELS = ("uniform", "skewed", "bimodal")
SPEED_MODELS = ("uniform", "mixed")

#: Fixed backoff for simulated retries — deliberately *not* the
#: patchable constants of :mod:`repro.runtime.resilience`, so committed
#: traces stay stable when tests zero the real backoff.
_SIM_BACKOFF_BASE = 0.05
_SIM_BACKOFF_CAP = 2.0

#: Greedy list scheduling (work stealing never idles a worker while any
#: queue is non-empty) stays within ``sum/m + max <= 2x`` the lower
#: bound on uniform-speed fault-free runs.
MAKESPAN_FACTOR = 2.0


def _sim_backoff(attempts_done: int) -> float:
    return min(_SIM_BACKOFF_CAP, _SIM_BACKOFF_BASE * (2 ** attempts_done))


class SimSpecError(ValueError):
    """A simulation spec is internally inconsistent."""


@dataclass(frozen=True)
class SimSpec:
    """Everything that determines one simulated schedule.

    ``crash_rate`` / ``hang_rate`` are per-*attempt* probabilities: a
    crashed attempt dies partway through its cell, a hung attempt never
    finishes (so ``hang_rate > 0`` requires a ``timeout`` for the
    deadline kill to rescue it).  ``respawn_delay`` is the virtual time
    a killed worker takes to come back.
    """

    seed: int
    n_cells: int
    n_shards: int
    n_workers: int
    policy: str = shard.DEFAULT_POLICY
    cost_model: str = "uniform"
    speed_model: str = "uniform"
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    retries: int = 2
    timeout: Optional[float] = None
    respawn_delay: float = 0.25

    def validate(self) -> None:
        if self.n_cells < 1:
            raise SimSpecError("n_cells must be >= 1")
        if self.n_shards < 1:
            raise SimSpecError("n_shards must be >= 1")
        if self.n_workers < 1:
            raise SimSpecError("n_workers must be >= 1")
        if self.policy not in shard.POLICIES:
            raise SimSpecError(f"unknown policy {self.policy!r}")
        if self.cost_model not in COST_MODELS:
            raise SimSpecError(f"unknown cost model {self.cost_model!r}")
        if self.speed_model not in SPEED_MODELS:
            raise SimSpecError(
                f"unknown speed model {self.speed_model!r}")
        if not 0.0 <= self.crash_rate < 1.0:
            raise SimSpecError("crash_rate must be in [0, 1)")
        if not 0.0 <= self.hang_rate < 1.0:
            raise SimSpecError("hang_rate must be in [0, 1)")
        if self.crash_rate + self.hang_rate >= 1.0:
            raise SimSpecError("crash_rate + hang_rate must be < 1")
        if self.retries < 0:
            raise SimSpecError("retries must not be negative")
        if self.timeout is not None and self.timeout <= 0:
            raise SimSpecError("timeout must be positive")
        if self.hang_rate > 0 and self.timeout is None:
            raise SimSpecError(
                "hang_rate > 0 requires a timeout: a hung worker with "
                "no deadline would stall the schedule forever")
        if self.respawn_delay < 0:
            raise SimSpecError("respawn_delay must not be negative")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimSpec":
        known = set(cls.__dataclass_fields__)
        extra = sorted(set(data) - known)
        if extra:
            raise SimSpecError(f"unknown spec fields: {extra}")
        spec = cls(**data)
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# Seeded model derivations (pure functions of the spec)
# ----------------------------------------------------------------------

def cell_costs(spec: SimSpec) -> List[float]:
    """Per-cell virtual cost, derived from the seed."""
    rng = random.Random(f"{spec.seed}:costs")
    if spec.cost_model == "uniform":
        return [1.0] * spec.n_cells
    if spec.cost_model == "bimodal":
        return [8.0 if rng.random() < 0.1 else 1.0
                for _ in range(spec.n_cells)]
    # skewed: heavy-tailed cell costs, capped so one monster cell cannot
    # make the virtual schedule astronomically long.
    return [round(min(20.0, 0.25 + rng.paretovariate(1.3)), 6)
            for _ in range(spec.n_cells)]


def worker_speeds(spec: SimSpec) -> List[float]:
    """Per-worker speed factor (cells take ``cost / speed`` time)."""
    rng = random.Random(f"{spec.seed}:speeds")
    if spec.speed_model == "uniform":
        return [1.0] * spec.n_workers
    return [round(0.5 + 1.5 * rng.random(), 6)
            for _ in range(spec.n_workers)]


def attempt_fate(spec: SimSpec, cell: int, attempt: int,
                 worker: int) -> Tuple[str, float]:
    """Fate of one attempt: ``('ok'|'crash'|'hang', crash_fraction)``.

    Keyed by ``(seed, cell, attempt, worker)`` so fates are stable under
    schedule perturbations that keep an attempt on the same worker, and
    independent draws otherwise.
    """
    rng = random.Random(f"{spec.seed}:fate:{cell}:{attempt}:{worker}")
    draw = rng.random()
    if draw < spec.crash_rate:
        return "crash", rng.uniform(0.1, 0.9)
    if draw < spec.crash_rate + spec.hang_rate:
        return "hang", 0.0
    return "ok", 0.0


def makespan_lower_bound(spec: SimSpec) -> float:
    """Classic two-sided bound: total work / capacity vs. longest cell."""
    costs = cell_costs(spec)
    speeds = worker_speeds(spec)
    return max(sum(costs) / sum(speeds), max(costs) / max(speeds))


# ----------------------------------------------------------------------
# Events and results
# ----------------------------------------------------------------------

#: Event kinds, in the order they can occur for one assignment.
EVENT_KINDS = ("assign", "done", "crash", "timeout", "fail", "respawn")


@dataclass(frozen=True)
class SimEvent:
    """One scheduling event at one virtual instant."""

    kind: str
    time: float
    worker: int
    cell: int
    shard: int
    attempt: int
    stolen: bool

    def row(self) -> List[Any]:
        return [self.kind, self.time, self.worker, self.cell,
                self.shard, self.attempt, self.stolen]

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "SimEvent":
        kind, time, worker, cell, shard_id, attempt, stolen = row
        return cls(kind=str(kind), time=float(time), worker=int(worker),
                   cell=int(cell), shard=int(shard_id),
                   attempt=int(attempt), stolen=bool(stolen))


@dataclass
class SimResult:
    """Everything one simulation produced."""

    spec: SimSpec
    plan: shard.ShardPlan
    events: List[SimEvent]
    outcomes: List[CellOutcome]
    results: List[Any]
    steals: List[shard.StealRecord]
    completions: List[int]      #: per-cell completion count
    makespan: float
    interrupted: bool = False   #: stopped at ``stop_at`` mid-schedule

    @property
    def completed(self) -> List[int]:
        return [i for i, n in enumerate(self.completions) if n > 0]

    @property
    def failed(self) -> List[int]:
        return [i for i, o in enumerate(self.outcomes)
                if o.status == FAILED]

    def event_rows(self) -> List[List[Any]]:
        return [event.row() for event in self.events]


class _VirtualClock:
    """Monotone virtual time, advanced only by the event loop."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t > self._now:
            self._now = t


def _default_result(index: int) -> Tuple[str, int]:
    return ("cell", index)


# ----------------------------------------------------------------------
# The simulation loop
# ----------------------------------------------------------------------

def simulate(spec: SimSpec, cells: Optional[Sequence] = None,
             execute: Optional[Callable[[Any], Any]] = None,
             done: Sequence[int] = (),
             stop_at: Optional[float] = None) -> SimResult:
    """Run one virtual schedule of the real scheduler under ``spec``.

    ``cells`` (default ``range(n_cells)``) feed the partitioner and, at
    each completion event, the optional ``execute`` callback — which is
    how :mod:`repro.qa` runs *real* sweep cells under simulated
    schedules.  ``done`` pre-marks cells as resumed from a previous run
    (the per-shard journal, virtually); ``stop_at`` interrupts the
    schedule at a virtual instant, modelling a mid-sweep kill.
    """
    spec.validate()
    if cells is None:
        cells = list(range(spec.n_cells))
    if len(cells) != spec.n_cells:
        raise SimSpecError(
            f"got {len(cells)} cells for a spec with "
            f"n_cells={spec.n_cells}")
    costs = cell_costs(spec)
    speeds = worker_speeds(spec)
    plan = shard.partition(cells, spec.n_shards, spec.policy,
                           costs=costs)
    outcomes = [CellOutcome(i) for i in range(spec.n_cells)]
    done_set = set(done)
    for index in done_set:
        outcomes[index].resumed = True
    pending = [i for i in range(spec.n_cells) if i not in done_set]
    clock = _VirtualClock()
    scheduler = shard.ShardScheduler(plan, pending, spec.n_workers,
                                     spec.retries, clock=clock.now,
                                     outcomes=outcomes,
                                     backoff=_sim_backoff)

    heap: List[Tuple[float, int, str, int]] = []
    seq = 0
    events: List[SimEvent] = []
    busy: Dict[int, shard.Assignment] = {}
    alive = [True] * spec.n_workers
    results: List[Any] = [None] * spec.n_cells
    completions = [0] * spec.n_cells
    interrupted = False

    def push(at: float, kind: str, worker: int) -> None:
        nonlocal seq
        heapq.heappush(heap, (at, seq, kind, worker))
        seq += 1

    def emit(kind: str, assignment: shard.Assignment) -> None:
        events.append(SimEvent(
            kind=kind, time=clock.now(), worker=assignment.worker,
            cell=assignment.cell, shard=assignment.shard,
            attempt=assignment.attempt, stolen=assignment.stolen))

    def fill() -> None:
        for worker in range(spec.n_workers):
            if not alive[worker] or worker in busy:
                continue
            assignment = scheduler.acquire(worker)
            if assignment is None:
                continue
            busy[worker] = assignment
            emit("assign", assignment)
            fate, fraction = attempt_fate(spec, assignment.cell,
                                          assignment.attempt, worker)
            duration = costs[assignment.cell] / speeds[worker]
            if fate == "crash":
                push(clock.now() + duration * fraction, "crash", worker)
            elif fate == "hang":
                push(clock.now() + float(spec.timeout or 0.0),
                     "timeout", worker)
            elif spec.timeout is not None and duration > spec.timeout:
                # A cell genuinely slower than the deadline is killed at
                # the deadline, exactly like the real driver would.
                push(clock.now() + spec.timeout, "timeout", worker)
            else:
                push(clock.now() + duration, "done", worker)

    while True:
        fill()
        if scheduler.finished:
            break
        if not heap:
            ready_at = scheduler.next_ready_at()
            if ready_at is None:
                break  # wedged — verify_invariants will name the cells
            clock.advance_to(ready_at)
            continue
        at, _, kind, worker = heapq.heappop(heap)
        if stop_at is not None and at > stop_at:
            interrupted = True
            break
        clock.advance_to(at)
        if kind == "respawn":
            alive[worker] = True
            events.append(SimEvent(kind="respawn", time=at,
                                   worker=worker, cell=-1, shard=-1,
                                   attempt=0, stolen=False))
            continue
        assignment = busy.pop(worker)
        if kind == "done":
            scheduler.complete(worker)
            outcomes[assignment.cell].finish()
            completions[assignment.cell] += 1
            value = (execute(cells[assignment.cell])
                     if execute is not None
                     else _default_result(assignment.cell))
            results[assignment.cell] = value
            emit("done", assignment)
        else:  # crash | timeout: the worker is killed and respawned
            emit(kind, assignment)
            error = ("worker crashed mid-cell" if kind == "crash"
                     else f"cell exceeded {spec.timeout}s deadline")
            verdict = scheduler.fail(worker, error,
                                     timed_out=(kind == "timeout"))
            if verdict == shard.GAVE_UP:
                emit("fail", assignment)
            alive[worker] = False
            push(at + spec.respawn_delay, "respawn", worker)

    return SimResult(spec=spec, plan=plan, events=events,
                     outcomes=outcomes, results=results,
                     steals=list(scheduler.steals),
                     completions=completions, makespan=clock.now(),
                     interrupted=interrupted)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------

def verify_invariants(result: SimResult) -> List[str]:
    """Scheduling-invariant violations in ``result`` (empty = clean)."""
    problems: List[str] = []
    spec = result.spec
    for index, outcome in enumerate(result.outcomes):
        n = result.completions[index]
        if outcome.resumed:
            if n != 0:
                problems.append(
                    f"cell {index} resumed from the journal yet "
                    f"re-executed {n} time(s)")
            continue
        if outcome.status == FAILED:
            if n != 0:
                problems.append(
                    f"cell {index} marked failed after {n} completion(s)")
            continue
        if n == 0 and not result.interrupted:
            problems.append(f"cell {index} lost: never completed")
        elif n > 1:
            problems.append(f"cell {index} duplicated: "
                            f"completed {n} times")
        if outcome.attempts > spec.retries + 1:
            problems.append(
                f"cell {index} ran {outcome.attempts} attempts "
                f"(budget {spec.retries + 1})")
    for record in result.steals:
        deepest = max(record.depths)
        if record.depths[record.shard] != deepest or deepest == 0:
            problems.append(
                f"steal of cell {record.cell} took from shard "
                f"{record.shard} (depth {record.depths[record.shard]}) "
                f"with queues {record.depths}: not the longest")
        homes = shard.home_shards(record.worker % spec.n_workers,
                                  result.plan.n_shards, spec.n_workers)
        busy_homes = [s for s in homes if record.depths[s] > 0]
        if busy_homes:
            problems.append(
                f"worker {record.worker} stole cell {record.cell} "
                f"while its home shard(s) {busy_homes} still had work")
    return problems


def check_resume_equivalence(spec: SimSpec, resume_shards: int,
                             cells: Optional[Sequence] = None,
                             execute: Optional[Callable] = None,
                             ) -> Optional[str]:
    """Kill a schedule mid-flight, resume with a *different* shard
    count, and require the merged results to match an uninterrupted run
    bit for bit.  Returns ``None`` on equivalence, else a reason.
    """
    full = simulate(spec, cells=cells, execute=execute)
    if full.failed:
        return None  # permanent failures make merge comparison moot
    partial = simulate(spec, cells=cells, execute=execute,
                       stop_at=full.makespan / 2)
    resumed_spec = dataclasses.replace(spec, n_shards=resume_shards)
    resumed = simulate(resumed_spec, cells=cells, execute=execute,
                       done=partial.completed)
    problems = verify_invariants(resumed)
    if problems:
        return f"resumed schedule violated invariants: {problems[0]}"
    merged = [partial.results[i] if partial.completions[i] else
              resumed.results[i] for i in range(spec.n_cells)]
    if merged != full.results:
        bad = next(i for i in range(spec.n_cells)
                   if merged[i] != full.results[i])
        return (f"cell {bad} merged differently after resume: "
                f"{merged[bad]!r} != {full.results[bad]!r}")
    return None


# ----------------------------------------------------------------------
# Replayable event traces
# ----------------------------------------------------------------------

def trace_payload(result: SimResult) -> Dict[str, Any]:
    """JSON document for one simulation's event trace."""
    return {
        "format": TRACE_FORMAT,
        "spec": result.spec.to_dict(),
        "events": result.event_rows(),
        "makespan": result.makespan,
        "n_steals": len(result.steals),
        "completed": result.completed,
        "failed": result.failed,
    }


def save_trace(result: SimResult, path: Union[str, Path]) -> Path:
    """Write one trace as pretty JSON; returns the path written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace_payload(result), indent=2,
                              sort_keys=True) + "\n", encoding="ascii")
    return out


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one trace document."""
    data = json.loads(Path(path).read_text(encoding="ascii"))
    if not isinstance(data, dict):
        raise SimSpecError(f"{path}: trace must be a JSON object")
    version = data.get("format")
    if version != TRACE_FORMAT:
        raise SimSpecError(
            f"{path}: unsupported trace format {version!r} "
            f"(this build reads format {TRACE_FORMAT})")
    data["spec"] = SimSpec.from_dict(dict(data.get("spec", {})))
    return data


def replay_trace(path: Union[str, Path]) -> Optional[str]:
    """Re-simulate a saved trace; ``None`` when it reproduces exactly."""
    data = load_trace(path)
    result = simulate(data["spec"])
    fresh = result.event_rows()
    saved = [SimEvent.from_row(row).row() for row in data["events"]]
    if fresh != saved:
        limit = min(len(fresh), len(saved))
        where = next((i for i in range(limit) if fresh[i] != saved[i]),
                     limit)
        return (f"event log diverged at event {where}: re-simulation "
                f"{fresh[where] if where < len(fresh) else '<end>'} vs "
                f"trace {saved[where] if where < len(saved) else '<end>'}")
    if result.makespan != data.get("makespan"):
        return (f"makespan diverged: re-simulation {result.makespan} "
                f"vs trace {data.get('makespan')}")
    return None


# ----------------------------------------------------------------------
# The seeded invariant battery (CI entry point)
# ----------------------------------------------------------------------

#: Scenario matrix every battery seed runs: steady-state, stragglers,
#: crash storms, and hangs rescued by deadline kills.
SCENARIOS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("steady", dict(n_cells=24, n_shards=4, n_workers=4)),
    ("skewed", dict(n_cells=32, n_shards=4, n_workers=3,
                    cost_model="skewed")),
    ("crashy", dict(n_cells=20, n_shards=4, n_workers=4,
                    crash_rate=0.25, retries=5)),
    ("hangy", dict(n_cells=16, n_shards=3, n_workers=4,
                   hang_rate=0.2, timeout=3.0, retries=5,
                   speed_model="mixed")),
)


def run_battery(seeds: int,
                traces_dir: Optional[Union[str, Path]] = None,
                log: Optional[Callable[[str], None]] = None,
                ) -> List[Tuple[str, int, str]]:
    """Run the invariant battery; returns ``(scenario, seed, problem)``
    violations (empty = clean).  Failing schedules are saved under
    ``traces_dir`` for replay.
    """
    say = log or (lambda _msg: None)
    violations: List[Tuple[str, int, str]] = []

    def flag(name: str, seed: int, problem: str,
             result: SimResult) -> None:
        violations.append((name, seed, problem))
        say(f"FAIL {name} seed {seed}: {problem}")
        if traces_dir is not None:
            path = Path(traces_dir) / f"sim-{name}-seed{seed}.json"
            save_trace(result, path)
            say(f"  trace written: {path}")

    for seed in range(seeds):
        for name, params in SCENARIOS:
            spec = SimSpec(seed=seed, **params)
            result = simulate(spec)
            for problem in verify_invariants(result):
                flag(name, seed, problem, result)
            rerun = simulate(spec)
            if rerun.event_rows() != result.event_rows():
                flag(name, seed,
                     "nondeterministic: two simulations of the same "
                     "spec produced different event logs", result)
            if name == "steady":
                bound = MAKESPAN_FACTOR * makespan_lower_bound(spec)
                if result.makespan > bound + 1e-9:
                    flag(name, seed,
                         f"makespan {result.makespan:.3f} exceeds "
                         f"{MAKESPAN_FACTOR}x lower bound "
                         f"{bound:.3f}", result)
            if name == "skewed":
                reason = check_resume_equivalence(
                    spec, resume_shards=spec.n_shards + 1)
                if reason is not None:
                    flag(name, seed, f"resume: {reason}", result)
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: seeded invariant battery, or single-trace replay."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.runtime.sim",
        description="Discrete-event testbed for the shard scheduler")
    parser.add_argument("--seeds", type=int, default=50,
                        help="seeds to sweep through the scenario "
                             "battery (default 50)")
    parser.add_argument("--traces", default=None, metavar="DIR",
                        help="directory for failing-schedule trace "
                             "artifacts")
    parser.add_argument("--replay", default=None, metavar="TRACE",
                        help="re-simulate one saved trace and diff "
                             "its event log instead of running the "
                             "battery")
    args = parser.parse_args(argv)

    if args.replay is not None:
        reason = replay_trace(args.replay)
        if reason is None:
            print(f"{args.replay}: replays bit-exact")
            return 0
        print(f"{args.replay}: {reason}")
        return 1

    violations = run_battery(args.seeds, traces_dir=args.traces,
                             log=print)
    n_runs = args.seeds * len(SCENARIOS)
    if violations:
        print(f"{len(violations)} invariant violation(s) across "
              f"{n_runs} simulated schedules")
        return 1
    print(f"{n_runs} simulated schedules ({args.seeds} seeds x "
          f"{len(SCENARIOS)} scenarios, each run twice): all "
          f"invariants hold")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
