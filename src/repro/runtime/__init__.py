"""Sweep runtime: parallel execution, resilience and persistent caching.

Three pieces:

* :mod:`repro.runtime.cache` — a persistent on-disk trace + segmentation
  cache (``REPRO_CACHE_DIR``, default ``~/.cache/repro``) layered under
  the in-memory caches of :mod:`repro.workloads.registry`, with atomic
  writes safe for concurrent workers, checksum verification, quarantine
  of corrupt artifacts and bounded-size eviction.
* :mod:`repro.runtime.executor` — a deterministic process-parallel sweep
  executor (``REPRO_JOBS``) that fans out (engine config x workload)
  cells and merges per-program statistics back in canonical order, so
  parallel runs are bit-identical to serial ones.
* :mod:`repro.runtime.resilience` — the fault-tolerant execution loop
  under the executor: per-cell deadlines (``REPRO_CELL_TIMEOUT``),
  bounded retries (``REPRO_RETRIES``), crash recovery with pool
  respawn, journaled checkpoint/resume (``REPRO_RESUME``) and the
  :class:`~repro.runtime.resilience.SweepReport` record of what
  degraded.  :mod:`repro.runtime.faults` injects deterministic faults
  (``REPRO_FAULT_SPEC``) so every recovery path stays testable.
* :mod:`repro.runtime.shard` — the work-stealing shard scheduler
  (``REPRO_SHARDS``/``REPRO_SHARD_POLICY``): cells partition into
  shards, workers drain their home shards and steal from stragglers,
  and journaled sweeps checkpoint per shard while staying bit-exact
  with the serial path under any shard count.
  :mod:`repro.runtime.sim` drives the same scheduler through a seeded
  discrete-event simulation so scheduling invariants are fast,
  deterministic tests.

The executor is re-exported lazily: the workload registry imports
:mod:`repro.runtime.cache` at module load, and eagerly importing the
executor here (which itself reaches back into the workloads package from
its workers) would create an import cycle.
"""

from __future__ import annotations

# Light modules only (no workloads import — that would be circular).
from . import cache, faults, profile  # noqa: F401

_EXECUTOR_NAMES = ("JOBS_ENV", "SuiteSpec", "execute", "n_jobs",
                   "run_suite_specs", "unpicklable_reason",
                   "warm_fetch_inputs")

_RESILIENCE_NAMES = ("CellOutcome", "Journal", "SweepError", "SweepReport",
                     "SweepResult", "cell_timeout", "drain_reports",
                     "resume_enabled", "retry_limit", "run_resilient")

_SHARD_NAMES = ("SHARDS_ENV", "ShardPlan", "ShardScheduler", "partition",
                "shard_count", "shard_policy")

_SIM_NAMES = ("SimSpec", "simulate", "verify_invariants")

__all__ = ["cache", "executor", "faults", "profile", "resilience",
           "shard", "sim",
           *_EXECUTOR_NAMES, *_RESILIENCE_NAMES, *_SHARD_NAMES,
           *_SIM_NAMES]


def __getattr__(name: str):
    # import_module, not ``from . import ...``: the latter re-enters
    # this ``__getattr__`` via hasattr and recurses.
    import importlib

    if name == "executor" or name in _EXECUTOR_NAMES:
        executor = importlib.import_module(".executor", __name__)
        if name == "executor":
            return executor
        return getattr(executor, name)
    if name == "resilience" or name in _RESILIENCE_NAMES:
        resilience = importlib.import_module(".resilience", __name__)
        if name == "resilience":
            return resilience
        return getattr(resilience, name)
    if name == "shard" or name in _SHARD_NAMES:
        shard = importlib.import_module(".shard", __name__)
        if name == "shard":
            return shard
        return getattr(shard, name)
    if name == "sim" or name in _SIM_NAMES:
        sim = importlib.import_module(".sim", __name__)
        if name == "sim":
            return sim
        return getattr(sim, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
