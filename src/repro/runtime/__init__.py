"""Sweep runtime: parallel execution and persistent caching.

Two pieces:

* :mod:`repro.runtime.cache` — a persistent on-disk trace + segmentation
  cache (``REPRO_CACHE_DIR``, default ``~/.cache/repro``) layered under
  the in-memory caches of :mod:`repro.workloads.registry`, with atomic
  writes safe for concurrent workers.
* :mod:`repro.runtime.executor` — a deterministic process-parallel sweep
  executor (``REPRO_JOBS``) that fans out (engine config x workload)
  cells and merges per-program statistics back in canonical order, so
  parallel runs are bit-identical to serial ones.

The executor is re-exported lazily: the workload registry imports
:mod:`repro.runtime.cache` at module load, and eagerly importing the
executor here (which itself reaches back into the workloads package from
its workers) would create an import cycle.
"""

from __future__ import annotations

from . import cache  # noqa: F401  (light: no repro.workloads dependency)

_EXECUTOR_NAMES = ("JOBS_ENV", "SuiteSpec", "execute", "n_jobs",
                   "run_suite_specs", "warm_fetch_inputs")

__all__ = ["cache", "executor", *_EXECUTOR_NAMES]


def __getattr__(name: str):
    if name == "executor" or name in _EXECUTOR_NAMES:
        from . import executor

        if name == "executor":
            return executor
        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
