"""Persistent on-disk trace and segmentation cache.

Interpreting a workload analog is by far the most expensive step of any
sweep: every experiment re-executes 18 programs for ``REPRO_TRACE_LEN``
instructions before a single prediction is made.  This module persists the
two interpreter-derived artifacts — the compressed control-flow
:class:`~repro.trace.record.Trace` and its per-geometry block segmentation
— as ``.npz`` files so that warm runs skip the interpreter (and the
segmenter) entirely.

Layout and keying:

* Directory: ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``); set it to
  the empty string, ``0``, ``off`` or ``none`` to disable persistence.
* Traces: ``traces/<name>-<budget>-<digest>.npz``.
* Segmentations: ``blocks/<name>-<budget>-<geometry>-<digest>.npz``.

``digest`` is a truncated SHA-256 over the workload's *assembled program*
(opcodes, registers, immediates, entry point, data size), so editing a
workload analog automatically invalidates its cached artifacts — there is
no staleness to manage, only garbage to purge (:func:`purge`).

Writes go through a temporary file in the same directory followed by
``os.replace``, so concurrent sweep workers never observe a torn file:
they either miss (and recompute) or read a complete artifact.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..icache.geometry import CacheGeometry
from ..trace.blocks import BlockStream
from ..trace.record import Trace

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Values of ``REPRO_CACHE_DIR`` that disable the disk cache.
_DISABLED = {"", "0", "off", "none", "disable", "disabled"}

#: Hex digits of the program digest kept in file names.
_DIGEST_LEN = 16

#: Errors treated as a cache miss when reading an artifact.
_READ_ERRORS = (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile)


def cache_dir() -> Optional[Path]:
    """The cache root, or ``None`` when persistence is disabled."""
    raw = os.environ.get(CACHE_DIR_ENV)
    if raw is None:
        return Path.home() / ".cache" / "repro"
    if raw.strip().lower() in _DISABLED:
        return None
    return Path(raw)


def enabled() -> bool:
    """True when the persistent cache is active."""
    return cache_dir() is not None


def program_digest(program) -> str:
    """Stable content hash of an assembled program.

    Covers everything that influences the trace: entry point, data size
    and every instruction's opcode/register/immediate/target fields.
    """
    h = hashlib.sha256()
    h.update(f"{program.entry}:{program.data_size}:".encode())
    for inst in program.instructions:
        h.update(
            f"{inst.op.value},{inst.rd},{inst.rs1},{inst.rs2},"
            f"{inst.imm},{inst.target!r};".encode())
    return h.hexdigest()[:_DIGEST_LEN]


def _geometry_key(geometry: CacheGeometry) -> str:
    return (f"{geometry.kind}-w{geometry.block_width}"
            f"-l{geometry.line_size}-b{geometry.n_banks}")


def _trace_path(root: Path, name: str, budget: int, digest: str) -> Path:
    return root / "traces" / f"{name}-{budget}-{digest}.npz"


def _blocks_path(root: Path, name: str, budget: int,
                 geometry: CacheGeometry, digest: str) -> Path:
    return (root / "blocks" /
            f"{name}-{budget}-{_geometry_key(geometry)}-{digest}.npz")


def _atomic_write(path: Path, save) -> None:
    """Write via ``save(tmp_path)`` then atomically rename into place."""
    path.parent.mkdir(parents=True, exist_ok=True)
    # The tmp name keeps the .npz suffix so numpy does not append one.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        save(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------

def load_trace(name: str, budget: int, digest: str) -> Optional[Trace]:
    """Read a cached trace, or ``None`` on a miss (or unreadable file)."""
    root = cache_dir()
    if root is None:
        return None
    path = _trace_path(root, name, budget, digest)
    if not path.exists():
        return None
    try:
        return Trace.load(path)
    except _READ_ERRORS:
        return None


def store_trace(trace: Trace, name: str, budget: int, digest: str) -> None:
    """Persist a trace (no-op when the cache is disabled)."""
    root = cache_dir()
    if root is None:
        return
    _atomic_write(_trace_path(root, name, budget, digest), trace.save)


# ----------------------------------------------------------------------
# Block segmentations
# ----------------------------------------------------------------------

def load_blocks(trace: Trace, geometry: CacheGeometry, name: str,
                budget: int, digest: str) -> Optional[BlockStream]:
    """Read a cached segmentation and rebind it to ``trace``/``geometry``."""
    root = cache_dir()
    if root is None:
        return None
    path = _blocks_path(root, name, budget, geometry, digest)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            if int(data["n_records"]) != trace.n_records:
                return None  # stale artifact from a different trace
            return BlockStream(
                trace=trace,
                geometry=geometry,
                start=data["start"].astype(np.int64),
                n_instr=data["n_instr"].astype(np.int64),
                exit_kind=data["exit_kind"].astype(np.uint8),
                exit_target=data["exit_target"].astype(np.int64),
                first_rec=data["first_rec"].astype(np.int64),
                n_recs=data["n_recs"].astype(np.int64),
            )
    except _READ_ERRORS:
        return None


def store_blocks(blocks: BlockStream, name: str, budget: int,
                 digest: str) -> None:
    """Persist a segmentation (no-op when the cache is disabled)."""
    root = cache_dir()
    if root is None:
        return
    path = _blocks_path(root, name, budget, blocks.geometry, digest)

    def save(tmp: Path) -> None:
        np.savez_compressed(
            tmp,
            n_records=np.int64(blocks.trace.n_records),
            start=blocks.start,
            n_instr=blocks.n_instr,
            exit_kind=blocks.exit_kind,
            exit_target=blocks.exit_target,
            first_rec=blocks.first_rec,
            n_recs=blocks.n_recs,
        )

    _atomic_write(path, save)


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------

def purge() -> int:
    """Delete every cached artifact; returns the number of files removed.

    Only this module's own subdirectories are touched, so an unrelated
    ``REPRO_CACHE_DIR`` cannot lose foreign files.
    """
    root = cache_dir()
    if root is None:
        return 0
    removed = 0
    for sub in ("traces", "blocks"):
        directory = root / sub
        if not directory.is_dir():
            continue
        for path in directory.glob("*.npz"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
