"""Persistent on-disk trace and segmentation cache.

Interpreting a workload analog is by far the most expensive step of any
sweep: every experiment re-executes 18 programs for ``REPRO_TRACE_LEN``
instructions before a single prediction is made.  This module persists the
two interpreter-derived artifacts — the compressed control-flow
:class:`~repro.trace.record.Trace` and its per-geometry block segmentation
— as ``.npz`` files so that warm runs skip the interpreter (and the
segmenter) entirely.

Layout and keying:

* Directory: ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``); set it to
  the empty string, ``0``, ``off`` or ``none`` to disable persistence.
* Traces: ``traces/<name>-<budget>-<digest>-v<version>.npz`` (flat) or
  ``....chunks`` (streamed chunk containers for paper-scale budgets);
  ``<version>`` is :data:`repro.trace.record.CAPTURE_VERSION`, so
  artifacts from an older capture pipeline are never served.
* Segmentations: ``blocks/<name>-<budget>-<geometry>-<digest>.npz``.
* Compiled engine inputs (structure-of-arrays block streams for the
  vectorized kernels):
  ``compiled/<name>-<budget>-<geometry>-nb<0|1>-<digest>.npz``.
* Integrity: every artifact gets a ``<file>.sha256`` sidecar, verified
  on read.
* Corrupt artifacts move to ``quarantine/`` (with a warning) instead of
  being silently re-hit on every run.

``digest`` is a truncated SHA-256 over the workload's *assembled program*
(opcodes, registers, immediates, entry point, data size), so editing a
workload analog automatically invalidates its cached artifacts — there is
no staleness to manage, only garbage to purge (:func:`purge`) or evict
(:func:`evict`, bounded by ``REPRO_CACHE_MAX_BYTES``).

Writes go through a temporary file in the same directory followed by
``os.replace``, so concurrent sweep workers never observe a torn file:
they either miss (and recompute) or read a complete artifact.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import warnings
import zipfile
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..icache.geometry import CacheGeometry
from ..trace.blocks import BlockStream
from ..trace.chunks import ChunkedTrace
from ..trace.record import CAPTURE_VERSION, Trace
from . import faults

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache size (bytes; 'off' = no bound).
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default cache-size bound applied by :func:`evict`.
DEFAULT_MAX_BYTES = 4 * 1024 ** 3

#: Subdirectory corrupt artifacts are moved into.
QUARANTINE_DIR = "quarantine"

#: Values of ``REPRO_CACHE_DIR`` that disable the disk cache.
_DISABLED = {"", "0", "off", "none", "disable", "disabled"}

#: Hex digits of the program digest kept in file names.
_DIGEST_LEN = 16

#: Errors treated as artifact corruption when reading.
READ_ERRORS = (OSError, ValueError, KeyError, EOFError,
               zipfile.BadZipFile)
_READ_ERRORS = READ_ERRORS  # backwards-compatible alias

_CHECKSUM_SUFFIX = ".sha256"


def cache_dir() -> Optional[Path]:
    """The cache root, or ``None`` when persistence is disabled."""
    raw = os.environ.get(CACHE_DIR_ENV)
    if raw is None:
        return Path.home() / ".cache" / "repro"
    if raw.strip().lower() in _DISABLED:
        return None
    return Path(raw)


def enabled() -> bool:
    """True when the persistent cache is active."""
    return cache_dir() is not None


def max_cache_bytes() -> Optional[int]:
    """Cache-size bound from ``REPRO_CACHE_MAX_BYTES`` (None = no bound)."""
    raw = os.environ.get(MAX_BYTES_ENV)
    if raw is None:
        return DEFAULT_MAX_BYTES
    text = raw.strip().lower()
    if text in _DISABLED:
        return None
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"{MAX_BYTES_ENV} must be a byte count or 'off', "
            f"got {raw!r}") from None
    if value < 0:
        raise ValueError(
            f"{MAX_BYTES_ENV} must not be negative, got {value}")
    return value


def program_digest(program) -> str:
    """Stable content hash of an assembled program.

    Covers everything that influences the trace: entry point, data size
    and every instruction's opcode/register/immediate/target fields.
    """
    h = hashlib.sha256()
    h.update(f"{program.entry}:{program.data_size}:".encode())
    for inst in program.instructions:
        h.update(
            f"{inst.op.value},{inst.rd},{inst.rs1},{inst.rs2},"
            f"{inst.imm},{inst.target!r};".encode())
    return h.hexdigest()[:_DIGEST_LEN]


def _geometry_key(geometry: CacheGeometry) -> str:
    return (f"{geometry.kind}-w{geometry.block_width}"
            f"-l{geometry.line_size}-b{geometry.n_banks}")


def _trace_path(root: Path, name: str, budget: int, digest: str) -> Path:
    # The capture version is part of the file name *and* embedded in the
    # artifact: renaming the key retires every pre-versioning cache
    # entry, and the embedded stamp catches hand-copied files.
    return (root / "traces" /
            f"{name}-{budget}-{digest}-v{CAPTURE_VERSION}.npz")


def _chunked_path(root: Path, name: str, budget: int, digest: str) -> Path:
    return (root / "traces" /
            f"{name}-{budget}-{digest}-v{CAPTURE_VERSION}.chunks")


def _blocks_path(root: Path, name: str, budget: int,
                 geometry: CacheGeometry, digest: str) -> Path:
    return (root / "blocks" /
            f"{name}-{budget}-{_geometry_key(geometry)}-{digest}.npz")


def _compiled_path(root: Path, name: str, budget: int,
                   geometry: CacheGeometry, near_block: bool,
                   digest: str) -> Path:
    return (root / "compiled" /
            f"{name}-{budget}-{_geometry_key(geometry)}"
            f"-nb{int(bool(near_block))}-{digest}.npz")


# ----------------------------------------------------------------------
# Integrity: checksums and quarantine
# ----------------------------------------------------------------------

def _checksum_path(path: Path) -> Path:
    return path.with_name(path.name + _CHECKSUM_SUFFIX)


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def _write_checksum(path: Path) -> None:
    side = _checksum_path(path)
    tmp = side.with_name(f"{side.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(_file_sha256(path))
        os.replace(tmp, side)
    except OSError:
        pass  # a missing sidecar only skips verification, never data
    finally:
        tmp.unlink(missing_ok=True)


def _verify_checksum(path: Path) -> Optional[bool]:
    """Three-way integrity verdict for an artifact against its sidecar.

    ``True``: bytes match (or no sidecar exists — artifacts from before
    checksums are accepted; their structural parse still guards against
    truncation).  ``False``: bytes disagree — genuine corruption.
    ``None``: the artifact vanished mid-verification — a concurrent
    :func:`evict` or :func:`quarantine` won the race, and the caller
    should treat the read as a plain miss, *not* corruption.
    """
    side = _checksum_path(path)
    try:
        expected = side.read_text().strip()
    except FileNotFoundError:
        return True
    except OSError:
        return False
    try:
        return _file_sha256(path) == expected
    except FileNotFoundError:
        return None
    except OSError:
        return False


def quarantine(path: Path, reason: str) -> Optional[Path]:
    """Move a corrupt artifact out of the hot path, with a warning.

    Returns the quarantined path (or ``None`` if the file could only be
    deleted).  Either way the corrupt file stops shadowing the cache key,
    so the next run recomputes and rewrites a good artifact instead of
    re-hitting the bad one forever.
    """
    root = cache_dir()
    dest: Optional[Path] = None
    if root is not None:
        qdir = root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / path.name
            os.replace(path, dest)
        except FileNotFoundError:
            # Another process evicted or quarantined it first; the key
            # no longer shadows the cache, so there is nothing to report
            # — warning here would turn one corrupt file into a storm.
            _checksum_path(path).unlink(missing_ok=True)
            return None
        except OSError:
            dest = None
    if dest is None:
        try:
            path.unlink(missing_ok=True)
        except OSError:
            return None
    _checksum_path(path).unlink(missing_ok=True)
    warnings.warn(
        f"quarantined corrupt cache artifact {path.name} ({reason}); "
        f"it will be recomputed", RuntimeWarning, stacklevel=4)
    return dest


def _read_artifact(path: Path, loader: Callable[[Path], object],
                   kind: str, name: str):
    """Load an artifact, quarantining corruption instead of re-hitting it.

    Returns ``None`` on a plain miss or after quarantining a corrupt
    file — the caller recomputes either way.
    """
    if not path.exists():
        return None
    faults.corrupt_artifact(path, kind, name)
    verdict = _verify_checksum(path)
    if verdict is None:
        return None  # lost a race with eviction: clean miss
    if not verdict:
        quarantine(path, "checksum mismatch")
        return None
    try:
        return loader(path)
    except FileNotFoundError:
        return None  # vanished between verify and open: clean miss
    except READ_ERRORS as exc:
        quarantine(path, f"unreadable: {exc!r}")
        return None


def _atomic_write(path: Path, save) -> None:
    """Write via ``save(tmp_path)`` then atomically rename into place."""
    path.parent.mkdir(parents=True, exist_ok=True)
    # The tmp name keeps the .npz suffix so numpy does not append one.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        save(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    _write_checksum(path)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------

def load_trace(name: str, budget: int, digest: str) -> Optional[Trace]:
    """Read a cached trace, or ``None`` on a miss (or quarantined file)."""
    root = cache_dir()
    if root is None:
        return None
    path = _trace_path(root, name, budget, digest)
    return _read_artifact(path, Trace.load, "trace", name)


def store_trace(trace: Trace, name: str, budget: int, digest: str) -> None:
    """Persist a trace (no-op when the cache is disabled)."""
    root = cache_dir()
    if root is None:
        return
    _atomic_write(_trace_path(root, name, budget, digest), trace.save)


# ----------------------------------------------------------------------
# Chunked traces (streamed capture of paper-scale runs)
# ----------------------------------------------------------------------

def chunked_trace_path(name: str, budget: int,
                       digest: str) -> Optional[Path]:
    """Where a streamed capture should write its chunk container.

    ``None`` when the cache is disabled — streaming capture then has
    nowhere durable to spool and callers fall back to materialising.
    """
    root = cache_dir()
    if root is None:
        return None
    return _chunked_path(root, name, budget, digest)


def load_chunked_trace(name: str, budget: int,
                       digest: str) -> Optional[ChunkedTrace]:
    """Open a cached chunk container, or ``None`` on a miss.

    Version-mismatched or corrupt containers are quarantined exactly
    like flat trace artifacts (:class:`ChunkedTrace` raises
    :class:`ValueError` for both, which is in :data:`READ_ERRORS`).
    """
    root = cache_dir()
    if root is None:
        return None
    path = _chunked_path(root, name, budget, digest)
    return _read_artifact(path, ChunkedTrace, "trace", name)


def seal_chunked_trace(path: Path) -> None:
    """Write the integrity sidecar for a freshly captured container.

    :class:`~repro.trace.chunks.TraceChunkWriter` already renames a
    temporary file into place, so only the checksum is left to add.
    """
    _write_checksum(path)


# ----------------------------------------------------------------------
# Block segmentations
# ----------------------------------------------------------------------

def load_blocks(trace: Trace, geometry: CacheGeometry, name: str,
                budget: int, digest: str) -> Optional[BlockStream]:
    """Read a cached segmentation and rebind it to ``trace``/``geometry``."""
    root = cache_dir()
    if root is None:
        return None
    path = _blocks_path(root, name, budget, geometry, digest)

    def load(source: Path) -> Optional[BlockStream]:
        with np.load(source) as data:
            if int(data["n_records"]) != trace.n_records:
                return None  # stale artifact from a different trace
            return BlockStream(
                trace=trace,
                geometry=geometry,
                start=data["start"].astype(np.int64),
                n_instr=data["n_instr"].astype(np.int64),
                exit_kind=data["exit_kind"].astype(np.uint8),
                exit_target=data["exit_target"].astype(np.int64),
                first_rec=data["first_rec"].astype(np.int64),
                n_recs=data["n_recs"].astype(np.int64),
            )

    return _read_artifact(path, load, "blocks", name)


def store_blocks(blocks: BlockStream, name: str, budget: int,
                 digest: str) -> None:
    """Persist a segmentation (no-op when the cache is disabled)."""
    root = cache_dir()
    if root is None:
        return
    path = _blocks_path(root, name, budget, blocks.geometry, digest)

    def save(tmp: Path) -> None:
        np.savez_compressed(
            tmp,
            n_records=np.int64(blocks.trace.n_records),
            start=blocks.start,
            n_instr=blocks.n_instr,
            exit_kind=blocks.exit_kind,
            exit_target=blocks.exit_target,
            first_rec=blocks.first_rec,
            n_recs=blocks.n_recs,
        )

    _atomic_write(path, save)


# ----------------------------------------------------------------------
# Compiled block streams (structure-of-arrays engine inputs)
# ----------------------------------------------------------------------

def load_compiled(name: str, budget: int, geometry: CacheGeometry,
                  near_block: bool, digest: str,
                  n_records: int) -> Optional[dict]:
    """Read a cached kernel compilation as a dict of arrays.

    Returns ``None`` on a miss, on a quarantined file, or when the
    artifact was compiled from a trace with a different record count
    (stale relative to the caller's trace).
    """
    root = cache_dir()
    if root is None:
        return None
    path = _compiled_path(root, name, budget, geometry, near_block, digest)

    def load(source: Path) -> Optional[dict]:
        with np.load(source) as data:
            if int(data["n_records"]) != n_records:
                return None  # stale artifact from a different trace
            return {key: data[key] for key in data.files
                    if key != "n_records"}

    return _read_artifact(path, load, "compiled", name)


def store_compiled(arrays: dict, name: str, budget: int,
                   geometry: CacheGeometry, near_block: bool,
                   digest: str, n_records: int) -> None:
    """Persist a kernel compilation (no-op when the cache is disabled)."""
    root = cache_dir()
    if root is None:
        return
    path = _compiled_path(root, name, budget, geometry, near_block, digest)

    def save(tmp: Path) -> None:
        np.savez_compressed(tmp, n_records=np.int64(n_records), **arrays)

    _atomic_write(path, save)


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------

def purge() -> int:
    """Delete every cached artifact; returns the number removed.

    Covers traces, segmentations, quarantined files, checksum sidecars
    and sweep journals.  Only this module's own subdirectories are
    touched, so an unrelated ``REPRO_CACHE_DIR`` cannot lose foreign
    files.  Sidecars are deleted but not counted — the return value is
    the number of artifacts, matching pre-checksum behaviour.
    """
    root = cache_dir()
    if root is None:
        return 0
    removed = 0
    for sub in ("traces", "blocks", "compiled", QUARANTINE_DIR):
        directory = root / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if not path.is_file():
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if not path.name.endswith(_CHECKSUM_SUFFIX):
                removed += 1
    journal_root = root / "journal"
    if journal_root.is_dir():
        for entry in journal_root.iterdir():
            if entry.is_dir():
                count = sum(1 for p in entry.glob("cell-*.pkl"))
                shutil.rmtree(entry, ignore_errors=True)
                if not entry.exists():
                    removed += count
    return removed


def evict(limit: Optional[int] = None) -> int:
    """Delete oldest artifacts until the cache fits a byte budget.

    ``limit`` defaults to ``REPRO_CACHE_MAX_BYTES`` (4 GiB unless set;
    ``off`` disables the bound).  Quarantined files are evicted first —
    they exist only for post-mortems — then traces and segmentations by
    oldest modification time.  Returns the number of artifacts removed.
    """
    root = cache_dir()
    if root is None:
        return 0
    if limit is None:
        limit = max_cache_bytes()
    if limit is None:
        return 0

    entries: List[Tuple[int, float, Path, int]] = []
    total = 0
    for sub, rank in ((QUARANTINE_DIR, 0), ("traces", 1), ("blocks", 1),
                      ("compiled", 1)):
        directory = root / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if not path.is_file() \
                    or path.name.endswith(_CHECKSUM_SUFFIX):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            size = stat.st_size
            side = _checksum_path(path)
            if side.exists():
                try:
                    size += side.stat().st_size
                except OSError:
                    pass
            total += size
            entries.append((rank, stat.st_mtime, path, size))

    removed = 0
    for rank, _, path, size in sorted(entries, key=lambda e: e[:2]):
        if total <= limit:
            break
        try:
            path.unlink(missing_ok=True)
            _checksum_path(path).unlink(missing_ok=True)
        except OSError:
            continue
        total -= size
        removed += 1
    return removed
