"""Phase timing for sweeps (``REPRO_PROFILE=1``).

When enabled, the runtime accounts wall-clock per phase — trace
generation, block segmentation, kernel compilation, engine execution and
aggregation — prints a per-cell breakdown to stderr as cells finish, and
attaches the sweep-level totals to the
:class:`~repro.runtime.resilience.SweepReport`.

The accounting is process-local: under ``REPRO_JOBS>1`` the per-cell
lines come from worker stderr, while the report of the parent process
only covers phases it ran itself (warm-up and aggregation).  Serial
sweeps — the default — account everything.

Profiling never changes a simulated number; it only reads clocks around
existing work.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from typing import Dict

#: Environment variable enabling phase timing.
PROFILE_ENV = "REPRO_PROFILE"

#: Canonical phase order for display.
PHASES = ("trace", "segment", "compile", "engine", "aggregate")

_FALSE = {"", "0", "off", "no", "false", "none"}
_TRUE = {"1", "on", "yes", "true"}

_totals: Dict[str, float] = {}

#: Shard id labelling this process's per-cell output (sharded sweeps
#: set it worker-side so stderr lines stay attributable per shard).
_shard: int | None = None


def enabled() -> bool:
    """Whether phase timing is on (``REPRO_PROFILE``).

    Unset/empty/0/off = disabled; 1/on/yes/true = enabled.  Anything
    else raises a :class:`ValueError` naming the variable, so typos fail
    eagerly like every other runtime knob.
    """
    raw = os.environ.get(PROFILE_ENV)
    if raw is None:
        return False
    text = raw.strip().lower()
    if text in _FALSE:
        return False
    if text in _TRUE:
        return True
    raise ValueError(
        f"{PROFILE_ENV} must be a boolean ('1'/'0', 'on'/'off'), "
        f"got {raw!r}")


def record(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` against phase ``name``."""
    _totals[name] = _totals.get(name, 0.0) + seconds


@contextmanager
def phase(name: str):
    """Time the enclosed work as one slice of phase ``name``.

    A no-op (beyond one env read) when profiling is off, so call sites
    can wrap hot paths unconditionally.
    """
    if not enabled():
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        record(name, time.perf_counter() - t0)


def snapshot() -> Dict[str, float]:
    """Copy of the phase totals accumulated so far in this process."""
    return dict(_totals)


def delta_since(base: Dict[str, float]) -> Dict[str, float]:
    """Phase seconds accumulated since ``base`` (a prior snapshot)."""
    out = {}
    for name, total in _totals.items():
        diff = total - base.get(name, 0.0)
        if diff > 0.0:
            out[name] = diff
    return out


def set_shard(shard: int | None) -> None:
    """Label this process's subsequent per-cell output with a shard id."""
    global _shard
    _shard = shard


def current_shard() -> int | None:
    """Shard id labelling this process's profile output, if any."""
    return _shard


def reset() -> None:
    """Drop all accumulated totals and the shard label (tests)."""
    global _shard
    _totals.clear()
    _shard = None


def format_phases(phases: Dict[str, float]) -> str:
    """Render phase seconds in canonical order, e.g. ``engine=1.203s``."""
    names = [p for p in PHASES if p in phases]
    names += [p for p in sorted(phases) if p not in PHASES]
    return " ".join(f"{name}={phases[name]:.3f}s" for name in names)


def emit_cell(label: str, phases: Dict[str, float]) -> None:
    """Print one cell's phase breakdown to stderr.

    Under a sharded sweep the line carries the worker's shard label
    (``s<k>/``), so interleaved worker stderr still attributes every
    cell to its shard.
    """
    if _shard is not None:
        label = f"s{_shard}/{label}"
    print(f"[profile] {label}: {format_phases(phases)}", file=sys.stderr)
