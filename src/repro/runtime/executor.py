"""Process-parallel sweep execution.

Every paper artifact is a sweep over (engine configuration x workload)
cells, and every cell is independent: the engines are deterministic,
cold-started per program, and share nothing but read-only fetch inputs.
This module fans those cells out over worker processes and merges the
per-cell results back **in submission order**, so a parallel sweep is
bit-identical to the serial one — parallelism only moves wall-clock,
never numbers.

The worker count comes from the ``REPRO_JOBS`` environment variable
(:func:`n_jobs`); ``REPRO_JOBS=1`` (the default) short-circuits to a plain
serial loop.  Execution itself is delegated to
:mod:`repro.runtime.resilience`, which adds per-cell deadlines, bounded
retries, crash recovery and journaled resume without changing any
result.  Workers populate the persistent cache of
:mod:`repro.runtime.cache`; its atomic writes make concurrent population
safe, and :func:`execute` pre-warms the cache for the distinct workloads
of a sweep so concurrent workers do not race to interpret the same
program.

Imports of :mod:`repro.workloads` and :mod:`repro.experiments` are kept
inside functions: the workload registry itself layers on
:mod:`repro.runtime.cache`, and a module-level import in either direction
would be circular.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

#: Environment variable selecting the worker count.
JOBS_ENV = "REPRO_JOBS"

#: Errors a pickling probe can legitimately raise for unpicklable work.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError,
                  NotImplementedError)


def n_jobs(default: int = 1) -> int:
    """Worker count from ``REPRO_JOBS``.

    Accepted values: a positive integer, or ``auto``/``0`` for one worker
    per CPU.  Unset (or empty) falls back to ``default`` — serial.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw is None or not raw.strip():
        return default
    text = raw.strip().lower()
    if text == "auto":
        return os.cpu_count() or 1
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be a positive integer or 'auto', "
            f"got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{JOBS_ENV} must not be negative, got {value}")
    if value == 0:
        return os.cpu_count() or 1
    return value


def unpicklable_reason(fn: Callable, cells: Sequence) -> Optional[str]:
    """Why this sweep cannot cross a process boundary, or ``None``.

    Names the offending object so a parallel sweep that silently ran
    serially is diagnosable from its warning alone.
    """
    try:
        pickle.dumps(fn)
    except _PICKLE_ERRORS as exc:
        return f"sweep function {fn!r} is not picklable ({exc})"
    try:
        pickle.dumps(list(cells))
    except _PICKLE_ERRORS as exc:
        for i, cell in enumerate(cells):
            try:
                pickle.dumps(cell)
            except _PICKLE_ERRORS:
                return f"sweep cell {i} ({cell!r}) is not picklable"
        return f"sweep cells are not picklable ({exc})"
    return None


def execute(fn: Callable, cells: Iterable, jobs: Optional[int] = None,
            warm: Optional[Callable[[Sequence], None]] = None,
            label: Optional[str] = None,
            inject_faults: bool = True,
            shards: Optional[int] = None) -> List:
    """Order-preserving map of ``fn`` over ``cells``.

    With one job (or one cell) this is a plain serial loop.  Otherwise
    the cells are dispatched to worker processes and the results are
    returned in cell order, which keeps any downstream aggregation
    deterministic.  ``warm``, when given, is invoked with the cell list
    before a parallel fan-out (and never for serial runs) to pre-populate
    shared caches; warm failures are reported as warnings, never fatal.

    Execution goes through :func:`repro.runtime.resilience.run_resilient`
    — cells run under the ``REPRO_CELL_TIMEOUT`` deadline with
    ``REPRO_RETRIES`` retries, worker crashes respawn the pool and re-run
    only the lost cells, and ``label``-ed sweeps checkpoint completed
    cells to a journal so interrupted runs resume.  Work that cannot be
    pickled — e.g. an ad-hoc lambda engine factory — falls back to the
    serial loop with an explicit ``RuntimeWarning`` naming the
    unpicklable object.

    ``shards`` (default ``REPRO_SHARDS``) > 1 dispatches through the
    work-stealing shard scheduler of :mod:`repro.runtime.shard` — same
    results, sharded wall-clock.
    """
    from . import resilience

    return resilience.run_resilient(fn, cells, jobs=jobs, warm=warm,
                                    label=label,
                                    inject_faults=inject_faults,
                                    shards=shards).results


# ----------------------------------------------------------------------
# Suite sweeps: (engine config x workload) cells
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SuiteSpec:
    """One suite-level simulation request inside a sweep.

    ``engine_factory`` must be a picklable callable ``(config) -> engine``
    (a class, a top-level function, or ``functools.partial`` of either);
    ``None`` selects the dual-block engine.
    """

    suite: str
    config: object          # EngineConfig (kept untyped to avoid cycles)
    budget: int
    engine_factory: Optional[Callable] = None


def _suite_names(suite: str) -> List[str]:
    from ..workloads import SPECFP95, SPECINT95

    names = {"int": SPECINT95, "fp": SPECFP95}
    return names[suite]


def _run_engine_cell(cell: Tuple[SuiteSpec, str]):
    """Worker: run one (spec, workload) cell, returning its FetchStats.

    Under ``REPRO_PROFILE=1`` the cell's phase breakdown (trace /
    segment / compile / engine) is printed to stderr as it completes —
    from the worker's stderr when the sweep is parallel.
    """
    spec, name = cell
    from ..core.dual import DualBlockEngine
    from ..workloads import load_fetch_input
    from . import profile

    profiling = profile.enabled()
    base = profile.snapshot() if profiling else None
    fetch_input = load_fetch_input(name, spec.config.geometry, spec.budget)
    factory = spec.engine_factory or DualBlockEngine
    with profile.phase("engine"):
        stats = factory(spec.config).run(fetch_input)
    if profiling:
        engine_name = getattr(factory, "__name__",
                              factory.__class__.__name__)
        profile.emit_cell(f"{engine_name}/{name}",
                          profile.delta_since(base))
    return stats


def _warm_fetch_cell(cell: Tuple[str, object, int]) -> Optional[str]:
    """Worker: populate the disk cache for one (name, geometry, budget).

    Warming is purely an optimization — the main pass recomputes any
    input it misses — so a failure is *returned* (never raised): one bad
    warm cell must not abort the sweep it was trying to speed up.
    """
    name, geometry, budget = cell
    from ..workloads import load_fetch_input

    try:
        load_fetch_input(name, geometry, budget)
    except Exception as exc:
        return f"{name}: {exc!r}"
    return None


def warm_fetch_inputs(triples: Iterable[Tuple[str, object, int]],
                      jobs: Optional[int] = None) -> None:
    """Pre-populate the persistent cache for distinct fetch inputs.

    Interpreting a workload dominates cell cost, and several cells of one
    sweep typically share a (workload, geometry, budget) triple; warming
    the disk cache first — itself fanned out — stops parallel workers
    from interpreting the same program concurrently.  A no-op when the
    persistent cache is disabled (workers could not share the result).

    Best-effort by construction: per-cell failures are caught in the
    worker, pool-level failures are caught here, and either way the main
    pass recomputes whatever warming missed.  Injected faults do not
    apply — they target sweep cells, whose indexes would otherwise alias
    warm cells.  Warming always runs on one flat pool (``shards=1``):
    the warm cells are deduplicated inputs, not sweep cells, so an
    ambient ``REPRO_SHARDS`` must neither shard them nor skew the main
    sweep's per-shard accounting with warm-up attempts.
    """
    from . import cache

    if not cache.enabled():
        return
    unique = list(dict.fromkeys(triples))
    try:
        failures = [f for f in execute(_warm_fetch_cell, unique, jobs,
                                       inject_faults=False, shards=1)
                    if f]
    except Exception as exc:
        warnings.warn(
            f"cache warm-up aborted ({exc!r}); sweep cells will compute "
            f"their own inputs", RuntimeWarning, stacklevel=2)
        return
    if failures:
        warnings.warn(
            f"cache warm-up failed for {len(failures)} input(s) "
            f"({failures[0]}); the sweep will recompute them",
            RuntimeWarning, stacklevel=2)


def _warm_for_specs(cells: Sequence[Tuple[SuiteSpec, str]]) -> None:
    warm_fetch_inputs((name, spec.config.geometry, spec.budget)
                      for spec, name in cells)


def run_suite_specs(specs: Iterable[SuiteSpec],
                    jobs: Optional[int] = None,
                    label: Optional[str] = None) -> List:
    """Run a batch of suite sweeps, fanning out every cell at once.

    Returns one ``SuiteAggregate`` per spec, in spec order; the aggregate
    folds per-program ``FetchStats`` in the suite's canonical program
    order, exactly as the serial runner does.  ``label`` names the sweep
    in reports and keys its checkpoint journal.
    """
    from ..experiments.common import SuiteAggregate
    from . import profile

    specs = list(specs)
    cells = [(spec, name) for spec in specs
             for name in _suite_names(spec.suite)]
    results = execute(_run_engine_cell, cells, jobs, warm=_warm_for_specs,
                      label=label)
    with profile.phase("aggregate"):
        aggregates: List[SuiteAggregate] = []
        cursor = 0
        for spec in specs:
            aggregate = SuiteAggregate()
            for name in _suite_names(spec.suite):
                aggregate.add(name, results[cursor])
                cursor += 1
            aggregates.append(aggregate)
    return aggregates
