"""Fault-tolerant sweep execution: retries, deadlines, checkpoint/resume.

The plain executor of :mod:`repro.runtime.executor` is all-or-nothing: a
single worker crash raises ``BrokenProcessPool`` and discards every
finished cell, a hung interpreter stalls the sweep forever, and an
interrupted run restarts from zero.  This module wraps sweep execution
in a recovery loop that never changes a reported number — every
recovered cell re-runs the same deterministic simulation — but survives
the faults a long campaign actually hits:

* **Per-cell deadline** (``REPRO_CELL_TIMEOUT``, seconds): a parallel
  cell that exceeds it has its worker killed and is retried.  Serial
  execution has no preemption boundary, so deadlines only apply to
  parallel sweeps.
* **Bounded retries** (``REPRO_RETRIES``, default 2) with exponential
  backoff: a failed, crashed or timed-out cell is re-run up to the
  budget, after which the sweep raises :class:`SweepError` carrying the
  full :class:`SweepReport`.
* **Crash recovery**: each worker slot owns a single-worker
  ``ProcessPoolExecutor``, so a dead interpreter breaks exactly one
  cell's pool — the pool is respawned and only the lost cell re-runs.
  When pools keep dying (or cannot be spawned at all) the sweep degrades
  to serial execution with an explicit ``RuntimeWarning``, never
  silently.
* **Checkpoint/resume**: labeled sweeps journal every completed cell's
  result to ``<cache-dir>/journal/<label>-<digest>/`` (atomic,
  checksummed); an interrupted rerun skips finished cells
  (``REPRO_RESUME``, default on) and merges bit-identically with an
  uninterrupted run.  The journal is deleted when the sweep completes.

Per-cell outcomes (ok / retried / timed-out / failed, plus resumed) are
recorded in a :class:`SweepReport`; the CLI prints a summary for any
sweep that degraded and exits non-zero when cells were dropped.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List,
                    Mapping, Optional, Sequence, Tuple)

from . import cache, faults, profile

if TYPE_CHECKING:
    from .shard import ShardInfo

#: Environment variable: per-cell deadline in seconds (parallel sweeps).
TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
#: Environment variable: retry budget per cell.
RETRIES_ENV = "REPRO_RETRIES"
#: Environment variable: resume labeled sweeps from their journal.
RESUME_ENV = "REPRO_RESUME"

DEFAULT_RETRIES = 2

#: Exponential backoff between retries of one cell: BASE * 2**attempts,
#: capped.  Tests may patch BACKOFF_BASE to 0.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Pool respawns tolerated before the sweep degrades to serial.
POOL_RESPAWN_BUDGET = 8

_OFF = {"", "0", "off", "none", "disable", "disabled"}
_FALSE = {"0", "off", "no", "false"}
_TRUE = {"1", "on", "yes", "true"}

#: Pickle protocol for journal entries and sweep keys — pinned so the
#: digest of an unchanged sweep is stable across interpreter runs.
_PICKLE_PROTOCOL = 4

#: Cell outcome statuses.
OK = "ok"
RETRIED = "retried"
TIMED_OUT = "timed-out"
FAILED = "failed"


def cell_timeout() -> Optional[float]:
    """Per-cell deadline from ``REPRO_CELL_TIMEOUT`` (None = no limit)."""
    raw = os.environ.get(TIMEOUT_ENV)
    if raw is None or raw.strip().lower() in _OFF:
        return None
    try:
        value = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{TIMEOUT_ENV} must be a positive number of seconds or "
            f"'off', got {raw!r}") from None
    if value <= 0:
        raise ValueError(
            f"{TIMEOUT_ENV} must be positive, got {value}")
    return value


def retry_limit() -> int:
    """Retry budget per cell from ``REPRO_RETRIES``."""
    raw = os.environ.get(RETRIES_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_RETRIES
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{RETRIES_ENV} must be a non-negative integer, "
            f"got {raw!r}") from None
    if value < 0:
        raise ValueError(
            f"{RETRIES_ENV} must not be negative, got {value}")
    return value


def resume_enabled() -> bool:
    """Whether labeled sweeps resume from journals (``REPRO_RESUME``)."""
    raw = os.environ.get(RESUME_ENV)
    if raw is None or not raw.strip():
        return True
    text = raw.strip().lower()
    if text in _FALSE:
        return False
    if text in _TRUE:
        return True
    raise ValueError(
        f"{RESUME_ENV} must be a boolean ('1'/'0', 'on'/'off'), "
        f"got {raw!r}")


def _backoff(attempts_done: int) -> float:
    return min(BACKOFF_CAP, BACKOFF_BASE * (2 ** attempts_done))


@contextmanager
def scoped_environ(overrides: Mapping[str, Optional[str]],
                   ) -> Iterator[None]:
    """Temporarily set (or, with ``None``, unset) environment variables.

    The sanctioned way for callers outside the runtime config entry
    points (notably :mod:`repro.serve`) to scope runtime knobs like
    ``REPRO_CELL_TIMEOUT`` or ``REPRO_FAULT_SPEC`` around one dispatch:
    the previous values are restored on exit even when the body raises.
    Worker pools forked inside the scope inherit the overridden values.
    """
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# ----------------------------------------------------------------------
# Outcomes and reports
# ----------------------------------------------------------------------

@dataclass
class CellOutcome:
    """Recovery record for one sweep cell."""

    index: int
    status: str = OK      #: ok | retried | timed-out | failed
    attempts: int = 0     #: executions actually started
    timeouts: int = 0     #: attempts killed by the cell deadline
    resumed: bool = False  #: result loaded from the sweep journal
    error: str = ""       #: last failure, for failed cells
    shard: Optional[int] = None  #: home shard under a sharded sweep
    stolen: bool = False  #: some attempt ran on a stealing worker

    def finish(self) -> None:
        """Set the final status after a successful attempt."""
        if self.timeouts:
            self.status = TIMED_OUT
        elif self.attempts > 1:
            self.status = RETRIED
        else:
            self.status = OK


@dataclass
class SweepReport:
    """Structured account of one sweep's execution and recoveries."""

    label: Optional[str]
    n_cells: int
    jobs: int
    outcomes: List[CellOutcome] = field(default_factory=list)
    degraded_serial: bool = False  #: parallel execution was abandoned
    pool_respawns: int = 0         #: worker pools killed and respawned
    #: Shard-scheduler account (:class:`repro.runtime.shard.ShardInfo`)
    #: when the sweep ran sharded; ``None`` for flat sweeps.
    shards: Optional["ShardInfo"] = None
    #: Wall-clock per phase accumulated in this process during the sweep
    #: (``REPRO_PROFILE=1``); empty when profiling is off.  Parallel
    #: sweeps only see the parent's phases — per-cell breakdowns come
    #: from worker stderr.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def _with_status(self, status: str) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def n_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.status != FAILED)

    @property
    def failed_cells(self) -> List[int]:
        return [o.index for o in self._with_status(FAILED)]

    @property
    def retried_cells(self) -> List[int]:
        return [o.index for o in self._with_status(RETRIED)]

    @property
    def timed_out_cells(self) -> List[int]:
        return [o.index for o in self._with_status(TIMED_OUT)]

    @property
    def resumed_cells(self) -> List[int]:
        return [o.index for o in self.outcomes if o.resumed]

    @property
    def clean(self) -> bool:
        """True when nothing degraded — no retries, kills or failures."""
        return (not self.failed_cells and not self.retried_cells
                and not self.timed_out_cells and not self.resumed_cells
                and not self.degraded_serial and not self.pool_respawns)

    def summary(self) -> str:
        """One-line human summary, printed by the CLI on degradation."""
        name = self.label or "<sweep>"
        bits = [f"sweep {name}: {self.n_ok}/{self.n_cells} cells ok"]
        if self.shards is not None:
            bits.append(self.shards.describe())
        if self.resumed_cells:
            bits.append(f"{len(self.resumed_cells)} resumed from journal")
        if self.retried_cells:
            bits.append(f"{len(self.retried_cells)} retried "
                        f"(cells {self.retried_cells})")
        if self.timed_out_cells:
            bits.append(f"{len(self.timed_out_cells)} timed out and "
                        f"recovered (cells {self.timed_out_cells})")
        if self.pool_respawns:
            bits.append(f"{self.pool_respawns} worker respawn(s)")
        if self.degraded_serial:
            bits.append("degraded to serial execution")
        if self.failed_cells:
            bits.append(f"{len(self.failed_cells)} FAILED "
                        f"(cells {self.failed_cells})")
        if self.phase_seconds:
            from . import profile

            bits.append(f"phases: "
                        f"{profile.format_phases(self.phase_seconds)}")
        return "; ".join(bits)


class SweepError(RuntimeError):
    """A sweep dropped cells after exhausting every recovery path."""

    def __init__(self, report: SweepReport):
        self.report = report
        failed = report.failed_cells
        super().__init__(
            f"sweep {report.label or '<unlabeled>'}: {len(failed)} of "
            f"{report.n_cells} cells failed after retries "
            f"(cells {failed}); completed cells are journaled — rerun "
            f"to resume")


@dataclass
class SweepResult:
    """Results (in cell order) plus the execution report."""

    results: List
    report: SweepReport


#: Reports of completed sweeps, drained by the CLI for its summary.
_reports: List[SweepReport] = []


def drain_reports() -> List[SweepReport]:
    """Return and clear the accumulated sweep reports."""
    out = list(_reports)
    _reports.clear()
    return out


# ----------------------------------------------------------------------
# Journaled checkpoint/resume
# ----------------------------------------------------------------------

class Journal:
    """Digest-keyed directory of per-cell results under the cache dir.

    Each completed cell is written atomically as ``cell-<index>.pkl``
    (a SHA-256 header followed by the pickled result), so an interrupted
    sweep can resume: entries are self-verifying, torn writes are
    impossible, and a corrupt entry is simply recomputed.

    Sharded sweeps checkpoint into per-shard subdirectories
    (``shard-<k>/cell-<index>.pkl``); entries stay keyed by the *global*
    cell index, so :meth:`load` merges flat and shard entries alike and
    a resume may use a different shard count (or none) and still merge
    bit-exact.
    """

    def __init__(self, directory: Path, n_cells: int):
        self.directory = directory
        self.n_cells = n_cells

    @staticmethod
    def sweep_key(label: str, fn: Callable, cells: Sequence) -> \
            Optional[str]:
        """Stable digest of the sweep identity, or None if unkeyable."""
        h = hashlib.sha256()
        h.update(label.encode())
        h.update(b"\x00")
        h.update(f"{getattr(fn, '__module__', '?')}."
                 f"{getattr(fn, '__qualname__', '?')}".encode())
        h.update(b"\x00")
        try:
            h.update(pickle.dumps(list(cells), protocol=_PICKLE_PROTOCOL))
        except Exception:
            return None
        return h.hexdigest()[:16]

    @classmethod
    def open(cls, label: Optional[str], fn: Callable,
             cells: Sequence) -> Optional["Journal"]:
        """Journal for this sweep, or None when journaling is off."""
        if label is None:
            return None
        root = cache.cache_dir()
        if root is None:
            return None
        key = cls.sweep_key(label, fn, cells)
        if key is None:
            return None
        return cls(root / "journal" / f"{label}-{key}", len(cells))

    def _entry(self, index: int, shard: Optional[int] = None) -> Path:
        if shard is None:
            return self.directory / f"cell-{index}.pkl"
        return self.directory / f"shard-{shard:02d}" / f"cell-{index}.pkl"

    def load(self) -> Dict[int, object]:
        """Verified completed-cell results from a previous run."""
        if not self.directory.is_dir():
            return {}
        loaded: Dict[int, object] = {}
        entries = (sorted(self.directory.glob("cell-*.pkl"))
                   + sorted(self.directory.glob("shard-*/cell-*.pkl")))
        for path in entries:
            try:
                index = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if not 0 <= index < self.n_cells:
                continue
            try:
                blob = path.read_bytes()
                digest, payload = blob[:32], blob[32:]
                if hashlib.sha256(payload).digest() != digest:
                    path.unlink(missing_ok=True)  # torn entry: recompute
                    continue
                loaded[index] = pickle.loads(payload)
            except Exception:
                path.unlink(missing_ok=True)
        return loaded

    def record(self, index: int, result: object,
               shard: Optional[int] = None) -> None:
        """Atomically append one completed cell to the journal."""
        try:
            payload = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
        except Exception:
            return  # unjournalable result: resume simply recomputes it
        path = self._entry(index, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(hashlib.sha256(payload).digest() + payload)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def discard(self) -> None:
        """Remove the journal (the sweep completed)."""
        shutil.rmtree(self.directory, ignore_errors=True)


# ----------------------------------------------------------------------
# Cell attempts (serial and worker-side)
# ----------------------------------------------------------------------

def _pool_cell(fn: Callable, cell, index: int, attempt: int,
               inject: bool, shard: Optional[int] = None):
    """Worker-side shim: apply injected faults, then run the cell.

    Under a sharded sweep ``shard`` labels the worker's profile output,
    so per-cell phase lines on stderr stay attributable per shard.
    """
    if shard is not None:
        profile.set_shard(shard)
    if inject:
        faults.apply_cell_faults(index, attempt, isolated=True)
    return fn(cell)


def _serial_cell(fn: Callable, cell, index: int, attempt: int,
                 inject: bool):
    if inject:
        faults.apply_cell_faults(index, attempt, isolated=False)
    return fn(cell)


# ----------------------------------------------------------------------
# The resilient executor
# ----------------------------------------------------------------------

def _new_pool() -> ProcessPoolExecutor:
    """One single-worker pool per slot (patchable in tests).

    A slot owning its own worker makes fault attribution exact: a dead
    interpreter breaks exactly one in-flight cell, so only that cell is
    retried — innocent neighbours keep their results.
    """
    return ProcessPoolExecutor(max_workers=1)


def _terminate_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Kill a pool's worker processes (hung or already broken)."""
    if pool is None:
        return
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in processes:
        try:
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


@dataclass
class _Slot:
    """One parallel worker slot: a single-worker pool plus in-flight cell."""

    pool: Optional[ProcessPoolExecutor] = None
    future: object = None
    index: int = -1
    deadline: Optional[float] = None


def run_resilient(fn: Callable, cells, jobs: Optional[int] = None,
                  warm: Optional[Callable[[Sequence], None]] = None,
                  label: Optional[str] = None,
                  inject_faults: bool = True,
                  shards: Optional[int] = None) -> SweepResult:
    """Order-preserving resilient map of ``fn`` over ``cells``.

    Semantics match :func:`repro.runtime.executor.execute` — results in
    cell order, parallel bit-identical to serial — plus the recovery
    behaviour documented in the module docstring.  Raises
    :class:`SweepError` when a cell fails after exhausting its retries;
    completed cells stay journaled so a rerun resumes.

    ``shards`` (default ``REPRO_SHARDS``) > 1 routes dispatch through
    the work-stealing shard scheduler of :mod:`repro.runtime.shard`:
    cells are partitioned by ``REPRO_SHARD_POLICY``, workers drain their
    home shards and steal from stragglers, and journaled sweeps
    checkpoint per shard.  Results and recovery semantics are identical
    either way — sharding only moves wall-clock, never numbers.
    """
    from . import shard as shard_mod
    from .executor import n_jobs, unpicklable_reason

    cells = list(cells)
    timeout = cell_timeout()
    retries = retry_limit()
    resume = resume_enabled()
    cache.max_cache_bytes()  # validate eagerly, before any simulation
    profiling = profile.enabled()
    profile_base = profile.snapshot() if profiling else None
    if inject_faults:
        faults.validate()

    jobs = n_jobs() if jobs is None else jobs
    n_shards = shard_mod.shard_count() if shards is None else shards
    n_shards = max(1, n_shards)
    policy = shard_mod.shard_policy()  # validated even when unsharded
    report = SweepReport(label=label, n_cells=len(cells), jobs=jobs,
                         outcomes=[CellOutcome(i)
                                   for i in range(len(cells))])
    results: List = [None] * len(cells)
    done = [False] * len(cells)

    journal = Journal.open(label, fn, cells)
    if journal is not None and resume:
        for index, value in journal.load().items():
            results[index] = value
            done[index] = True
            outcome = report.outcomes[index]
            outcome.resumed = True
            outcome.status = OK

    pending = [i for i in range(len(cells)) if not done[i]]
    effective = min(jobs, len(pending)) if pending else 1
    use_shards = n_shards > 1 and len(pending) > 1

    try:
        if effective > 1 or use_shards:
            reason = unpicklable_reason(fn, cells)
            if reason is not None:
                warnings.warn(
                    f"sweep {label or '<unlabeled>'} falls back to "
                    f"serial execution: {reason}",
                    RuntimeWarning, stacklevel=3)
                effective = 1
                use_shards = False
        if (effective > 1 or use_shards) and warm is not None:
            try:
                warm(cells)
            except Exception as exc:
                warnings.warn(
                    f"sweep warm-up failed ({exc!r}); cells will "
                    f"compute their own inputs", RuntimeWarning,
                    stacklevel=3)
        if use_shards:
            plan = shard_mod.partition(cells, n_shards, policy)
            workers = jobs if jobs > 1 else plan.n_shards
            workers = min(workers, len(pending))
            report.shards = shard_mod.ShardInfo(
                n_shards=plan.n_shards, policy=plan.policy,
                n_workers=workers)
            pending = shard_mod.run_sharded_loop(
                fn, cells, pending, results, done, report, plan,
                workers, retries, timeout, inject_faults, journal)
        elif effective > 1:
            pending = _run_parallel(fn, cells, pending, results, done,
                                    report, effective, retries, timeout,
                                    inject_faults, journal)
        if pending:
            _run_serial(fn, cells, pending, results, done, report,
                        retries, inject_faults, journal)
    finally:
        if profiling:
            report.phase_seconds = profile.delta_since(profile_base)
        _reports.append(report)
        if label is not None:
            try:
                cache.evict()
            except (OSError, ValueError):
                pass

    if report.failed_cells:
        raise SweepError(report)
    if journal is not None:
        journal.discard()
    return SweepResult(results=results, report=report)


def _record_success(index: int, value, results, done, report, journal,
                    shard: Optional[int] = None) -> None:
    results[index] = value
    done[index] = True
    outcome = report.outcomes[index]
    outcome.finish()
    if journal is not None:
        journal.record(index, value, shard=shard)


def _run_serial(fn, cells, pending, results, done, report, retries,
                inject, journal) -> None:
    """Serial recovery loop (also the degraded-parallel path)."""
    for index in pending:
        outcome = report.outcomes[index]
        while True:
            attempt = outcome.attempts
            outcome.attempts += 1
            try:
                value = _serial_cell(fn, cells[index], index, attempt,
                                     inject)
            except Exception as exc:
                if outcome.attempts <= retries:
                    time.sleep(_backoff(attempt))
                    continue
                outcome.status = FAILED
                outcome.error = repr(exc)
                break
            _record_success(index, value, results, done, report, journal)
            break


def _run_parallel(fn, cells, pending, results, done, report, jobs,
                  retries, timeout, inject, journal) -> List[int]:
    """Parallel recovery loop.

    Returns the (possibly empty) list of cell indexes still pending —
    non-empty only when parallel execution degraded and the caller
    should finish serially.
    """
    #: (index, ready_at) — ready_at defers retries for backoff without
    #: blocking the dispatcher.
    queue: List[Tuple[int, float]] = [(i, 0.0) for i in pending]
    slots = [_Slot() for _ in range(jobs)]
    budget = max(POOL_RESPAWN_BUDGET, 2 * jobs)

    def degrade(why: str) -> List[int]:
        for slot in slots:
            _terminate_pool(slot.pool)
            if slot.future is not None:
                queue.append((slot.index, 0.0))
            slot.pool, slot.future = None, None
        report.degraded_serial = True
        warnings.warn(
            f"sweep {report.label or '<unlabeled>'} degraded to serial "
            f"execution: {why}", RuntimeWarning, stacklevel=4)
        return sorted(index for index, _ in queue)

    def submit(slot: _Slot, index: int) -> bool:
        outcome = report.outcomes[index]
        attempt = outcome.attempts
        outcome.attempts += 1
        try:
            if slot.pool is None:
                slot.pool = _new_pool()
            slot.future = slot.pool.submit(
                _pool_cell, fn, cells[index], index, attempt, inject)
        except (BrokenProcessPool, OSError, RuntimeError):
            outcome.attempts -= 1  # never started; not a real attempt
            _terminate_pool(slot.pool)
            slot.pool, slot.future = None, None
            return False
        slot.index = index
        slot.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        return True

    def retry_or_fail(index: int, error: str) -> None:
        outcome = report.outcomes[index]
        if outcome.attempts <= retries:
            queue.append((index,
                          time.monotonic()
                          + _backoff(outcome.attempts - 1)))
        else:
            outcome.status = FAILED
            outcome.error = error

    while queue or any(slot.future is not None for slot in slots):
        now = time.monotonic()
        # Fill idle slots with ready work.
        for slot in slots:
            if slot.future is not None:
                continue
            choice = next((pos for pos, (_, ready) in enumerate(queue)
                           if ready <= now), None)
            if choice is None:
                break
            index, _ = queue.pop(choice)
            if not submit(slot, index):
                report.pool_respawns += 1
                queue.append((index, now))
                if report.pool_respawns > budget:
                    return degrade(
                        f"{report.pool_respawns} worker-pool failures")

        busy = [slot for slot in slots if slot.future is not None]
        if not busy:
            if queue:  # everything is backing off; wait for the earliest
                time.sleep(max(0.0, min(r for _, r in queue)
                               - time.monotonic()) + 0.001)
            continue

        wait_for = None
        deadlines = [slot.deadline for slot in busy
                     if slot.deadline is not None]
        if deadlines:
            wait_for = max(0.0, min(deadlines) - time.monotonic())
        waiting_retries = [r for _, r in queue if r > now]
        if waiting_retries and any(s.future is None for s in slots):
            soonest = max(0.0, min(waiting_retries) - time.monotonic())
            wait_for = soonest if wait_for is None \
                else min(wait_for, soonest)
        finished, _ = wait([slot.future for slot in busy],
                           timeout=wait_for,
                           return_when=FIRST_COMPLETED)

        now = time.monotonic()
        for slot in busy:
            if slot.future in finished:
                exc = slot.future.exception()
                index = slot.index
                if exc is None:
                    _record_success(index, slot.future.result(), results,
                                    done, report, journal)
                else:
                    if isinstance(exc, BrokenProcessPool):
                        # The slot's lone worker died mid-cell: respawn
                        # the pool, re-run only this cell.
                        report.pool_respawns += 1
                        _terminate_pool(slot.pool)
                        slot.pool = None
                    retry_or_fail(index, repr(exc))
                slot.future = None
            elif slot.deadline is not None and now >= slot.deadline:
                # Hung worker: kill it, respawn the slot's pool lazily.
                index = slot.index
                outcome = report.outcomes[index]
                outcome.timeouts += 1
                report.pool_respawns += 1
                _terminate_pool(slot.pool)
                slot.pool, slot.future = None, None
                retry_or_fail(index,
                              f"cell exceeded {timeout}s deadline")
        if report.pool_respawns > budget:
            return degrade(f"{report.pool_respawns} worker-pool failures")

    for slot in slots:
        if slot.pool is not None:
            slot.pool.shutdown(wait=True)
    return []
