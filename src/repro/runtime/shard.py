"""Sharded sweep scheduling: partitioning, work stealing, shard resume.

ROADMAP item 3: generalize the single process pool of
:mod:`repro.runtime.executor` into a multi-host-shaped shard scheduler.
A sweep's cells are first *partitioned* into ``REPRO_SHARDS`` shards
(:func:`partition`, policy from ``REPRO_SHARD_POLICY``):

* ``hash`` — cells land on ``sha256(pickle(cell)) % n``; stable under
  reordering of the sweep, so the same cell always homes on the same
  shard across runs.
* ``range`` — contiguous index blocks, sizes differing by at most one;
  the natural choice when neighbouring cells share warm caches.
* ``size`` (default) — deterministic longest-processing-time greedy over
  per-cell cost estimates (uniform when none are known), which keeps
  shard loads balanced when cell costs are skewed.

Execution then goes through :class:`ShardScheduler` — a *pure* decision
core with an injected clock and no I/O, shared verbatim between the real
process driver (:func:`run_sharded_loop`) and the discrete-event testbed
of :mod:`repro.runtime.sim`.  Each worker drains its *home* shards
(``shard % n_workers == worker``) in FIFO order and, when those are
empty, **steals from the longest remaining queue** (ties to the lowest
shard id) so one straggler shard cannot serialize the sweep.  Every
steal is recorded with a queue-depth snapshot, which is how the sim
asserts the steal policy as an invariant rather than trusting it.

Fault recovery is PR 2's machinery, reused not rebuilt: the real driver
runs each worker slot on the single-worker pools of
:mod:`repro.runtime.resilience`, with the same retry budget, per-cell
deadline kills, pool-respawn budget and serial degradation.  Journaled
sweeps checkpoint per shard (``shard-<k>/cell-<i>.pkl`` under the sweep
journal); entries are keyed by *global* cell index, so a resume may use
a different shard count and still merge bit-exact with the serial path.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from .resilience import FAILED

#: Environment variable: shard count for sweeps (int or 'auto').
SHARDS_ENV = "REPRO_SHARDS"
#: Environment variable: cell->shard partition policy.
POLICY_ENV = "REPRO_SHARD_POLICY"

#: Recognised partition policies.
POLICIES = ("hash", "range", "size")
DEFAULT_POLICY = "size"

#: Pickle protocol for hash-policy cell digests (stable across runs).
_PICKLE_PROTOCOL = 4

#: Scheduler verdicts returned by :meth:`ShardScheduler.fail`.
RETRY = "retry"
GAVE_UP = "gave-up"


def shard_count(default: int = 1) -> int:
    """Shard count from ``REPRO_SHARDS``.

    Accepted values: a positive integer, or ``auto``/``0`` for one shard
    per CPU.  Unset (or empty) falls back to ``default`` — unsharded.
    """
    raw = os.environ.get(SHARDS_ENV)
    if raw is None or not raw.strip():
        return default
    text = raw.strip().lower()
    if text == "auto":
        return os.cpu_count() or 1
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"{SHARDS_ENV} must be a positive integer or 'auto', "
            f"got {raw!r}") from None
    if value < 0:
        raise ValueError(
            f"{SHARDS_ENV} must not be negative, got {value}")
    if value == 0:
        return os.cpu_count() or 1
    return value


def shard_policy() -> str:
    """Partition policy from ``REPRO_SHARD_POLICY`` (default ``size``)."""
    raw = os.environ.get(POLICY_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_POLICY
    text = raw.strip().lower()
    if text not in POLICIES:
        raise ValueError(
            f"{POLICY_ENV} must be one of {'/'.join(POLICIES)}, "
            f"got {raw!r}")
    return text


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """A fixed cell->shard assignment for one sweep."""

    n_shards: int
    policy: str
    assignment: Tuple[int, ...]   #: shard id per global cell index

    @property
    def n_cells(self) -> int:
        return len(self.assignment)

    def shard_of(self, index: int) -> int:
        return self.assignment[index]

    def cells_in(self, shard: int) -> List[int]:
        return [i for i, s in enumerate(self.assignment) if s == shard]

    def counts(self) -> List[int]:
        out = [0] * self.n_shards
        for s in self.assignment:
            out[s] += 1
        return out


def _cell_digest(cell: object, index: int) -> int:
    """Stable 64-bit digest of one cell (index fallback if unpicklable)."""
    try:
        blob = pickle.dumps(cell, protocol=_PICKLE_PROTOCOL)
    except Exception:
        blob = str(index).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def partition(cells: Sequence, n_shards: int,
              policy: str = DEFAULT_POLICY,
              costs: Optional[Sequence[float]] = None) -> ShardPlan:
    """Assign every cell to a shard under ``policy``, deterministically.

    ``costs`` (per-cell cost estimates, same length as ``cells``) steer
    the ``size`` policy; the other policies ignore them.  The shard
    count is clamped to the cell count so no shard starts empty.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown shard policy {policy!r}; expected one of "
            f"{'/'.join(POLICIES)}")
    n = len(cells)
    if n == 0:
        return ShardPlan(n_shards=1, policy=policy, assignment=())
    n_shards = max(1, min(int(n_shards), n))
    if policy == "hash":
        assignment = [_cell_digest(cell, i) % n_shards
                      for i, cell in enumerate(cells)]
    elif policy == "range":
        base, extra = divmod(n, n_shards)
        assignment = []
        for s in range(n_shards):
            assignment.extend([s] * (base + (1 if s < extra else 0)))
    else:  # size: LPT greedy — heaviest cell first, least-loaded shard
        weights = ([float(c) for c in costs] if costs is not None
                   else [1.0] * n)
        if len(weights) != n:
            raise ValueError(
                f"costs length {len(weights)} != cell count {n}")
        order = sorted(range(n), key=lambda i: (-weights[i], i))
        loads = [0.0] * n_shards
        assignment = [0] * n
        for i in order:
            s = min(range(n_shards), key=lambda k: (loads[k], k))
            assignment[i] = s
            loads[s] += weights[i]
    return ShardPlan(n_shards=n_shards, policy=policy,
                     assignment=tuple(assignment))


# ----------------------------------------------------------------------
# The pure scheduler core (shared by the process driver and the sim)
# ----------------------------------------------------------------------

def home_shards(worker: int, n_shards: int, n_workers: int
                ) -> Tuple[int, ...]:
    """Shards worker ``worker`` owns: ``shard % n_workers == worker``."""
    return tuple(s for s in range(n_shards) if s % n_workers == worker)


@dataclass(frozen=True)
class Assignment:
    """One cell handed to one worker for one attempt."""

    cell: int
    shard: int
    worker: int
    attempt: int
    stolen: bool


@dataclass(frozen=True)
class StealRecord:
    """Audit record of one steal, with the queue depths that justified it."""

    worker: int
    cell: int
    shard: int                 #: victim shard the cell was taken from
    depths: Tuple[int, ...]    #: per-shard queue depth at steal time


class ShardStateError(RuntimeError):
    """The scheduler was driven through an impossible transition."""


class ShardScheduler:
    """Work-stealing dispatch over a fixed :class:`ShardPlan`.

    Pure decision logic: no processes, no sleeping, no wall clock — time
    enters only through the injected ``clock`` callable, which is how
    the discrete-event testbed (:mod:`repro.runtime.sim`) runs this
    exact class under a virtual clock.  The scheduler owns per-shard
    FIFO queues, the retry/backoff bookkeeping of the ``outcomes`` it is
    given, and the steal audit trail; callers own execution.

    Dispatch order is deterministic given the plan, the pending set and
    the sequence of ``acquire``/``complete``/``fail`` calls: home shards
    are scanned in ascending id, steals take from the longest queue with
    ties to the lowest shard id, and deferred retries re-enter their
    home queue in ``(ready_at, cell)`` order.
    """

    def __init__(self, plan: ShardPlan, pending: Sequence[int],
                 n_workers: int, retries: int,
                 clock: Callable[[], float],
                 outcomes: Sequence,
                 backoff: Optional[Callable[[int], float]] = None):
        self.plan = plan
        self.n_workers = max(1, n_workers)
        self.retries = retries
        self.clock = clock
        self.outcomes = outcomes
        self.backoff = backoff if backoff is not None else (lambda _: 0.0)
        self._cells = set(pending)
        self._queues: List[Deque[int]] = [deque()
                                          for _ in range(plan.n_shards)]
        for index in sorted(self._cells):
            self._queues[plan.assignment[index]].append(index)
        #: (ready_at, cell) retries deferred for backoff.
        self._waiting: List[Tuple[float, int]] = []
        self._inflight: Dict[int, Assignment] = {}
        self._completed: set = set()
        self._failed: set = set()
        self.steals: List[StealRecord] = []

    # -- queue maintenance ---------------------------------------------

    def _promote_ripe(self) -> None:
        """Move retries whose backoff has elapsed back into their queue."""
        if not self._waiting:
            return
        now = self.clock()
        ripe = sorted((r, c) for r, c in self._waiting if r <= now)
        if not ripe:
            return
        self._waiting = [(r, c) for r, c in self._waiting if r > now]
        for _, cell in ripe:
            self._queues[self.plan.assignment[cell]].append(cell)

    def home_shards(self, worker: int) -> Tuple[int, ...]:
        return home_shards(worker % self.n_workers, self.plan.n_shards,
                           self.n_workers)

    # -- worker protocol -----------------------------------------------

    def acquire(self, worker: int) -> Optional[Assignment]:
        """Next cell for ``worker``, or ``None`` when nothing is ready.

        Home shards first (ascending id); otherwise steal from the
        longest queue, recording the decision.  ``None`` does not mean
        the sweep is finished — retries may still be backing off and
        other workers may still be running (:meth:`next_ready_at`,
        :attr:`finished`).
        """
        if worker in self._inflight:
            raise ShardStateError(
                f"worker {worker} acquired twice without completing")
        self._promote_ripe()
        homes = self.home_shards(worker)
        chosen = next((s for s in homes if self._queues[s]), None)
        stolen = False
        if chosen is None:
            depths = tuple(len(q) for q in self._queues)
            deepest = max(depths, default=0)
            if deepest == 0:
                return None
            chosen = depths.index(deepest)
            stolen = chosen not in homes
            if stolen:
                self.steals.append(StealRecord(
                    worker=worker, cell=self._queues[chosen][0],
                    shard=chosen, depths=depths))
        cell = self._queues[chosen].popleft()
        outcome = self.outcomes[cell]
        attempt = outcome.attempts
        outcome.attempts += 1
        outcome.shard = self.plan.assignment[cell]
        if stolen:
            outcome.stolen = True
        assignment = Assignment(cell=cell,
                                shard=self.plan.assignment[cell],
                                worker=worker, attempt=attempt,
                                stolen=stolen)
        self._inflight[worker] = assignment
        return assignment

    def unacquire(self, worker: int) -> None:
        """Hand a cell back unrun (e.g. the worker pool failed to spawn).

        The attempt is uncounted and the cell returns to the *front* of
        its home queue, preserving FIFO order.
        """
        assignment = self._pop_inflight(worker)
        self.outcomes[assignment.cell].attempts -= 1
        self._queues[assignment.shard].appendleft(assignment.cell)

    def abandon(self, worker: int) -> Assignment:
        """Requeue a worker's in-flight cell without judging the attempt.

        The degrade path: execution was interrupted mid-cell, so the
        attempt stays counted (it was real work) but the cell goes back
        to its home queue for the serial finisher instead of burning a
        retry verdict here.
        """
        assignment = self._pop_inflight(worker)
        self._queues[assignment.shard].append(assignment.cell)
        return assignment

    def complete(self, worker: int) -> Assignment:
        """Record ``worker``'s in-flight cell as done, exactly once."""
        assignment = self._pop_inflight(worker)
        if assignment.cell in self._completed:
            raise ShardStateError(
                f"cell {assignment.cell} completed twice")
        self._completed.add(assignment.cell)
        return assignment

    def fail(self, worker: int, error: str,
             timed_out: bool = False) -> str:
        """Record a failed attempt; schedule a retry or give the cell up.

        Returns :data:`RETRY` when the cell will re-run after backoff,
        :data:`GAVE_UP` when its retry budget is exhausted (the outcome
        is marked failed with ``error``).
        """
        assignment = self._pop_inflight(worker)
        outcome = self.outcomes[assignment.cell]
        if timed_out:
            outcome.timeouts += 1
        if outcome.attempts <= self.retries:
            ready_at = self.clock() + self.backoff(outcome.attempts - 1)
            self._waiting.append((ready_at, assignment.cell))
            return RETRY
        outcome.status = FAILED
        outcome.error = error
        self._failed.add(assignment.cell)
        return GAVE_UP

    def _pop_inflight(self, worker: int) -> Assignment:
        assignment = self._inflight.pop(worker, None)
        if assignment is None:
            raise ShardStateError(
                f"worker {worker} has no in-flight cell")
        return assignment

    # -- progress ------------------------------------------------------

    def next_ready_at(self) -> Optional[float]:
        """Earliest backoff expiry among deferred retries, or ``None``."""
        if not self._waiting:
            return None
        return min(r for r, _ in self._waiting)

    def has_ready(self) -> bool:
        """Whether any queue holds a cell ready to dispatch right now."""
        self._promote_ripe()
        return any(self._queues)

    @property
    def inflight(self) -> Dict[int, Assignment]:
        return dict(self._inflight)

    @property
    def completed(self) -> List[int]:
        return sorted(self._completed)

    @property
    def failed(self) -> List[int]:
        return sorted(self._failed)

    @property
    def finished(self) -> bool:
        """Every pending cell reached a terminal state, nothing running."""
        return (not self._inflight
                and len(self._completed) + len(self._failed)
                == len(self._cells))

    def remaining(self) -> List[int]:
        """Cells not yet terminal (queued, backing off, or in flight)."""
        return sorted(self._cells - self._completed - self._failed)

    def shard_progress(self) -> Dict[int, int]:
        """Completed-cell count per shard (only shards with progress)."""
        out: Dict[int, int] = {}
        for cell in sorted(self._completed):
            shard = self.plan.assignment[cell]
            out[shard] = out.get(shard, 0) + 1
        return out


# ----------------------------------------------------------------------
# Report vocabulary
# ----------------------------------------------------------------------

@dataclass
class ShardInfo:
    """Shard-scheduler account attached to a ``SweepReport``."""

    n_shards: int
    policy: str
    n_workers: int
    steals: int = 0
    #: Completed cells per shard id (filled as the sweep finishes).
    cells_done: Dict[int, int] = field(default_factory=dict)

    def describe(self) -> str:
        return (f"sharded {self.n_shards}x{self.policy} over "
                f"{self.n_workers} worker(s), {self.steals} steal(s)")


# ----------------------------------------------------------------------
# The real process driver
# ----------------------------------------------------------------------

def run_sharded_loop(fn: Callable, cells: Sequence,
                     pending: Sequence[int], results: List,
                     done: List[bool], report, plan: ShardPlan,
                     n_workers: int, retries: int,
                     timeout: Optional[float], inject: bool,
                     journal) -> List[int]:
    """Drive :class:`ShardScheduler` over real worker processes.

    The execution substrate is :mod:`repro.runtime.resilience`'s —
    single-worker pools per slot, deadline kills, pool respawn under the
    same budget, and per-shard journal checkpoints.  Returns the cell
    indexes still pending, non-empty only when the sweep degraded and
    the caller should finish serially (exactly the ``_run_parallel``
    contract).
    """
    from . import resilience as res

    scheduler = ShardScheduler(plan, pending, n_workers, retries,
                               clock=time.monotonic,
                               outcomes=report.outcomes,
                               backoff=res._backoff)
    slots = [res._Slot() for _ in range(n_workers)]
    budget = max(res.POOL_RESPAWN_BUDGET, 2 * n_workers)
    info = report.shards

    def finalize_info() -> None:
        if info is not None:
            info.steals = len(scheduler.steals)
            info.cells_done = scheduler.shard_progress()

    def degrade(why: str) -> List[int]:
        for slot in slots:
            res._terminate_pool(slot.pool)
            slot.pool, slot.future = None, None
        for worker in list(scheduler.inflight):
            scheduler.abandon(worker)
        report.degraded_serial = True
        finalize_info()
        warnings.warn(
            f"sweep {report.label or '<unlabeled>'} degraded to serial "
            f"execution: {why}", RuntimeWarning, stacklevel=4)
        return scheduler.remaining()

    while not scheduler.finished:
        # Fill idle worker slots from the scheduler.
        for worker, slot in enumerate(slots):
            if slot.future is not None:
                continue
            assignment = scheduler.acquire(worker)
            if assignment is None:
                continue
            try:
                if slot.pool is None:
                    slot.pool = res._new_pool()
                slot.future = slot.pool.submit(
                    res._pool_cell, fn, cells[assignment.cell],
                    assignment.cell, assignment.attempt, inject,
                    assignment.shard)
            except (BrokenProcessPool, OSError, RuntimeError):
                scheduler.unacquire(worker)
                report.pool_respawns += 1
                res._terminate_pool(slot.pool)
                slot.pool, slot.future = None, None
                if report.pool_respawns > budget:
                    return degrade(
                        f"{report.pool_respawns} worker-pool failures")
                continue
            slot.index = assignment.cell
            slot.deadline = (time.monotonic() + timeout
                             if timeout is not None else None)

        busy = [(w, s) for w, s in enumerate(slots)
                if s.future is not None]
        if not busy:
            if scheduler.finished:
                break
            ready_at = scheduler.next_ready_at()
            if ready_at is None:
                if scheduler.has_ready():
                    continue  # a cell was handed back; redispatch
                break  # nothing queued, waiting or running
            time.sleep(max(0.0, ready_at - time.monotonic()) + 0.001)
            continue

        wait_for = None
        deadlines = [slot.deadline for _, slot in busy
                     if slot.deadline is not None]
        if deadlines:
            wait_for = max(0.0, min(deadlines) - time.monotonic())
        next_retry = scheduler.next_ready_at()
        if next_retry is not None and len(busy) < len(slots):
            soonest = max(0.0, next_retry - time.monotonic())
            wait_for = soonest if wait_for is None \
                else min(wait_for, soonest)
        finished, _ = wait([slot.future for _, slot in busy],
                           timeout=wait_for,
                           return_when=FIRST_COMPLETED)

        now = time.monotonic()
        for worker, slot in busy:
            if slot.future in finished:
                exc = slot.future.exception()
                if exc is None:
                    assignment = scheduler.complete(worker)
                    res._record_success(
                        assignment.cell, slot.future.result(), results,
                        done, report, journal, shard=assignment.shard)
                else:
                    if isinstance(exc, BrokenProcessPool):
                        report.pool_respawns += 1
                        res._terminate_pool(slot.pool)
                        slot.pool = None
                    scheduler.fail(worker, repr(exc))
                slot.future = None
            elif slot.deadline is not None and now >= slot.deadline:
                # Hung worker: kill it; the slot's pool respawns lazily.
                report.pool_respawns += 1
                res._terminate_pool(slot.pool)
                slot.pool, slot.future = None, None
                scheduler.fail(worker,
                               f"cell exceeded {timeout}s deadline",
                               timed_out=True)
        if report.pool_respawns > budget:
            return degrade(f"{report.pool_respawns} worker-pool failures")

    for slot in slots:
        if slot.pool is not None:
            slot.pool.shutdown(wait=True)
    finalize_info()
    return scheduler.remaining()
