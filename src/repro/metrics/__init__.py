"""Post-processing metrics: fetch/issue interaction (Section 4)."""

from .issue import IssueResult, simulate_issue

__all__ = ["IssueResult", "simulate_issue"]
