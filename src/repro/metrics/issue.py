"""Issue-buffer model — Section 4's fetch/issue interaction.

"When fetching two blocks per cycle of potentially eight instructions
each, up to sixteen instructions may be returned in one cycle.
Consequently, the effective instruction fetching rate can be greater than
B.  If an eight issue processor is used, then extra instructions returned
can be buffered.  When the raw two block rate is greater than 8, the
issue unit will usually receive, and average close to, 8 instructions per
request."

Fetch engines can record a *timeline* — instructions delivered per cycle,
with stall cycles delivering zero — and this module drains that timeline
through a bounded FIFO at a given issue width, quantifying how much of
the raw fetch rate an N-issue core actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class IssueResult:
    """Outcome of draining a fetch timeline through an issue buffer."""

    issue_width: int
    buffer_capacity: int
    cycles: int              #: total cycles until everything issued
    instructions: int
    starved_cycles: int      #: cycles the issue unit got nothing
    full_cycles: int         #: fetch cycles throttled by a full buffer

    @property
    def issue_ipc(self) -> float:
        """Average instructions issued per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def starvation_rate(self) -> float:
        """Fraction of cycles the issue unit received nothing."""
        return self.starved_cycles / self.cycles if self.cycles else 0.0


def simulate_issue(timeline: Sequence[int], issue_width: int = 8,
                   buffer_capacity: int = 32) -> IssueResult:
    """Drain a per-cycle fetch timeline through a FIFO issue buffer.

    Each cycle: the fetch unit delivers ``timeline[t]`` instructions
    (clipped by the buffer's free space — a full buffer stalls fetch, and
    the undelivered remainder carries over), then the issue unit removes
    up to ``issue_width``.  After the timeline is exhausted the buffer
    drains to empty.
    """
    if issue_width < 1:
        raise ValueError("issue_width must be positive")
    if buffer_capacity < 1:
        raise ValueError("buffer_capacity must be positive")
    buffer = 0
    pending = 0          # instructions fetched but not yet accepted
    issued_total = 0
    starved = 0
    full = 0
    cycles = 0
    t = 0
    n = len(timeline)
    while t < n or pending or buffer:
        if t < n and pending == 0:
            pending = timeline[t]
            t += 1
        room = buffer_capacity - buffer
        if pending > room:
            full += 1
        accepted = pending if pending <= room else room
        buffer += accepted
        pending -= accepted
        issued = buffer if buffer < issue_width else issue_width
        if issued == 0:
            starved += 1
        buffer -= issued
        issued_total += issued
        cycles += 1
    return IssueResult(
        issue_width=issue_width,
        buffer_capacity=buffer_capacity,
        cycles=cycles,
        instructions=issued_total,
        starved_cycles=starved,
        full_cycles=full,
    )
