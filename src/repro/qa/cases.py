"""Replayable fuzz cases: a JSON-serializable recipe for one oracle run.

A :class:`QACase` pins everything the differential oracle needs to
reproduce a run exactly: the engine under test (and its extra
constructor knobs), the cache geometry, the full
:class:`~repro.core.config.EngineConfig`, and the synthetic workload —
named by a *family* plus integer parameters, never by an opaque trace
dump.  Because every field is a small scalar, cases round-trip through
JSON, diff cleanly in a regression corpus, and shrink by simple field
rewrites (see :mod:`repro.qa.shrink`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple

from ..core.config import EngineConfig, FetchInput
from ..icache.geometry import CacheGeometry

#: Engines the oracle can drive, in campaign rotation order.
ENGINE_KINDS: Tuple[str, ...] = ("single", "dual", "multi", "two_ahead")

#: Current artifact schema version (bump on incompatible changes).
CASE_FORMAT = 1

_GEOMETRY_KINDS = ("normal", "extend", "align")


class CaseError(ValueError):
    """Raised when a case (or artifact) cannot be decoded or rebuilt."""


@dataclass(frozen=True)
class QACase:
    """One differential-fuzzing case.

    Attributes:
        engine: one of :data:`ENGINE_KINDS`.
        geometry_kind: ``normal`` / ``extend`` / ``align`` (the CLI's
            cache names).
        block_width: fetch-block width the geometry is built for.
        family: workload family name in
            :data:`repro.qa.generators.FAMILIES`.
        params: integer parameters of the family builder.
        budget: dynamic-instruction budget for the interpreter run.
        repeats: how many times the oracle replays the same input on one
            warm engine (warm-table coverage).
        config: keyword overrides applied on top of the default
            :class:`EngineConfig` (JSON-safe scalars only).
        n_blocks: blocks per cycle (``multi`` engine only).
        serialization_penalty: extra per-pair cycle (``two_ahead`` only).
        track_recovery: record BBR entries (``single`` only; exercises
            the fast engine's documented scalar fallback).
        record_timeline: record the delivery timeline (``dual`` only;
            also a scalar-fallback path).
    """

    engine: str
    geometry_kind: str = "normal"
    block_width: int = 8
    family: str = "synthetic"
    params: Dict[str, int] = field(default_factory=dict)
    budget: int = 4000
    repeats: int = 1
    config: Dict[str, Any] = field(default_factory=dict)
    n_blocks: int = 2
    serialization_penalty: int = 0
    track_recovery: bool = False
    record_timeline: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise CaseError(f"unknown engine kind: {self.engine!r}")
        if self.geometry_kind not in _GEOMETRY_KINDS:
            raise CaseError(f"unknown geometry kind: {self.geometry_kind!r}")
        if self.budget < 100:
            raise CaseError("budget must be >= 100 instructions")
        if self.repeats < 1:
            raise CaseError("repeats must be >= 1")
        if self.n_blocks < 1:
            raise CaseError("n_blocks must be >= 1")

    # ------------------------------------------------------------------
    # Construction of the simulated objects
    # ------------------------------------------------------------------

    def geometry(self) -> CacheGeometry:
        """The cache geometry this case runs under."""
        if self.geometry_kind == "extend":
            return CacheGeometry.extended(self.block_width)
        if self.geometry_kind == "align":
            return CacheGeometry.self_aligned(self.block_width)
        return CacheGeometry.normal(self.block_width)

    def engine_config(self) -> EngineConfig:
        """Build the :class:`EngineConfig`, validating the overrides."""
        overrides = dict(self.config)
        if self.track_recovery:
            overrides["track_recovery"] = True
        try:
            return replace(EngineConfig(geometry=self.geometry()),
                           **overrides)
        except (TypeError, ValueError) as exc:
            raise CaseError(f"invalid engine config: {exc}") from exc

    def fetch_input(self) -> FetchInput:
        """Generate the workload and bundle it for the fetch engines."""
        from .generators import build_family_program

        program = build_family_program(self.family, self.params)
        return FetchInput.from_program(program, self.geometry(),
                                       max_instructions=self.budget)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar dictionary (stable key order via dataclass)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QACase":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f for f in cls.__dataclass_fields__}
        extra = sorted(set(data) - known)
        if extra:
            raise CaseError(f"unknown case fields: {extra}")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise CaseError(f"malformed case: {exc}") from exc

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self, length: int = 12) -> str:
        """Stable content digest used for corpus file names."""
        sha = hashlib.sha256(self.canonical_json().encode("ascii"))
        return sha.hexdigest()[:length]

    def label(self) -> str:
        """Short human-readable identity for logs."""
        extras = []
        if self.engine == "multi":
            extras.append(f"x{self.n_blocks}")
        if self.engine == "two_ahead" and self.serialization_penalty:
            extras.append(f"ser{self.serialization_penalty}")
        if self.track_recovery:
            extras.append("recovery")
        if self.record_timeline:
            extras.append("timeline")
        suffix = ("[" + ",".join(extras) + "]") if extras else ""
        return (f"{self.engine}{suffix}/{self.geometry_kind}"
                f"-B{self.block_width}/{self.family}/{self.digest(8)}")


def default_config_overrides() -> Dict[str, Any]:
    """The override keys :mod:`repro.qa.generators` may emit.

    Shrinking walks exactly these keys, so keeping the list in one place
    stops the generator and the shrinker drifting apart.
    """
    return {
        "history_length": 10,
        "n_pht_tables": 1,
        "n_select_tables": 1,
        "target_kind": "nls",
        "target_entries": 256,
        "btb_associativity": 4,
        "near_block": False,
        "ras_size": 32,
        "bit_entries": None,
        "selection": "single",
        "track_not_taken_targets": True,
    }


def case_engine(case: QACase) -> Any:
    """Construct a fresh engine for ``case`` (any of the four kinds)."""
    from ..core.dual import DualBlockEngine
    from ..core.multi import MultiBlockEngine
    from ..core.single import SingleBlockEngine
    from ..core.two_ahead import TwoBlockAheadEngine

    config = case.engine_config()
    try:
        if case.engine == "single":
            return SingleBlockEngine(config)
        if case.engine == "dual":
            return DualBlockEngine(config)
        if case.engine == "multi":
            return MultiBlockEngine(config, case.n_blocks)
        return TwoBlockAheadEngine(
            config, serialization_penalty=case.serialization_penalty)
    except ValueError as exc:
        raise CaseError(f"engine rejected the config: {exc}") from exc


def load_case(data: Mapping[str, Any]) -> QACase:
    """Decode a case from an artifact payload, checking the format tag."""
    if "case" in data:
        version = data.get("format")
        if version != CASE_FORMAT:
            raise CaseError(
                f"unsupported artifact format {version!r} "
                f"(this build reads format {CASE_FORMAT})")
        inner = data["case"]
        if not isinstance(inner, Mapping):
            raise CaseError("artifact 'case' field must be an object")
        return QACase.from_dict(inner)
    return QACase.from_dict(data)


def is_valid_case(case: QACase) -> bool:
    """True when the engine accepts the case's configuration."""
    try:
        case.engine_config()
        case_engine(case)
    except CaseError:
        return False
    return True
