"""The campaign loop: search the case space until the time budget ends.

A campaign is fully determined by its seed: cases come from
:class:`~repro.qa.generators.CaseStream`, whose ``i``-th case depends
only on ``(seed, i)``, cycling engines ``single -> dual -> multi ->
two_ahead``.  Each case goes through the engine differential oracle
(``REPRO_ENGINE`` scalar vs fast, stats + full state), the trace-capture
parity oracle (``REPRO_TRACER`` scalar vs fast, every record plus the
architectural end state), the metamorphic invariants and the
shard-equivalence oracle (the case's derived sweep replayed through the
shard scheduler under simulated schedules, bit-exact against serial);
the first failure is shrunk to a minimal case and written to the corpus
directory, and the campaign stops so CI surfaces exactly one readable
artifact per run.

Only the *number* of cases a wall-clock budget covers varies between
machines — never which case any index denotes, so "seed 5, case 17"
in a CI log is enough to reproduce a finding anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from pathlib import Path

from .cases import ENGINE_KINDS, QACase
from .generators import CaseStream
from .invariants import check_case_invariants
from .oracle import check_case, check_tracer_parity
from .sharding import check_shard_equivalence
from .shrink import shrink_case

__all__ = ["CampaignResult", "Finding", "run_campaign", "check_full",
           "replay_corpus"]

#: How often (case count) the progress callback fires.
_PROGRESS_EVERY = 10


@dataclass
class Finding:
    """One failure, as found and as shrunk."""

    index: int
    reason: str
    original: QACase
    shrunk: QACase
    artifact: Optional[Path] = None


@dataclass
class CampaignResult:
    """Summary of one campaign run."""

    seed: int
    n_cases: int = 0
    elapsed: float = 0.0
    findings: List[Finding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings


def check_full(case: QACase) -> Optional[str]:
    """Oracle plus invariants; the campaign's per-case verdict.

    Returns ``None`` when the case passes, else a reason string.
    """
    verdict = check_case(case)
    if not verdict.passed:
        return f"differential: {verdict.reason}"
    tracer_reason = check_tracer_parity(case)
    if tracer_reason is not None:
        return f"tracer: {tracer_reason}"
    scalar_stats = None
    if verdict.scalar is not None and verdict.scalar.stats:
        scalar_stats = verdict.scalar.stats[0]
    invariant_reason = check_case_invariants(case, stats=scalar_stats)
    if invariant_reason is not None:
        return invariant_reason
    shard_reason = check_shard_equivalence(case)
    if shard_reason is not None:
        return f"shard: {shard_reason}"
    return None


def run_campaign(seed: int, budget_seconds: float,
                 engines: Tuple[str, ...] = ENGINE_KINDS,
                 corpus_dir: Optional[Union[str, Path]] = None,
                 max_cases: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> CampaignResult:
    """Run a seeded campaign for up to ``budget_seconds`` of wall clock.

    Stops at the first failure (after shrinking it and, when
    ``corpus_dir`` is given, writing its artifact), when the time budget
    runs out, or after ``max_cases`` cases — whichever comes first.  At
    least one case always runs, so a tiny budget still checks something.
    """
    from .corpus import write_artifact

    result = CampaignResult(seed=seed)
    stream = CaseStream(seed, engines)
    start = time.monotonic()
    say = progress or (lambda _msg: None)
    while True:
        index, case = stream.next()
        reason = check_full(case)
        result.n_cases += 1
        if reason is not None:
            say(f"case {index} FAILED ({case.label()}): {reason}")
            say("shrinking ...")
            shrunk = shrink_case(
                case, lambda c: check_full(c) is not None)
            say(f"shrunk in {shrunk.steps} steps / "
                f"{shrunk.probes} probes -> {shrunk.case.label()}")
            finding = Finding(index=index, reason=reason,
                              original=case, shrunk=shrunk.case)
            if corpus_dir is not None:
                finding.artifact = write_artifact(
                    shrunk.case, reason, corpus_dir,
                    found={"seed": seed, "index": index})
                say(f"artifact written: {finding.artifact}")
            result.findings.append(finding)
            break
        if result.n_cases % _PROGRESS_EVERY == 0:
            say(f"{result.n_cases} cases ok "
                f"({time.monotonic() - start:.0f}s)")
        if max_cases is not None and result.n_cases >= max_cases:
            break
        if time.monotonic() - start >= budget_seconds:
            break
    result.elapsed = time.monotonic() - start
    return result


def replay_corpus(directory: Union[str, Path],
                  progress: Optional[Callable[[str], None]] = None,
                  ) -> List[Tuple[Path, Optional[str]]]:
    """Re-check every corpus artifact; returns ``(path, reason)`` pairs.

    ``reason`` is ``None`` for artifacts that pass (the regression is
    still fixed) and the failure string for any that regress.
    """
    from .corpus import iter_corpus

    say = progress or (lambda _msg: None)
    results: List[Tuple[Path, Optional[str]]] = []
    for path, case, recorded in iter_corpus(directory):
        reason = check_full(case)
        status = "PASS" if reason is None else f"FAIL: {reason}"
        say(f"{path.name} ({case.label()}): {status}")
        if reason is not None and recorded:
            say(f"  originally failed as: {recorded}")
        results.append((path, reason))
    return results
