"""The differential oracle: scalar vs fast, stats and state bit-exact.

One :func:`check_case` call runs a :class:`~repro.qa.cases.QACase`
through its engine twice — once with ``REPRO_ENGINE=scalar`` (the
reference loops) and once with ``REPRO_ENGINE=fast`` (the SoA kernels)
— on *fresh* engines, replaying the same :class:`FetchInput` ``repeats``
times on each so warm-table behaviour is covered too.  The verdict is
strict equality of:

* every per-run :class:`~repro.core.stats.FetchStats` (including the
  delivery timeline when recorded),
* the complete final predictor state (:func:`repro.qa.state.engine_state`),
* the recovery log, when the case tracks recovery.

An exception raised by either mode is itself a verdict: the oracle
captures it and reports the case as failing (a crash that only one mode
hits *is* a divergence).
"""

from __future__ import annotations

import os
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .. import envvars
from ..core.engine_mode import ENGINE_ENV
from .cases import QACase, case_engine
from .state import describe_diff, engine_state, stats_snapshot

__all__ = ["ModeRun", "OracleVerdict", "engine_mode_env", "run_mode",
           "check_case"]


@contextmanager
def engine_mode_env(mode: str) -> Iterator[None]:
    """Temporarily pin ``REPRO_ENGINE`` to ``mode``."""
    previous = envvars.read(ENGINE_ENV)
    os.environ[ENGINE_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous


@dataclass
class ModeRun:
    """Everything one engine mode produced for a case."""

    mode: str
    stats: List[Any] = field(default_factory=list)
    state: Optional[Dict[str, Any]] = None
    recovery_log: Optional[List[Any]] = None
    error: Optional[str] = None

    @property
    def crashed(self) -> bool:
        return self.error is not None


@dataclass
class OracleVerdict:
    """Outcome of one differential check."""

    case: QACase
    passed: bool
    reason: Optional[str] = None
    scalar: Optional[ModeRun] = None
    fast: Optional[ModeRun] = None

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = f"{status} {self.case.label()}"
        if self.reason:
            text += f": {self.reason}"
        return text


def run_mode(case: QACase, mode: str) -> ModeRun:
    """Run ``case`` on a fresh engine under one ``REPRO_ENGINE`` mode."""
    run = ModeRun(mode=mode)
    try:
        with engine_mode_env(mode):
            engine = case_engine(case)
            fetch_input = case.fetch_input()
            for _ in range(case.repeats):
                if case.engine == "dual" and case.record_timeline:
                    stats = engine.run(fetch_input, record_timeline=True)
                else:
                    stats = engine.run(fetch_input)
                run.stats.append(stats)
            run.state = engine_state(engine)
            if case.track_recovery:
                run.recovery_log = list(engine.recovery_log)
    except Exception:
        run.error = traceback.format_exc(limit=8)
    return run


def check_case(case: QACase) -> OracleVerdict:
    """Differential verdict for one case (never raises for a finding)."""
    scalar = run_mode(case, "scalar")
    fast = run_mode(case, "fast")
    verdict = OracleVerdict(case=case, passed=True, scalar=scalar,
                            fast=fast)

    if scalar.crashed and fast.crashed:
        # Both modes rejecting/crashing identically is not a parity
        # break; it usually means the generator produced a config the
        # engine legitimately refuses.  Still surface it as a failure
        # when the tracebacks disagree on the exception type.
        scalar_last = scalar.error.strip().splitlines()[-1] \
            if scalar.error else ""
        fast_last = fast.error.strip().splitlines()[-1] \
            if fast.error else ""
        if scalar_last != fast_last:
            verdict.passed = False
            verdict.reason = (f"modes crashed differently: scalar "
                              f"{scalar_last!r} vs fast {fast_last!r}")
        return verdict
    if scalar.crashed or fast.crashed:
        crashed = scalar if scalar.crashed else fast
        verdict.passed = False
        verdict.reason = (f"{crashed.mode} mode crashed: "
                          + (crashed.error or "").strip()
                          .splitlines()[-1])
        return verdict

    for i, (s, f) in enumerate(zip(scalar.stats, fast.stats)):
        if s != f:
            verdict.passed = False
            diff = describe_diff(stats_snapshot(s), stats_snapshot(f),
                                 label=f"stats[{i}]")
            verdict.reason = diff or f"stats[{i}] differ"
            return verdict

    state_diff = describe_diff(scalar.state, fast.state, label="state")
    if state_diff is not None:
        verdict.passed = False
        verdict.reason = state_diff
        return verdict

    if case.track_recovery and scalar.recovery_log != fast.recovery_log:
        verdict.passed = False
        verdict.reason = describe_diff(scalar.recovery_log,
                                       fast.recovery_log,
                                       label="recovery_log") \
            or "recovery logs differ"
    return verdict
