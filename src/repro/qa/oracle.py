"""The differential oracle: scalar vs fast, stats and state bit-exact.

One :func:`check_case` call runs a :class:`~repro.qa.cases.QACase`
through its engine twice — once with ``REPRO_ENGINE=scalar`` (the
reference loops) and once with ``REPRO_ENGINE=fast`` (the SoA kernels)
— on *fresh* engines, replaying the same :class:`FetchInput` ``repeats``
times on each so warm-table behaviour is covered too.  The verdict is
strict equality of:

* every per-run :class:`~repro.core.stats.FetchStats` (including the
  delivery timeline when recorded),
* the complete final predictor state (:func:`repro.qa.state.engine_state`),
* the recovery log, when the case tracks recovery.

An exception raised by either mode is itself a verdict: the oracle
captures it and reports the case as failing (a crash that only one mode
hits *is* a divergence).
"""

from __future__ import annotations

import os
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .. import envvars
from ..core.backends import BACKEND_ENV, available_backends
from ..core.engine_mode import ENGINE_ENV
from ..cpu.tracer_mode import TRACER_ENV
from .cases import QACase, case_engine
from .state import describe_diff, engine_state, stats_snapshot

__all__ = ["ModeRun", "OracleVerdict", "engine_mode_env",
           "backend_mode_env", "tracer_mode_env", "run_mode",
           "check_case", "check_tracer_parity"]


@contextmanager
def _pinned_env(variable: str, mode: str) -> Iterator[None]:
    previous = envvars.read(variable)
    os.environ[variable] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(variable, None)
        else:
            os.environ[variable] = previous


@contextmanager
def engine_mode_env(mode: str) -> Iterator[None]:
    """Temporarily pin ``REPRO_ENGINE`` to ``mode``."""
    with _pinned_env(ENGINE_ENV, mode):
        yield


@contextmanager
def backend_mode_env(mode: str) -> Iterator[None]:
    """Temporarily pin ``REPRO_BACKEND`` to ``mode``."""
    with _pinned_env(BACKEND_ENV, mode):
        yield


@contextmanager
def tracer_mode_env(mode: str) -> Iterator[None]:
    """Temporarily pin ``REPRO_TRACER`` to ``mode``."""
    with _pinned_env(TRACER_ENV, mode):
        yield


@dataclass
class ModeRun:
    """Everything one engine mode produced for a case."""

    mode: str
    backend: Optional[str] = None
    stats: List[Any] = field(default_factory=list)
    state: Optional[Dict[str, Any]] = None
    recovery_log: Optional[List[Any]] = None
    error: Optional[str] = None

    def label(self) -> str:
        if self.backend is not None:
            return f"{self.mode}/{self.backend}"
        return self.mode

    @property
    def crashed(self) -> bool:
        return self.error is not None


@dataclass
class OracleVerdict:
    """Outcome of one differential check."""

    case: QACase
    passed: bool
    reason: Optional[str] = None
    scalar: Optional[ModeRun] = None
    fast: Optional[ModeRun] = None
    #: Extra fast-tier runs keyed by kernel backend (``REPRO_BACKEND``).
    backends: Dict[str, ModeRun] = field(default_factory=dict)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = f"{status} {self.case.label()}"
        if self.reason:
            text += f": {self.reason}"
        return text


@contextmanager
def _maybe_backend_env(backend: Optional[str]) -> Iterator[None]:
    if backend is None:
        yield
    else:
        with backend_mode_env(backend):
            yield


def run_mode(case: QACase, mode: str,
             backend: Optional[str] = None) -> ModeRun:
    """Run ``case`` on a fresh engine under one ``REPRO_ENGINE`` mode.

    ``backend`` additionally pins ``REPRO_BACKEND`` for the run, giving
    the oracle a second differential axis over the fast tier's kernel
    backends (the scalar reference never consults the backend).
    """
    run = ModeRun(mode=mode, backend=backend)
    try:
        with engine_mode_env(mode), _maybe_backend_env(backend):
            engine = case_engine(case)
            fetch_input = case.fetch_input()
            for _ in range(case.repeats):
                if case.engine == "dual" and case.record_timeline:
                    stats = engine.run(fetch_input, record_timeline=True)
                else:
                    stats = engine.run(fetch_input)
                run.stats.append(stats)
            run.state = engine_state(engine)
            if case.track_recovery:
                run.recovery_log = list(engine.recovery_log)
    except Exception:
        run.error = traceback.format_exc(limit=8)
    return run


def _compare_runs(verdict: OracleVerdict, reference: ModeRun,
                  candidate: ModeRun) -> bool:
    """Fold a reference/candidate comparison into ``verdict``.

    Returns False (and marks the verdict failed) on the first
    divergence; crash handling mirrors the scalar-vs-fast contract.
    """
    who = candidate.label()
    if reference.crashed and candidate.crashed:
        ref_last = reference.error.strip().splitlines()[-1] \
            if reference.error else ""
        cand_last = candidate.error.strip().splitlines()[-1] \
            if candidate.error else ""
        if ref_last != cand_last:
            verdict.passed = False
            verdict.reason = (f"modes crashed differently: "
                              f"{reference.label()} {ref_last!r} vs "
                              f"{who} {cand_last!r}")
            return False
        return True
    if reference.crashed or candidate.crashed:
        crashed = reference if reference.crashed else candidate
        verdict.passed = False
        verdict.reason = (f"{crashed.label()} mode crashed: "
                          + (crashed.error or "").strip()
                          .splitlines()[-1])
        return False

    for i, (s, f) in enumerate(zip(reference.stats, candidate.stats)):
        if s != f:
            verdict.passed = False
            diff = describe_diff(stats_snapshot(s), stats_snapshot(f),
                                 label=f"{who} stats[{i}]")
            verdict.reason = diff or f"{who} stats[{i}] differ"
            return False

    state_diff = describe_diff(reference.state, candidate.state,
                               label=f"{who} state")
    if state_diff is not None:
        verdict.passed = False
        verdict.reason = state_diff
        return False

    if verdict.case.track_recovery \
            and reference.recovery_log != candidate.recovery_log:
        verdict.passed = False
        verdict.reason = describe_diff(reference.recovery_log,
                                       candidate.recovery_log,
                                       label=f"{who} recovery_log") \
            or f"{who} recovery logs differ"
        return False
    return True


def check_case(case: QACase,
               backends: Optional[List[str]] = None) -> OracleVerdict:
    """Differential verdict for one case (never raises for a finding).

    ``backends`` pins the fast tier to each named kernel backend in
    turn and requires every run to match the scalar reference bit-exact
    (stats, full predictor state, recovery log).  ``None`` keeps the
    classic two-run scalar-vs-fast check under the ambient backend; an
    empty list expands to every backend available in this interpreter.
    """
    scalar = run_mode(case, "scalar")
    fast = run_mode(case, "fast")
    verdict = OracleVerdict(case=case, passed=True, scalar=scalar,
                            fast=fast)

    # Both modes rejecting/crashing identically is not a parity break;
    # it usually means the generator produced a config the engine
    # legitimately refuses.  Crash handling (including the both-crashed
    # traceback comparison) lives in _compare_runs.
    if not _compare_runs(verdict, scalar, fast):
        return verdict
    if scalar.crashed:
        return verdict  # identical refusal; no backend axis to probe

    if backends is not None:
        names = backends or available_backends()
        for name in names:
            pinned = run_mode(case, "fast", backend=name)
            verdict.backends[name] = pinned
            if not _compare_runs(verdict, scalar, pinned):
                return verdict
    return verdict


# ----------------------------------------------------------------------
# Trace-capture parity: scalar interpreter vs tiered fast tracer
# ----------------------------------------------------------------------

def _capture(case: QACase, program) -> Dict[str, Any]:
    """One capture of ``case``'s program under the ambient tracer."""
    from ..cpu import capture_machine

    machine = capture_machine(program)
    result = machine.run(max_instructions=case.budget)
    return {"machine": machine, "result": result}


def check_tracer_parity(case: QACase) -> Optional[str]:
    """Bit-exact capture parity for ``case``'s program, or a reason.

    Runs the case's synthetic workload through both ``REPRO_TRACER``
    modes and compares the full observable outcome: every trace record
    (pc, kind, direction, target), the run counters, and the
    architectural end state (all 32 registers and the data memory,
    including the fast tracer's wide-value overlay).  A crash that only
    one mode hits is itself a finding; identical faults pass.
    """
    import numpy as np

    from .generators import build_family_program

    program = build_family_program(case.family, case.params)
    runs: Dict[str, Any] = {}
    errors: Dict[str, str] = {}
    for mode in ("scalar", "fast"):
        with tracer_mode_env(mode):
            try:
                runs[mode] = _capture(case, program)
            except Exception as exc:
                errors[mode] = f"{type(exc).__name__}: {exc}"
    if errors:
        if set(errors) == {"scalar", "fast"}:
            if errors["scalar"] != errors["fast"]:
                return (f"tracers crashed differently: scalar "
                        f"{errors['scalar']!r} vs fast "
                        f"{errors['fast']!r}")
            return None
        mode, message = next(iter(errors.items()))
        return f"{mode} tracer crashed alone: {message}"

    scalar, fast = runs["scalar"], runs["fast"]
    s_res, f_res = scalar["result"], fast["result"]
    for field_name in ("instructions", "halted"):
        a = getattr(s_res, field_name)
        b = getattr(f_res, field_name)
        if a != b:
            return f"RunResult.{field_name}: scalar {a} vs fast {b}"
    s_tr, f_tr = s_res.trace, f_res.trace
    if (s_tr.entry_pc, s_tr.n_instructions, s_tr.truncated) \
            != (f_tr.entry_pc, f_tr.n_instructions, f_tr.truncated):
        return (f"trace header differs: scalar "
                f"({s_tr.entry_pc}, {s_tr.n_instructions}, "
                f"{s_tr.truncated}) vs fast ({f_tr.entry_pc}, "
                f"{f_tr.n_instructions}, {f_tr.truncated})")
    for field_name in ("pc", "kind", "taken", "target"):
        a = getattr(s_tr, field_name)
        b = getattr(f_tr, field_name)
        if not np.array_equal(np.asarray(a), np.asarray(b)):
            first = int(np.flatnonzero(
                np.asarray(a) != np.asarray(b))[0])
            return (f"trace.{field_name} diverges at record {first}: "
                    f"scalar {a[first]} vs fast {b[first]}")

    s_m, f_m = scalar["machine"], fast["machine"]
    if list(s_m.regs) != list(f_m.regs):
        bad = next(i for i in range(32)
                   if s_m.regs[i] != f_m.regs[i])
        return (f"register r{bad} differs: scalar {s_m.regs[bad]} "
                f"vs fast {f_m.regs[bad]}")
    hi = getattr(f_m, "hi_mem", {})
    s_mem = s_m.mem
    f_mem = f_m.mem
    for addr in range(len(s_mem)):
        expected = s_mem[addr]
        actual = hi.get(addr)
        if actual is None:
            actual = int(f_mem[addr])
        if expected != actual:
            return (f"mem[{addr}] differs: scalar {expected} "
                    f"vs fast {actual}")
    return None
