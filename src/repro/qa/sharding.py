"""Shard-equivalence oracle: sharded scheduling == serial, bit-exact.

The shard scheduler's whole contract is that it only moves *where and
when* cells run, never what they compute — a sweep sharded any which
way must merge into exactly the serial answer.  This oracle checks that
contract with real engine work: it derives a small sweep from one
:class:`~repro.qa.cases.QACase` (the case at a clamped budget, varied
over a few history lengths), computes the serial baseline, then replays
the same cells through the *real* :class:`~repro.runtime.shard.
ShardScheduler` under the discrete-event testbed of
:mod:`repro.runtime.sim` — skewed cell costs, mixed worker speeds, and
every shard count in :data:`SHARD_COUNTS` — and requires every cell's
statistics *and* full predictor state to land bit-exact at its index.

The simulated schedules are fault-free (``crash_rate=0``, ``retries=0``)
on purpose: injected crashes with an exhausted retry budget would fail
cells deterministically and report scheduler findings for behaviour the
fault model caused.  Crash *recovery* equivalence is covered by the
runtime's own suites; this oracle isolates the routing question.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from ..runtime import sim
from .cases import QACase, case_engine, is_valid_case
from .state import describe_diff, engine_state, stats_snapshot

__all__ = ["SHARD_COUNTS", "equivalence_cells",
           "check_shard_equivalence"]

#: Shard counts every case's derived sweep is replayed under.
SHARD_COUNTS = (1, 2, 4)

#: Budget clamp for the derived sweep (the oracle runs each cell once
#: serially plus once per shard count, so cells must stay small).
_EQUIV_BUDGET = 2000

#: History lengths the derived sweep varies over (plus the case's own).
_HISTORY_VARIANTS = (2, 4, 6)


def equivalence_cells(case: QACase) -> List[QACase]:
    """Derive the small sweep the shard oracle replays for ``case``.

    Variants of the case over a few history lengths, deduplicated and
    validity-gated, each clamped to :data:`_EQUIV_BUDGET` with one
    repeat and no recovery/timeline tracking (those knobs probe engine
    fallbacks, not scheduling).
    """
    base = replace(case, budget=min(case.budget, _EQUIV_BUDGET),
                   repeats=1, track_recovery=False,
                   record_timeline=False)
    lengths: List[int] = list(_HISTORY_VARIANTS)
    own = base.config.get("history_length")
    if isinstance(own, int):
        lengths.append(own)
    cells: List[QACase] = []
    seen = set()
    for length in lengths:
        cell = replace(base, config={**base.config,
                                     "history_length": length})
        digest = cell.digest()
        if digest in seen or not is_valid_case(cell):
            continue
        seen.add(digest)
        cells.append(cell)
    return cells


def _outcome(cell: QACase, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell on a fresh engine; stats + full state snapshot."""
    engine = case_engine(cell)
    stats = engine.run(inputs[cell.digest()])
    return {"stats": stats_snapshot(stats),
            "state": engine_state(engine)}


def check_shard_equivalence(case: QACase) -> Optional[str]:
    """Sharded replays of ``case``'s derived sweep match serial, or why.

    Returns ``None`` when every shard count reproduces the serial
    baseline bit-exact (and every simulated schedule holds the
    scheduling invariants), else a one-line reason.
    """
    cells = equivalence_cells(case)
    inputs: Dict[str, Any] = {}
    runnable: List[QACase] = []
    for cell in cells:
        try:
            inputs[cell.digest()] = cell.fetch_input()
        except Exception:
            continue  # an unbuildable workload is not a scheduler bug
        runnable.append(cell)
    if len(runnable) < 2:
        return None  # nothing to schedule across shards
    try:
        baseline = [_outcome(cell, inputs) for cell in runnable]
    except Exception:
        return None  # a serial crash is the differential oracle's find

    def run_cell(cell: QACase) -> Dict[str, Any]:
        return _outcome(cell, inputs)

    for n_shards in SHARD_COUNTS:
        spec = sim.SimSpec(seed=int(case.digest(8), 16),
                           n_cells=len(runnable), n_shards=n_shards,
                           n_workers=min(2, len(runnable)),
                           policy="size", cost_model="skewed",
                           speed_model="mixed", retries=0)
        try:
            result = sim.simulate(spec, cells=runnable,
                                  execute=run_cell)
        except Exception as exc:
            return (f"sharded replay (n_shards={n_shards}) crashed "
                    f"on a cell the serial baseline ran clean: "
                    f"{type(exc).__name__}: {exc}")
        problems = sim.verify_invariants(result)
        if problems:
            return (f"sharded replay (n_shards={n_shards}) broke a "
                    f"scheduling invariant: {problems[0]}")
        for index in range(len(runnable)):
            got = result.results[index]
            if got is None:
                return (f"sharded replay (n_shards={n_shards}) "
                        f"produced no result for cell {index}")
            for part in ("stats", "state"):
                diff = describe_diff(
                    baseline[index][part], got[part],
                    label=f"n_shards={n_shards} cell {index} {part}")
                if diff is not None:
                    return diff
    return None
