"""Paper-derived metamorphic invariants.

Beyond "scalar == fast", some properties must hold because of what the
structures *mean* in the paper, independent of implementation mode:

* **B=1 degeneracy** — a blocked PHT with block width 1 holds exactly
  one counter per entry and indexes it with ``GHR XOR address``, which
  is the per-branch gshare baseline of :mod:`repro.predictors.scalar`
  with one table.  Training both on the same conditional-branch stream
  must produce identical predictions and identical counter arrays.
* **Accounting conservation** — every penalty category a run charges
  must reconcile with the run's population: counts bounded by the
  branch mix, cycles bounded by Table 3's per-event costs, totals
  additive.
* **GHR length extension** — a shorter history register is a bit
  truncation of a longer one fed the same outcome stream, after every
  single- and block-shift (the paper's per-block update changes *when*
  bits arrive, never their values).
* **Select-table dominance (dual)** — the select table only chooses
  which predicted path is fetched and which GHR-update bits are stored;
  resizing it may change MISSELECT/GHR charges but can never alter the
  retired population, the base cycles, or any other penalty category.

Each check returns ``None`` on success or a human-readable violation
string — same contract as :func:`repro.qa.state.describe_diff` — so the
campaign loop treats oracle and invariant findings uniformly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..core.penalties import PenaltyKind
from ..isa.kinds import InstrKind
from ..predictors.blocked import BlockedPHT
from ..predictors.ghr import GlobalHistory
from ..predictors.scalar import INDEX_GSHARE, ScalarPHT
from .cases import QACase, case_engine

__all__ = ["blocked_b1_equivalence", "accounting_conservation",
           "ghr_length_extension", "select_table_dominance",
           "kmp_search_bounds", "conditional_stream",
           "check_case_invariants"]


def conditional_stream(case: QACase,
                       limit: int = 4000) -> List[Tuple[int, bool]]:
    """The case's conditional branches as a ``(pc, taken)`` stream."""
    trace = case.fetch_input().trace
    out: List[Tuple[int, bool]] = []
    for pc, kind, taken, _target in trace.records():
        if kind == int(InstrKind.COND):
            out.append((pc, taken))
            if len(out) >= limit:
                break
    return out


# ----------------------------------------------------------------------
# Invariant 1: B=1 blocked PHT == one-table gshare baseline
# ----------------------------------------------------------------------

def blocked_b1_equivalence(stream: Iterable[Tuple[int, bool]],
                           history_length: int = 10) -> Optional[str]:
    """Train both predictors on ``stream``; any divergence is a finding.

    With ``block_width=1`` every instruction is its own fetch block, so
    the blocked scheme's per-block GHR update degenerates to the scalar
    per-branch update and its ``(GHR XOR block address)`` entry index
    coincides with one-table gshare — structure for structure.
    """
    blocked = BlockedPHT(history_length=history_length, block_width=1,
                         n_tables=1)
    scalar = ScalarPHT(history_length=history_length, n_tables=1,
                       index_mode=INDEX_GSHARE)
    ghr = GlobalHistory(history_length)
    for i, (pc, taken) in enumerate(stream):
        base = blocked.index(ghr.value, pc)
        position = blocked.position(pc)
        p_blocked = blocked.predicts_taken(base, position)
        p_scalar = scalar.predicts_taken(ghr.value, pc)
        if p_blocked != p_scalar:
            return (f"B=1 prediction diverged at event {i} "
                    f"(pc={pc:#x}): blocked={p_blocked} "
                    f"scalar={p_scalar}")
        blocked.update(base, position, taken)
        scalar.update(ghr.value, pc, taken)
        ghr.shift_in(taken)
    if blocked._counters != scalar._counters:
        return "B=1 counter arrays diverged after training"
    return None


# ----------------------------------------------------------------------
# Invariant 2: penalty accounting conservation
# ----------------------------------------------------------------------

def accounting_conservation(stats: Any, case: QACase) -> Optional[str]:
    """Reconcile a run's penalty ledger with its population."""
    counts = stats.event_counts
    cycles = stats.event_cycles
    if set(counts) != set(cycles):
        return (f"count/cycle key sets differ: {sorted(counts, key=str)} "
                f"vs {sorted(cycles, key=str)}")
    for kind, n in counts.items():
        if n < 1:
            return f"non-positive event count for {kind}: {n}"
        if cycles[kind] < 0:
            return f"negative cycles for {kind}: {cycles[kind]}"
    if stats.penalty_cycles != sum(cycles.values()):
        return "penalty_cycles does not equal the sum of event_cycles"
    if stats.fetch_cycles != stats.base_cycles + stats.penalty_cycles:
        return "fetch_cycles is not base + penalty"
    if not (0 <= stats.n_cond <= stats.n_branches
            <= stats.n_instructions):
        return (f"population out of order: cond={stats.n_cond} "
                f"branches={stats.n_branches} "
                f"instructions={stats.n_instructions}")
    if stats.n_instructions and stats.n_blocks < 1:
        return "instructions delivered without any fetched block"
    if counts.get(PenaltyKind.COND, 0) > stats.n_cond:
        return (f"more COND mispredictions "
                f"({counts[PenaltyKind.COND]}) than conditional "
                f"branches ({stats.n_cond})")
    non_cond = stats.n_branches - stats.n_cond
    if counts.get(PenaltyKind.RETURN, 0) > non_cond:
        return (f"more RETURN mispredictions "
                f"({counts[PenaltyKind.RETURN]}) than unconditional "
                f"transfers ({non_cond})")
    # Table 3 charges at most 5 cycles per event at two blocks per
    # cycle; the Section 5 extrapolation adds one per extra slot, the
    # footnote one re-fetch cycle (also charged for any slot-2 COND
    # miss), untracked not-taken targets one resolution re-read, and
    # two-ahead serialization its own per-pair surcharge.
    tracked = bool(case.config.get("track_not_taken_targets", True))
    per_event_cap = (5 + max(0, case.n_blocks - 2) + 1
                     + (0 if tracked else 1)
                     + case.serialization_penalty)
    for kind, n in counts.items():
        if cycles[kind] > n * per_event_cap:
            return (f"{kind} cycles {cycles[kind]} exceed "
                    f"{n} events x cap {per_event_cap}")
    if stats.timeline is not None:
        delivered = sum(stats.timeline)
        if delivered != stats.n_instructions:
            return (f"timeline delivers {delivered} instructions, "
                    f"stats say {stats.n_instructions}")
    return None


# ----------------------------------------------------------------------
# Invariant 3: GHR length-extension truncation
# ----------------------------------------------------------------------

def ghr_length_extension(outcome_blocks: Sequence[Sequence[bool]],
                         short_length: int,
                         long_length: int) -> Optional[str]:
    """A short GHR is always a truncation of a longer one.

    ``outcome_blocks`` is a stream of per-block outcome groups (a group
    of one models the scalar per-branch update).  After every shift the
    short register must equal the long register's low bits — the
    paper's block update changes the shift *granularity*, never the bit
    values.
    """
    if not (1 <= short_length <= long_length):
        return (f"bad lengths: short={short_length} "
                f"long={long_length}")
    short = GlobalHistory(short_length)
    long = GlobalHistory(long_length)
    for i, block in enumerate(outcome_blocks):
        short.shift_in_block(block)
        long.shift_in_block(block)
        if short.value != (long.value & short.mask):
            return (f"after block {i} ({list(block)}): "
                    f"short={short.value:#x} is not the low "
                    f"{short_length} bits of long={long.value:#x}")
    return None


# ----------------------------------------------------------------------
# Invariant 4: select-table dominance (dual-block engine)
# ----------------------------------------------------------------------

#: Categories the select table is allowed to influence.
_SELECT_KINDS = (PenaltyKind.MISSELECT, PenaltyKind.GHR)


def select_table_dominance(case: QACase) -> Optional[str]:
    """Resizing the dual engine's select table only moves MISSELECT/GHR.

    The select table picks which predicted block pair is fetched and
    caches the GHR-update bits; it feeds no target address and no
    direction counter.  So two runs differing only in
    ``n_select_tables`` must agree on the retired population, base
    cycles, and every penalty category outside MISSELECT/GHR.
    """
    if case.engine != "dual":
        return None
    sizes = sorted({case.config.get("n_select_tables", 1), 1, 8})
    runs = []
    fetch_input = case.fetch_input()
    for size in sizes:
        variant = replace(case,
                          config={**case.config,
                                  "n_select_tables": size})
        engine = case_engine(variant)
        runs.append((size, engine.run(fetch_input)))
    base_size, base = runs[0]
    for size, stats in runs[1:]:
        for field_name in ("n_blocks", "n_instructions", "n_branches",
                           "n_cond", "base_cycles"):
            a = getattr(base, field_name)
            b = getattr(stats, field_name)
            if a != b:
                return (f"{field_name} changed with select-table size "
                        f"({base_size}->{size}): {a} != {b}")
        for kind in PenaltyKind:
            if kind in _SELECT_KINDS:
                continue
            a = base.event_cycles.get(kind, 0)
            b = stats.event_cycles.get(kind, 0)
            if a != b:
                return (f"{kind} cycles changed with select-table size "
                        f"({base_size}->{size}): {a} != {b}")
    return None


# ----------------------------------------------------------------------
# Invariant 5: analytic comparison-count bounds of the kmp workload
# ----------------------------------------------------------------------

def kmp_search_bounds(outer: int = 3,
                      budget: int = 3_000_000) -> Optional[str]:
    """Check the :mod:`repro.workloads.kmp` analytic bounds on a live run.

    The workload accumulates character-comparison and match counters in
    fixed memory cells; textbook results pin them regardless of the
    random pattern/text content:

    * Morris-Pratt makes between ``n`` and ``2n - 1`` comparisons per
      ``n``-symbol scan, so over ``p`` completed passes the accumulated
      counter lies in ``[p*n, p*(2n - 1)]``;
    * the strong (KMP) failure function only removes guaranteed
      re-mismatches, so its counter never exceeds Morris-Pratt's;
    * both automata report the same occurrences, so match counts agree.

    Runs under the ambient ``REPRO_TRACER`` mode — invoking it once per
    mode makes it a capture-tier oracle too.  ``None`` on success, else
    a violation string.
    """
    from ..cpu import capture_machine
    from ..workloads import kmp

    machine = capture_machine(kmp.build(outer=outer))
    result = machine.run(max_instructions=budget)
    if not result.halted:
        return (f"kmp with outer={outer} did not halt within "
                f"{budget} instructions")
    mem = machine.mem
    passes = int(mem[kmp.PASSES])
    mp_comp = int(mem[kmp.MP_COMP])
    kmp_comp = int(mem[kmp.KMP_COMP])
    mp_match = int(mem[kmp.MP_MATCH])
    kmp_match = int(mem[kmp.KMP_MATCH])
    if passes != outer:
        return f"completed {passes} passes, expected {outer}"
    n = kmp.TEXT_LEN
    low, high = passes * n, passes * (2 * n - 1)
    if not low <= mp_comp <= high:
        return (f"MP comparisons {mp_comp} outside the amortized "
                f"bound [{low}, {high}] for {passes} passes of "
                f"{n}-symbol text")
    if kmp_comp > mp_comp:
        return (f"KMP comparisons {kmp_comp} exceed MP's {mp_comp}: "
                f"the strong failure function added work")
    if mp_match != kmp_match:
        return (f"automata disagree on occurrences: MP {mp_match} "
                f"vs KMP {kmp_match}")
    return None


# ----------------------------------------------------------------------
# Per-case driver
# ----------------------------------------------------------------------

def check_case_invariants(case: QACase,
                          stats: Optional[Any] = None) -> Optional[str]:
    """Run every invariant that applies to ``case``.

    ``stats`` is a scalar-mode run result when the campaign already has
    one (saves re-running the engine); accounting conservation is
    skipped otherwise.
    """
    if stats is not None:
        violation = accounting_conservation(stats, case)
        if violation is not None:
            return f"accounting: {violation}"
    stream = conditional_stream(case, limit=2000)
    violation = blocked_b1_equivalence(
        stream, history_length=int(case.config.get("history_length", 10)))
    if violation is not None:
        return f"b1-equivalence: {violation}"
    blocks: List[List[bool]] = []
    group: List[bool] = []
    for i, (_pc, taken) in enumerate(stream[:512]):
        group.append(taken)
        if len(group) == 1 + (i % 3):      # vary the shift granularity
            blocks.append(group)
            group = []
    if group:
        blocks.append(group)
    history = int(case.config.get("history_length", 10))
    violation = ghr_length_extension(blocks, max(1, history // 2),
                                     history + 4)
    if violation is not None:
        return f"ghr-extension: {violation}"
    violation = select_table_dominance(case)
    if violation is not None:
        return f"select-dominance: {violation}"
    return None
