"""Composable random generators for fuzz cases.

Two layers:

* **Family builders** — deterministic program constructors keyed by a
  family name and a dict of small integers, chosen so the interesting
  branch behaviours of the paper each have a dedicated stressor:
  ``loops`` (deep counted-loop nests: taken back-edges, GHR
  periodicity), ``correlated`` (branch pairs whose outcomes are
  functions of each other: global history pays off), ``towers``
  (call/return chains deeper than the RAS: overflow wraparound),
  ``near`` (short forward branches targeting the same or the next fetch
  block: near-block selection and target-array pressure) and
  ``synthetic`` (the general mixed generator of
  :mod:`repro.trace.synthetic`).

* **Samplers** — seeded :class:`random.Random` functions that draw a
  family, its parameters, a cache geometry and an engine configuration,
  yielding a replayable :class:`~repro.qa.cases.QACase`.  All sampling
  is explicit-RNG only; nothing reads ambient randomness.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..trace.synthetic import SyntheticSpec, synthetic_program
from .cases import ENGINE_KINDS, CaseError, QACase

# ----------------------------------------------------------------------
# Family builders
# ----------------------------------------------------------------------


def _family_loops(params: Mapping[str, int]) -> Program:
    """Nested counted loops with co-prime trip counts.

    Pure loop nests are the branch population the blocked PHT is built
    for: almost every conditional is a taken back-edge, and the GHR sees
    long periodic patterns whose period exceeds most history lengths.
    """
    depth = max(1, int(params.get("depth", 2)))
    trips = max(2, int(params.get("trips", 5)))
    body_ops = max(0, int(params.get("body_ops", 2)))
    rounds = max(1, int(params.get("rounds", 3)))

    b = ProgramBuilder(name="qa-loops", data_size=1 << 12)
    with b.function("main"):
        b.asm.li("r4", 0)
        with b.for_range("r3", 0, rounds):
            counters = [f"r{5 + level}" for level in range(depth)]

            def nest(level: int) -> None:
                # Co-prime-ish trip counts desynchronise the levels.
                trip = trips + 2 * level + 1
                with b.for_range(counters[level], 0, trip):
                    for _ in range(body_ops):
                        b.asm.add("r4", "r4", counters[level])
                    if level + 1 < depth:
                        nest(level + 1)

            nest(0)
    return b.build()


def _family_correlated(params: Mapping[str, int]) -> Program:
    """Pairs of conditionals whose second outcome is a function of the
    first.

    The leading branch tests an LCG bit; the trailing branch tests the
    *same* bit (optionally inverted), so a global-history predictor can
    learn the pair while any per-branch-only view cannot.  A stride of
    straight-line filler controls whether the pair lands in one fetch
    block or straddles two.
    """
    pairs = max(1, int(params.get("pairs", 4)))
    iterations = max(2, int(params.get("iterations", 24)))
    invert = int(params.get("invert", 1)) % 2
    stride = max(0, int(params.get("stride", 2)))

    b = ProgramBuilder(name="qa-correlated", data_size=1 << 12)
    with b.function("main"):
        b.asm.li("r20", 9_176_429)
        b.asm.li("r4", 0)
        with b.for_range("r3", 0, iterations):
            for p in range(pairs):
                b.lcg_step("r20")
                b.asm.srli("r21", "r20", (p % 5) + 3)
                b.asm.andi("r21", "r21", 1)
                with b.if_("eq", "r21", "r0"):
                    b.asm.addi("r4", "r4", 1)
                for _ in range(stride):
                    b.asm.add("r4", "r4", "r0")
                second = "ne" if invert else "eq"
                with b.if_(second, "r21", "r0"):
                    b.asm.addi("r4", "r4", 2)
    return b.build()


def _family_towers(params: Mapping[str, int]) -> Program:
    """Call/return towers deeper than a small RAS.

    ``f0`` calls ``f1`` calls ... ``f{depth-1}``; each level optionally
    adds an early data-dependent return.  With ``depth`` above the
    configured RAS size the circular stack wraps and the way back out
    mispredicts — the exact overflow behaviour the paper inherits from
    Kaeli & Emma.
    """
    depth = max(1, int(params.get("depth", 6)))
    rounds = max(1, int(params.get("rounds", 8)))
    early = int(params.get("early", 0)) % 2

    b = ProgramBuilder(name="qa-towers", data_size=1 << 13)
    for level in range(depth - 1, -1, -1):
        with b.function(f"level_{level}"):
            b.asm.addi("r4", "r4", 1)
            if early:
                b.asm.andi("r21", "r4", 3)
                with b.if_("eq", "r21", "r0"):
                    b.return_()
            if level + 1 < depth:
                b.call(f"level_{level + 1}")
            b.asm.addi("r4", "r4", 1)
    with b.function("main"):
        b.asm.li("r4", 0)
        with b.for_range("r3", 0, rounds):
            b.call("level_0")
    return b.build()


def _family_near(params: Mapping[str, int]) -> Program:
    """Short forward branches whose targets sit near the block boundary.

    Bodies of ``span`` straight-line instructions make the if-skip
    targets land inside the same fetch block, just past it, or across a
    line boundary depending on alignment — the corner the near-block
    adder (``EngineConfig.near_block``) and target arrays disagree on
    most easily.
    """
    branches = max(1, int(params.get("branches", 6)))
    span = max(1, int(params.get("span", 3)))
    iterations = max(2, int(params.get("iterations", 20)))

    b = ProgramBuilder(name="qa-near", data_size=1 << 12)
    with b.function("main"):
        b.asm.li("r20", 123_457)
        b.asm.li("r4", 0)
        with b.for_range("r3", 0, iterations):
            b.lcg_step("r20")
            for i in range(branches):
                b.asm.srli("r21", "r20", i % 7)
                b.asm.andi("r21", "r21", 1)
                with b.if_("eq", "r21", "r0"):
                    # Vary the skip distance so consecutive branches
                    # target different offsets within/after the block.
                    for _ in range(1 + (i * span) % (2 * span)):
                        b.asm.addi("r4", "r4", 1)
    return b.build()


def _family_synthetic(params: Mapping[str, int]) -> Program:
    """The general mixed generator, parameterised by plain integers."""
    spec = SyntheticSpec(
        seed=int(params.get("seed", 0)),
        n_functions=max(0, int(params.get("n_functions", 2))),
        loop_depth=max(1, int(params.get("loop_depth", 2))),
        irregularity=(int(params.get("irregularity_pct", 50)) % 101) / 100.0,
        body_ops=max(1, int(params.get("body_ops", 3))),
        iterations=max(2, int(params.get("iterations", 8))),
    )
    return synthetic_program(spec)


#: Family name -> deterministic program builder.
FAMILIES: Dict[str, Callable[[Mapping[str, int]], Program]] = {
    "loops": _family_loops,
    "correlated": _family_correlated,
    "towers": _family_towers,
    "near": _family_near,
    "synthetic": _family_synthetic,
}


def build_family_program(family: str, params: Mapping[str, int]) -> Program:
    """Build the program for ``family`` (KeyError-safe: CaseError)."""
    try:
        builder = FAMILIES[family]
    except KeyError:
        raise CaseError(f"unknown workload family: {family!r}") from None
    return builder(params)


# ----------------------------------------------------------------------
# Random samplers
# ----------------------------------------------------------------------

def sample_family(rng: random.Random) -> Tuple[str, Dict[str, int]]:
    """Draw a family name and a parameter dict for it."""
    family = rng.choice(sorted(FAMILIES))
    params: Dict[str, int]
    if family == "loops":
        params = {"depth": rng.randint(1, 3),
                  "trips": rng.randint(2, 9),
                  "body_ops": rng.randint(0, 5),
                  "rounds": rng.randint(1, 4)}
    elif family == "correlated":
        params = {"pairs": rng.randint(1, 6),
                  "iterations": rng.randint(4, 40),
                  "invert": rng.randint(0, 1),
                  "stride": rng.randint(0, 6)}
    elif family == "towers":
        params = {"depth": rng.randint(1, 40),
                  "rounds": rng.randint(2, 16),
                  "early": rng.randint(0, 1)}
    elif family == "near":
        params = {"branches": rng.randint(1, 10),
                  "span": rng.randint(1, 6),
                  "iterations": rng.randint(4, 32)}
    else:
        params = {"seed": rng.randint(0, 100_000),
                  "n_functions": rng.randint(0, 3),
                  "loop_depth": rng.randint(1, 3),
                  "irregularity_pct": rng.randint(0, 100),
                  "body_ops": rng.randint(1, 7),
                  "iterations": rng.randint(2, 10)}
    return family, params


def sample_geometry(rng: random.Random) -> Tuple[str, int]:
    """Draw a (geometry kind, block width) pair."""
    kind = rng.choice(("normal", "extend", "align"))
    width = rng.choice((2, 4, 8, 16))
    return kind, width


def sample_config(rng: random.Random, engine: str) -> Dict[str, Any]:
    """Draw :class:`EngineConfig` overrides legal for ``engine``.

    The constraints mirror the engines' constructors: ``dual``/``multi``
    refuse a separate BIT table, ``multi``/``two_ahead`` model NLS
    target arrays only, and double selection only means something to the
    dual and multi engines.
    """
    overrides: Dict[str, Any] = {
        "history_length": rng.choice((2, 4, 6, 8, 10, 12)),
        "n_pht_tables": rng.choice((1, 2, 4)),
        "n_select_tables": rng.choice((1, 2, 4, 8)),
        "target_entries": rng.choice((16, 64, 256)),
        "near_block": rng.random() < 0.3,
        "ras_size": rng.choice((1, 2, 4, 8, 32)),
        "track_not_taken_targets": rng.random() < 0.8,
    }
    if engine in ("single", "dual") and rng.random() < 0.3:
        overrides["target_kind"] = "btb"
        overrides["btb_associativity"] = rng.choice((1, 2, 4))
    if engine == "single" and rng.random() < 0.3:
        overrides["bit_entries"] = rng.choice((2, 4, 8, 32))
    if engine in ("dual", "multi") and rng.random() < 0.4:
        overrides["selection"] = "double"
    return overrides


def sample_case(rng: random.Random, engine: str) -> QACase:
    """Draw one complete, engine-legal case."""
    family, params = sample_family(rng)
    kind, width = sample_geometry(rng)
    case = QACase(
        engine=engine,
        geometry_kind=kind,
        block_width=width,
        family=family,
        params=params,
        budget=rng.choice((600, 1500, 4000, 10_000)),
        repeats=rng.choice((1, 1, 1, 2, 3)),
        config=sample_config(rng, engine),
        n_blocks=rng.randint(1, 4) if engine == "multi" else 2,
        serialization_penalty=(rng.randint(0, 2)
                               if engine == "two_ahead" else 0),
    )
    return case


def case_stream(seed: int, engines: Tuple[str, ...] = ENGINE_KINDS,
                start: int = 0) -> "CaseStream":
    """Deterministic case iterator cycling through ``engines``."""
    return CaseStream(seed, engines, start)


class CaseStream:
    """Indexable deterministic case source.

    ``case(i)`` depends only on ``(seed, i)`` — not on how many cases
    were drawn before — so a campaign log line like ``case 17`` is
    enough to regenerate the exact input.
    """

    def __init__(self, seed: int, engines: Tuple[str, ...],
                 start: int = 0) -> None:
        if not engines:
            raise CaseError("case stream needs at least one engine kind")
        for engine in engines:
            if engine not in ENGINE_KINDS:
                raise CaseError(f"unknown engine kind: {engine!r}")
        self.seed = seed
        self.engines = engines
        self.index = start

    def case(self, index: int) -> QACase:
        """The ``index``-th case of this stream."""
        rng = random.Random(self.seed * 1_000_003 + index)
        engine = self.engines[index % len(self.engines)]
        return sample_case(rng, engine)

    def next(self) -> Tuple[int, QACase]:
        """Draw the next (index, case) pair."""
        index = self.index
        self.index += 1
        return index, self.case(index)


# ----------------------------------------------------------------------
# Small-structure operation streams (property-test satellites)
# ----------------------------------------------------------------------

def counter_op_stream(rng: random.Random, n: int) -> List[bool]:
    """Random taken/not-taken training stream for saturating counters."""
    return [rng.random() < 0.5 for _ in range(n)]


def ras_op_stream(rng: random.Random, n: int,
                  push_bias: float = 0.55) -> List[Tuple[str, int]]:
    """Random push/pop/peek stream for the return-address stack.

    Push-biased by default so deep stacks (and overflow wraparound on
    small sizes) actually occur.
    """
    ops: List[Tuple[str, int]] = []
    for i in range(n):
        roll = rng.random()
        if roll < push_bias:
            ops.append(("push", rng.randint(0, 1 << 20)))
        elif roll < push_bias + 0.3:
            ops.append(("pop", 0))
        else:
            ops.append(("peek", rng.randint(0, 4)))
    return ops
