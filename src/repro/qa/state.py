"""Comparable snapshots of engine state and run results.

The differential oracle needs "the engines agree" to mean more than
equal :class:`~repro.core.stats.FetchStats`: after a run, every mutable
predictor structure — PHT counters, select tables, BIT, NLS/BTB target
arrays (including BTB LRU order), RAS — must match between the scalar
and fast paths, or a warm follow-up run would diverge even though this
one's counts agreed.  :func:`engine_state` flattens all of that into
plain lists/tuples that compare with ``==``; :func:`describe_diff`
renders the first few mismatches for humans.

These helpers are the single source of truth for "full engine state":
``tests/core/test_engine_parity.py`` imports them too, so the fuzz
oracle and the fixed-matrix parity tests can never drift apart on what
"identical" means.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["engine_state", "target_state", "stats_snapshot",
           "describe_diff"]


def target_state(targets: Any) -> Any:
    """Comparable snapshot of any target-array implementation.

    BTB entries carry no ``__eq__`` (they are slotted mutable cells), so
    buckets are flattened to ``(key, targets)`` tuples — which also
    captures LRU order, since ``OrderedDict`` iteration is
    recency-ordered.
    """
    if targets is None:
        return None
    if hasattr(targets, "_targets"):                 # NLSTargetArray
        return list(targets._targets)
    if hasattr(targets, "first"):                    # DualNLSTargetArray
        return (list(targets.first._targets),
                list(targets.second._targets))
    if hasattr(targets, "_arrays"):                  # MultiTargetArray
        return [list(a._targets) for a in targets._arrays]
    btb = getattr(targets, "_btb", targets)          # (Dual)BTB
    return [[(key, tuple(entry.targets))
             for key, entry in bucket.items()]
            for bucket in btb._sets]


def engine_state(engine: Any) -> Dict[str, Any]:
    """Every piece of mutable predictor state, in comparable form."""
    state: Dict[str, Any] = {
        "pht": list(engine.pht._counters),
        "targets": target_state(getattr(engine, "targets", None)),
    }
    ras = getattr(engine, "ras", None)
    if ras is not None:
        state["ras"] = (list(ras._slots), ras._top, ras._depth)
    select = getattr(engine, "select", None)
    if select is not None:
        state["select"] = list(select._entries)
    selects = getattr(engine, "selects", None)
    if selects is not None:
        state["selects"] = [list(t._entries) for t in selects]
    bit = getattr(engine, "bit_table", None)
    if bit is not None:
        state["bit"] = (list(bit._lines), list(bit._codes),
                        bit.accesses, bit.stale_hits)
    return state


def stats_snapshot(stats: Any) -> Dict[str, Any]:
    """A FetchStats as a plain dict (dataclass fields, JSON-friendly)."""
    out: Dict[str, Any] = {}
    for name in stats.__dataclass_fields__:
        value = getattr(stats, name)
        if isinstance(value, dict):
            out[name] = {str(k): v for k, v in value.items()}
        elif isinstance(value, list):
            out[name] = [tuple(item) if isinstance(item, (list, tuple))
                         else item for item in value]
        else:
            out[name] = value
    return out


def _first_diffs(a: Any, b: Any, path: str, out: List[str],
                 limit: int) -> None:
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != "
                   f"{type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=str):
            if key not in a or key not in b:
                out.append(f"{path}.{key}: present on one side only")
            elif a[key] != b[key]:
                _first_diffs(a[key], b[key], f"{path}.{key}", out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                _first_diffs(x, y, f"{path}[{i}]", out, limit)
                if len(out) >= limit:
                    return
        return
    out.append(f"{path}: {a!r} != {b!r}")


def describe_diff(scalar: Any, fast: Any, limit: int = 8,
                  label: str = "state") -> Optional[str]:
    """Human-readable first-mismatch report, or None when equal."""
    if scalar == fast:
        return None
    diffs: List[str] = []
    _first_diffs(scalar, fast, label, diffs, limit)
    if not diffs:
        diffs.append(f"{label}: values differ (no leaf-level diff found)")
    return "; ".join(diffs)
