"""``python -m repro.qa`` — campaign / replay / shrink.

Subcommands::

    campaign  --seed N --budget SECONDS [--engines ...] [--corpus DIR]
              [--max-cases N]
        Run a seeded differential-fuzzing campaign.  Exit 0 when every
        case passed, 1 when a failure was found (its shrunk artifact is
        written to --corpus), 2 on bad usage.

    replay    DIRECTORY-OR-ARTIFACT ...
        Re-check committed corpus artifacts (or single files) through
        the full oracle.  Exit 0 when all pass, 1 otherwise.

    shrink    ARTIFACT [--output PATH]
        Re-shrink an artifact's case (useful after the generators or
        the oracle learn new rewrites) and rewrite it in place or to
        --output.  Exit 0 when the case still fails and was rewritten,
        1 when the case no longer fails (nothing to shrink).

The seed defaults to ``REPRO_QA_SEED`` (itself defaulting to 5), so CI
logs and local reproductions agree without flags.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .. import envvars
from .campaign import check_full, replay_corpus, run_campaign
from .cases import ENGINE_KINDS, CaseError
from .corpus import load_artifact, write_artifact
from .shrink import shrink_case

__all__ = ["main"]

_DEFAULT_SEED = 5


def _say(message: str) -> None:
    print(message, flush=True)


def default_seed() -> int:
    """Seed from ``REPRO_QA_SEED`` (ValueError on a non-integer)."""
    raw = envvars.read("REPRO_QA_SEED")
    if raw is None or not raw.strip():
        return _DEFAULT_SEED
    try:
        return int(raw.strip())
    except ValueError:
        raise ValueError(
            f"REPRO_QA_SEED must be an integer, got {raw!r}") from None


def _cmd_campaign(args: argparse.Namespace) -> int:
    engines = tuple(args.engines) if args.engines else ENGINE_KINDS
    seed = args.seed if args.seed is not None else default_seed()
    _say(f"campaign: seed={seed} budget={args.budget:g}s "
         f"engines={','.join(engines)}")
    result = run_campaign(
        seed=seed, budget_seconds=args.budget, engines=engines,
        corpus_dir=args.corpus, max_cases=args.max_cases,
        progress=_say)
    _say(f"campaign: {result.n_cases} cases in {result.elapsed:.1f}s "
         f"({'clean' if result.passed else 'FAILED'})")
    if not result.passed:
        finding = result.findings[0]
        _say(f"reproduce with: seed={result.seed} case={finding.index}")
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    failures = 0
    checked = 0
    for target in args.paths:
        path = Path(target)
        if path.is_dir():
            results = replay_corpus(path, progress=_say)
            checked += len(results)
            failures += sum(1 for _p, reason in results
                            if reason is not None)
            continue
        case, recorded = load_artifact(path)
        reason = check_full(case)
        checked += 1
        status = "PASS" if reason is None else f"FAIL: {reason}"
        _say(f"{path.name} ({case.label()}): {status}")
        if reason is not None:
            if recorded:
                _say(f"  originally failed as: {recorded}")
            failures += 1
    _say(f"replay: {checked} artifact(s), {failures} failing")
    return 1 if failures else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    path = Path(args.artifact)
    case, recorded = load_artifact(path)
    reason = check_full(case)
    if reason is None:
        _say(f"{path.name}: case no longer fails; nothing to shrink")
        return 1
    _say(f"{path.name}: still failing ({reason}); shrinking ...")
    result = shrink_case(case, lambda c: check_full(c) is not None,
                         on_step=lambda c: _say(f"  -> {c.label()}"))
    out_dir = Path(args.output) if args.output else path.parent
    written = write_artifact(result.case, recorded or reason, out_dir)
    _say(f"shrunk in {result.steps} steps / {result.probes} probes "
         f"-> {written}")
    if written != path and written.parent == path.parent:
        _say(f"note: digest changed; consider removing {path.name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Differential fuzzing for the fetch engines.")
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", help="run a seeded fuzzing campaign")
    campaign.add_argument("--seed", type=int, default=None,
                          help="base seed (default: REPRO_QA_SEED or 5)")
    campaign.add_argument("--budget", type=float, default=60.0,
                          help="wall-clock budget in seconds")
    campaign.add_argument("--engines", nargs="+",
                          choices=list(ENGINE_KINDS), default=None,
                          help="restrict to these engine kinds")
    campaign.add_argument("--corpus", default=None,
                          help="write shrunk failure artifacts here")
    campaign.add_argument("--max-cases", type=int, default=None,
                          help="stop after this many cases")
    campaign.set_defaults(func=_cmd_campaign)

    replay = sub.add_parser(
        "replay", help="re-check corpus artifacts or single files")
    replay.add_argument("paths", nargs="+",
                        help="corpus directories and/or artifact files")
    replay.set_defaults(func=_cmd_replay)

    shrink = sub.add_parser(
        "shrink", help="re-shrink an artifact's case")
    shrink.add_argument("artifact", help="artifact .json file")
    shrink.add_argument("--output", default=None,
                        help="directory for the rewritten artifact "
                             "(default: alongside the input)")
    shrink.set_defaults(func=_cmd_shrink)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result: int = args.func(args)
        return result
    except (CaseError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
