"""The versioned regression corpus: shrunk failures as ``.json`` files.

Every failure a campaign finds is shrunk and written to
``tests/qa/corpus/qa-<digest>.json`` as::

    {
      "format": 1,
      "reason": "<why it failed when found>",
      "found": {"seed": 5, "index": 17},
      "case": { ...QACase fields... }
    }

Committing the file turns the one-off finding into a permanent
regression test: ``python -m repro.qa replay tests/qa/corpus`` (and the
``qa-fuzz-smoke`` CI job, and ``tests/qa/test_corpus.py``) re-check
every artifact through the full differential oracle on every run.

The ``format`` tag is the artifact schema version; readers refuse
versions they do not understand instead of misinterpreting them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .cases import CASE_FORMAT, CaseError, QACase, load_case

__all__ = ["DEFAULT_CORPUS", "artifact_payload", "write_artifact",
           "iter_corpus", "load_artifact"]

#: Repo-relative home of the committed regression corpus.
DEFAULT_CORPUS = Path("tests") / "qa" / "corpus"


def artifact_payload(case: QACase, reason: str,
                     found: Optional[Dict[str, int]] = None
                     ) -> Dict[str, Any]:
    """The JSON document written for one shrunk failure."""
    payload: Dict[str, Any] = {
        "format": CASE_FORMAT,
        "reason": reason,
        "case": case.to_dict(),
    }
    if found:
        payload["found"] = dict(found)
    return payload


def write_artifact(case: QACase, reason: str,
                   directory: Union[str, Path],
                   found: Optional[Dict[str, int]] = None) -> Path:
    """Write the artifact for ``case``; returns its path.

    The file name is derived from the case digest, so re-finding the
    same minimal case overwrites (rather than duplicates) its artifact.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"qa-{case.digest()}.json"
    payload = artifact_payload(case, reason, found)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n", encoding="ascii")
    return path


def load_artifact(path: Union[str, Path]) -> Tuple[QACase, str]:
    """Read one artifact; returns (case, recorded reason)."""
    try:
        data = json.loads(Path(path).read_text(encoding="ascii"))
    except (OSError, ValueError) as exc:
        raise CaseError(f"{path}: unreadable artifact: {exc}") from exc
    if not isinstance(data, dict):
        raise CaseError(f"{path}: artifact must be a JSON object")
    case = load_case(data)
    reason = data.get("reason", "")
    if not isinstance(reason, str):
        raise CaseError(f"{path}: 'reason' must be a string")
    return case, reason


def iter_corpus(directory: Union[str, Path]
                ) -> Iterator[Tuple[Path, QACase, str]]:
    """Yield ``(path, case, reason)`` for every artifact, sorted by name.

    A corpus directory that does not exist yields nothing (an empty
    corpus replays clean); an unreadable artifact raises
    :class:`CaseError` naming the file.
    """
    root = Path(directory)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.json")):
        case, reason = load_artifact(path)
        yield path, case, reason


def corpus_paths(directory: Union[str, Path]) -> List[Path]:
    """Artifact paths in replay order (for reporting)."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))
