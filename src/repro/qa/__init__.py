"""Differential fuzzing and metamorphic invariants for the fetch engines.

The parity contract — scalar reference loops and ``REPRO_ENGINE=fast``
SoA kernels bit-exact in stats *and* predictor state — is checked on a
fixed workload matrix by ``tests/core``.  This package turns it into a
continuously-searched property:

* :mod:`repro.qa.cases` — replayable JSON case model;
* :mod:`repro.qa.generators` — seeded workload families (loop nests,
  correlated pairs, call/return towers, near-block targets, mixed
  synthetic) and config samplers;
* :mod:`repro.qa.state` / :mod:`repro.qa.oracle` — full-state
  differential oracle across all four engines in both modes;
* :mod:`repro.qa.invariants` — paper-derived metamorphic checks
  (B=1 degeneracy, accounting conservation, GHR truncation,
  select-table dominance);
* :mod:`repro.qa.shrink` / :mod:`repro.qa.corpus` — greedy case
  minimization and the committed regression corpus;
* :mod:`repro.qa.campaign` + ``python -m repro.qa`` — the seeded
  search loop (``campaign`` / ``replay`` / ``shrink``).

Seeding: campaigns default to ``REPRO_QA_SEED`` (registered in
:mod:`repro.envvars`); the ``i``-th case of a seed is identical on
every machine, so any CI failure reproduces from its logged
``seed``/``case`` pair.
"""

from __future__ import annotations

from .campaign import CampaignResult, Finding, check_full, \
    replay_corpus, run_campaign
from .cases import CASE_FORMAT, ENGINE_KINDS, CaseError, QACase, \
    case_engine, load_case
from .corpus import DEFAULT_CORPUS, iter_corpus, load_artifact, \
    write_artifact
from .generators import FAMILIES, CaseStream, build_family_program, \
    case_stream, sample_case
from .invariants import accounting_conservation, \
    blocked_b1_equivalence, check_case_invariants, \
    ghr_length_extension, select_table_dominance
from .oracle import OracleVerdict, check_case, engine_mode_env, run_mode
from .shrink import ShrinkResult, shrink_case
from .state import describe_diff, engine_state, stats_snapshot

__all__ = [
    "CASE_FORMAT",
    "CampaignResult",
    "CaseError",
    "CaseStream",
    "DEFAULT_CORPUS",
    "ENGINE_KINDS",
    "FAMILIES",
    "Finding",
    "OracleVerdict",
    "QACase",
    "ShrinkResult",
    "accounting_conservation",
    "blocked_b1_equivalence",
    "build_family_program",
    "case_engine",
    "case_stream",
    "check_case",
    "check_case_invariants",
    "check_full",
    "describe_diff",
    "engine_mode_env",
    "engine_state",
    "ghr_length_extension",
    "iter_corpus",
    "load_artifact",
    "load_case",
    "replay_corpus",
    "run_campaign",
    "run_mode",
    "sample_case",
    "select_table_dominance",
    "shrink_case",
    "stats_snapshot",
    "write_artifact",
]
