"""Greedy case minimization.

When the oracle (or an invariant) fails, the raw case is usually noisy:
a 10k-instruction workload, a stack of config overrides, extra repeats.
:func:`shrink_case` walks a fixed menu of simplifying rewrites — shrink
the budget, drop repeats, shrink family parameters, remove config
overrides (i.e. return knobs to their :class:`EngineConfig` defaults),
normalise the geometry — keeping a rewrite only when the failure
*persists*, until no rewrite helps.  The result is the artifact worth
committing to the corpus: small enough to read, still failing for the
same class of reason.

The predicate is caller-supplied (``still_fails(case) -> bool``), so the
same shrinker serves differential failures, invariant violations and
deliberately-broken-kernel canary tests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterator, Optional

from .cases import CaseError, QACase, is_valid_case

__all__ = ["shrink_case", "ShrinkResult"]

#: Hard ceiling on predicate evaluations per shrink (each one may run
#: the engines twice, so this bounds shrink cost at roughly
#: ``2 * MAX_PROBES`` engine runs).
MAX_PROBES = 200

#: Floors for family parameters, so shrinking never produces a
#: degenerate builder input.
_PARAM_FLOORS: Dict[str, int] = {
    "depth": 1, "trips": 2, "rounds": 1, "pairs": 1, "iterations": 2,
    "branches": 1, "span": 1, "loop_depth": 1, "body_ops": 0,
    "n_functions": 0, "stride": 0, "invert": 0, "early": 0,
    "irregularity_pct": 0, "seed": 0,
}


class ShrinkResult:
    """Outcome of one shrink run."""

    def __init__(self, case: QACase, probes: int, steps: int) -> None:
        self.case = case          #: the minimized case
        self.probes = probes      #: predicate evaluations spent
        self.steps = steps        #: rewrites that were kept

    def __repr__(self) -> str:
        return (f"ShrinkResult(case={self.case.label()!r}, "
                f"probes={self.probes}, steps={self.steps})")


def _candidates(case: QACase) -> Iterator[QACase]:
    """Simplifying rewrites of ``case``, most aggressive first.

    Every yielded case is strictly "smaller" under a well-founded order
    (budget + repeats + param magnitudes + override count + flag count
    strictly decreases), so the greedy loop terminates.
    """
    # 1. Workload size: halve the budget toward the 100 floor.
    if case.budget > 100:
        yield replace(case, budget=max(100, case.budget // 2))
    # 2. Warm re-runs rarely matter; try a single run first.
    if case.repeats > 1:
        yield replace(case, repeats=1)
    # 3. Family parameters: halve toward their floors, largest first.
    for key in sorted(case.params,
                      key=lambda k: -abs(case.params.get(k, 0))):
        value = case.params[key]
        floor = _PARAM_FLOORS.get(key, 0)
        if value > floor:
            smaller = dict(case.params)
            smaller[key] = max(floor, value // 2)
            yield replace(case, params=smaller)
    # 4. Config overrides: drop each one (back to EngineConfig default).
    for key in sorted(case.config):
        trimmed = {k: v for k, v in case.config.items() if k != key}
        yield replace(case, config=trimmed)
    # 5. Structure: simplest geometry, default width, fewer blocks.
    if case.geometry_kind != "normal":
        yield replace(case, geometry_kind="normal")
    if case.block_width != 8:
        yield replace(case, block_width=8)
    if case.engine == "multi" and case.n_blocks > 1:
        yield replace(case, n_blocks=case.n_blocks - 1)
    if case.serialization_penalty > 0:
        yield replace(case, serialization_penalty=0)
    # 6. Diagnostic flags last: they select whole code paths, so
    #    dropping them usually changes the failure — but when it
    #    doesn't, the smaller case is much easier to debug.
    if case.track_recovery:
        yield replace(case, track_recovery=False)
    if case.record_timeline:
        yield replace(case, record_timeline=False)


def shrink_case(case: QACase, still_fails: Callable[[QACase], bool],
                max_probes: int = MAX_PROBES,
                on_step: Optional[Callable[[QACase], None]] = None
                ) -> ShrinkResult:
    """Greedily minimize ``case`` while ``still_fails`` holds.

    ``still_fails(case)`` must be True for the input case; the function
    probes rewrites one at a time and restarts the menu after every
    accepted rewrite (an accepted budget cut can unlock further param
    cuts, and vice versa).
    """
    probes = 0
    steps = 0
    current = case
    progress = True
    while progress and probes < max_probes:
        progress = False
        for candidate in _candidates(current):
            if probes >= max_probes:
                break
            try:
                if not is_valid_case(candidate):
                    continue
            except CaseError:
                continue
            probes += 1
            failed: bool
            try:
                failed = still_fails(candidate)
            except Exception:
                # A predicate crash on a rewrite means the rewrite
                # changed the failure mode; keep the current case.
                failed = False
            if failed:
                current = candidate
                steps += 1
                if on_step is not None:
                    on_step(current)
                progress = True
                break
    return ShrinkResult(current, probes, steps)
