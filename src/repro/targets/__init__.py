"""Target machinery: NLS/BTB target arrays, return stack, BIT tables."""

from .bit import (
    BITTable,
    BitCode,
    COND_CODES,
    NEAR_BLOCK_LINE_OFFSET,
    encode_instruction,
    encode_window,
    near_block_target,
)
from .btb import BlockBTB, DualBTBTargetArray
from .nls import DualNLSTargetArray, NLSTargetArray
from .ras import ReturnAddressStack

__all__ = [
    "BITTable",
    "BitCode",
    "BlockBTB",
    "COND_CODES",
    "DualBTBTargetArray",
    "DualNLSTargetArray",
    "NEAR_BLOCK_LINE_OFFSET",
    "NLSTargetArray",
    "ReturnAddressStack",
    "encode_instruction",
    "encode_window",
    "near_block_target",
]
