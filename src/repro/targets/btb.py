"""Set-associative Branch Target Buffer over block entries.

The paper's alternative to the NLS: a 4-way set-associative BTB with LRU
replacement, "modified to be indexed and checked against the instruction
block address and contain target addresses for an entire block of
instructions".  Unlike the tag-less NLS, a BTB *knows* when it has no
prediction (tag miss) — but small BTBs miss often, which Table 5 quantifies.

For dual-block operation the entry's tag carries the target number (block
one or two), so a single storage pool serves both roles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple


class _Entry:
    """One block entry: per-position targets."""

    __slots__ = ("targets",)

    def __init__(self, line_size: int) -> None:
        self.targets: List[Optional[int]] = [None] * line_size


class BlockBTB:
    """4-way (configurable) set-associative block BTB with LRU.

    Args:
        n_block_entries: total block entries (Table 5 sweeps 8..64).
        line_size: target slots per entry.
        associativity: ways per set (paper uses 4).
        dual: when True, tags include the target number (1 or 2) so the
            same storage serves dual-block prediction.
    """

    def __init__(self, n_block_entries: int = 32, line_size: int = 8,
                 associativity: int = 4, dual: bool = False) -> None:
        if n_block_entries < 1:
            raise ValueError("n_block_entries must be positive")
        if associativity < 1:
            raise ValueError("associativity must be positive")
        if n_block_entries % associativity:
            raise ValueError("n_block_entries must be a multiple of "
                             "associativity")
        self.n_block_entries = n_block_entries
        self.line_size = line_size
        self.associativity = associativity
        self.dual = dual
        self.n_sets = n_block_entries // associativity
        # Per set: OrderedDict tag -> entry; most recently used last.
        self._sets: List["OrderedDict[Tuple[int, int], _Entry]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    def _locate(self, line: int, which: int):
        index = line % self.n_sets
        tag = (line // self.n_sets, which if self.dual else 0)
        return self._sets[index], tag

    def lookup(self, line: int, position: int,
               which: int = 1) -> Optional[int]:
        """Predicted target, or None on a BTB miss (tag mismatch).

        A hit refreshes LRU state.
        """
        bucket, tag = self._locate(line, which)
        entry = bucket.get(tag)
        if entry is None:
            return None
        bucket.move_to_end(tag)
        return entry.targets[position]

    def update(self, line: int, position: int, target: int,
               which: int = 1) -> None:
        """Train: allocate (evicting LRU) if needed, then store the target."""
        bucket, tag = self._locate(line, which)
        entry = bucket.get(tag)
        if entry is None:
            if len(bucket) >= self.associativity:
                bucket.popitem(last=False)  # evict least recently used
            entry = _Entry(self.line_size)
            bucket[tag] = entry
        else:
            bucket.move_to_end(tag)
        entry.targets[position] = target

    @property
    def storage_bits(self) -> int:
        """Cost per Table 7: ``(2**n + 30 * a) * e / a`` style estimate.

        Approximated as per-entry tag (20 bits) plus full-address targets
        (30 bits each), matching the table's order of magnitude.
        """
        per_entry = 20 + 30 * self.line_size
        return self.n_block_entries * per_entry


class DualBTBTargetArray:
    """Adapter giving the BTB the dual-target-array interface."""

    def __init__(self, n_block_entries: int = 32, line_size: int = 8,
                 associativity: int = 4) -> None:
        self._btb = BlockBTB(n_block_entries, line_size, associativity,
                             dual=True)
        self.n_block_entries = n_block_entries
        self.line_size = line_size

    def lookup(self, which: int, line: int, position: int) -> Optional[int]:
        """Predicted target for target number ``which`` (1 or 2)."""
        if which not in (1, 2):
            raise ValueError(f"which must be 1 or 2, got {which}")
        return self._btb.lookup(line, position, which)

    def update(self, which: int, line: int, position: int,
               target: int) -> None:
        """Train target number ``which`` (1 or 2)."""
        if which not in (1, 2):
            raise ValueError(f"which must be 1 or 2, got {which}")
        self._btb.update(line, position, target, which)

    @property
    def storage_bits(self) -> int:
        """Shared-pool storage cost."""
        return self._btb.storage_bits
