"""Block Instruction Type (BIT) machinery — Table 1.

"We have discovered that in superscalar fetch prediction, knowing what type
of instructions are in a block is the most critical piece of information."

Two encodings are supported:

* 2-bit: non-branch / return / conditional branch / other branches.
* 3-bit (near-block): conditional branches additionally encode a target
  adjacent to the current line (previous, same, next, next+1), letting a
  small adder produce the target so it never occupies the target array.

BIT information may live pre-decoded in the instruction cache (always
correct under the paper's perfect-cache assumption) or in a separate,
possibly smaller table (Figure 7): a tag-less :class:`BITTable` whose
aliased entries return *stale* type bits, costing one cycle when the stale
walk disagrees with the true walk.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..isa.kinds import InstrKind
from ..isa.program import StaticCode


class BitCode(enum.IntEnum):
    """BIT type codes (3-bit encoding; the 2-bit encoding is codes 0-3)."""

    NONBRANCH = 0
    RETURN = 1
    OTHER = 2            #: unconditional jumps, calls, indirect jumps
    COND_LONG = 3        #: conditional, target not adjacent to this line
    COND_PREV_LINE = 4   #: conditional, target in the previous line
    COND_SAME_LINE = 5   #: conditional, target in this line
    COND_NEXT_LINE = 6   #: conditional, target in the next line
    COND_NEXT2_LINE = 7  #: conditional, target two lines ahead


#: Codes that denote a conditional branch.
COND_CODES = frozenset({
    BitCode.COND_LONG, BitCode.COND_PREV_LINE, BitCode.COND_SAME_LINE,
    BitCode.COND_NEXT_LINE, BitCode.COND_NEXT2_LINE,
})

#: Near-block codes and the line offset they encode (Table 1).
NEAR_BLOCK_LINE_OFFSET = {
    BitCode.COND_PREV_LINE: -1,
    BitCode.COND_SAME_LINE: 0,
    BitCode.COND_NEXT_LINE: 1,
    BitCode.COND_NEXT2_LINE: 2,
}


def encode_instruction(kind: int, pc: int, direct_target: int,
                       line_size: int, near_block: bool) -> BitCode:
    """BIT code of one instruction.

    Args:
        kind: :class:`InstrKind` value from the static code map.
        pc: instruction address.
        direct_target: assembly-time target (-1 when indirect/absent).
        line_size: cache-line size (for near-block distance).
        near_block: use the 3-bit encoding.
    """
    if kind == int(InstrKind.COND):
        if near_block and direct_target >= 0:
            offset = direct_target // line_size - pc // line_size
            code = _NEAR_BY_OFFSET.get(offset)
            if code is not None:
                return code
        return BitCode.COND_LONG
    if kind == int(InstrKind.RETURN):
        return BitCode.RETURN
    if kind in (int(InstrKind.JUMP), int(InstrKind.CALL),
                int(InstrKind.INDIRECT)):
        return BitCode.OTHER
    return BitCode.NONBRANCH


_NEAR_BY_OFFSET = {v: k for k, v in NEAR_BLOCK_LINE_OFFSET.items()}


def near_block_target(code: BitCode, pc: int, line_size: int) -> int:
    """Line-relative target computed by the near-block adder.

    The adder combines the branch's line with the encoded offset; the
    position within the line comes from the instruction's offset field once
    decoded, so the prediction of the *line* is exact for near-block codes.
    This model returns the target line's base address; engines compare line
    indices for near-block branches (the paper's NLS predicts lines).
    """
    line = pc // line_size + NEAR_BLOCK_LINE_OFFSET[code]
    return line * line_size


def encode_window(static: StaticCode, start: int, length: int,
                  line_size: int, near_block: bool) -> Tuple[BitCode, ...]:
    """BIT codes for ``length`` instructions starting at ``start``.

    Addresses past the end of the program encode as non-branch (the line
    simply contains whatever follows; our programs end in HALT).
    """
    kinds = static.kind
    targets = static.direct_target
    n = len(static)
    codes = []
    for addr in range(start, start + length):
        if addr >= n:
            codes.append(BitCode.NONBRANCH)
        else:
            codes.append(encode_instruction(int(kinds[addr]), addr,
                                            int(targets[addr]), line_size,
                                            near_block))
    return tuple(codes)


class BITTable:
    """Separate tag-less BIT table (Figure 7's subject).

    Entries are indexed by line modulo the entry count and hold the type
    bits last written for *some* line mapping there.  An access returns the
    stored bits (stale if aliased) plus whether they belong to the requested
    line; cold entries return all-non-branch bits, modelling uninitialised
    type storage.
    """

    def __init__(self, n_entries: int, line_size: int = 8) -> None:
        if n_entries < 1:
            raise ValueError("n_entries must be positive")
        self.n_entries = n_entries
        self.line_size = line_size
        self._lines: List[Optional[int]] = [None] * n_entries
        self._codes: List[Optional[Tuple[BitCode, ...]]] = [None] * n_entries
        self.accesses = 0
        self.stale_hits = 0

    def access(self, line: int) -> Tuple[Optional[Sequence[BitCode]], bool]:
        """Read the entry for ``line``.

        Returns ``(codes, exact)``; ``codes`` is None when the entry has
        never been written, and ``exact`` is True when the stored bits were
        written for this same line.
        """
        self.accesses += 1
        slot = line % self.n_entries
        exact = self._lines[slot] == line
        if not exact and self._lines[slot] is not None:
            self.stale_hits += 1
        return self._codes[slot], exact

    def fill(self, line: int, codes: Sequence[BitCode]) -> None:
        """Install the correct bits for ``line`` (after the 1-cycle miss)."""
        slot = line % self.n_entries
        self._lines[slot] = line
        self._codes[slot] = tuple(codes)

    @property
    def storage_bits(self) -> int:
        """Cost per Table 7: 2 bits per instruction per entry."""
        return 2 * self.line_size * self.n_entries
