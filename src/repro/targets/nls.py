"""Next-Line-Set style target arrays (tag-less, direct-mapped).

The paper's default target array is a 256-entry NLS [1], widened so one
entry predicts targets "for each of the possible branch exit positions" of a
block.  As in the paper's methodology, set prediction is not simulated and
targets are full addresses, making this effectively a direct-mapped tag-less
BTB (Section 4's own words).

Being tag-less, an aliased or stale entry silently yields a wrong target —
detected one cycle later as an immediate misfetch, or at branch resolution
as an indirect misfetch (Table 3).

Keying: entries are selected by cache-line index modulo the entry count;
slots within an entry by the branch's position in its line.  A dual array
(Section 3.1) keeps two target sets, both indexed by the address of the
*current second block*, so the same branch may be duplicated across both —
"undesirable duplication ... inherent to the dual target array".
"""

from __future__ import annotations

from typing import List, Optional


class NLSTargetArray:
    """Single-block tag-less target array.

    Args:
        n_block_entries: number of block entries (paper default 256).
        line_size: slots per entry (one per line position).
    """

    def __init__(self, n_block_entries: int = 256, line_size: int = 8) -> None:
        if n_block_entries < 1:
            raise ValueError("n_block_entries must be positive")
        if line_size < 1:
            raise ValueError("line_size must be positive")
        self.n_block_entries = n_block_entries
        self.line_size = line_size
        self._targets: List[Optional[int]] = (
            [None] * (n_block_entries * line_size))

    def _slot(self, line: int, position: int) -> int:
        return (line % self.n_block_entries) * self.line_size + position

    def lookup(self, line: int, position: int) -> Optional[int]:
        """Predicted target for the branch at (line, position); may alias."""
        return self._targets[self._slot(line, position)]

    def update(self, line: int, position: int, target: int) -> None:
        """Record a resolved taken-branch target."""
        self._targets[self._slot(line, position)] = target

    @property
    def storage_bits(self) -> int:
        """Cost in bits assuming 10-bit line indices (Table 7's default)."""
        return self.n_block_entries * self.line_size * 10


class DualNLSTargetArray:
    """Dual target array: separate first- and second-target NLS arrays.

    "Although the NLS must have two target arrays, a BTB may use its tag to
    indicate the target number."  Both halves are indexed by the current
    second block's line; ``which`` selects the half (1 = targets for the
    next first block, 2 = targets for the next second block).
    """

    def __init__(self, n_block_entries: int = 256, line_size: int = 8) -> None:
        self.first = NLSTargetArray(n_block_entries, line_size)
        self.second = NLSTargetArray(n_block_entries, line_size)
        self.n_block_entries = n_block_entries
        self.line_size = line_size

    def _half(self, which: int) -> NLSTargetArray:
        if which == 1:
            return self.first
        if which == 2:
            return self.second
        raise ValueError(f"which must be 1 or 2, got {which}")

    def lookup(self, which: int, line: int, position: int) -> Optional[int]:
        """Predicted target from the selected half."""
        return self._half(which).lookup(line, position)

    def update(self, which: int, line: int, position: int,
               target: int) -> None:
        """Train the selected half."""
        self._half(which).update(line, position, target)

    @property
    def storage_bits(self) -> int:
        """Total cost of both halves."""
        return self.first.storage_bits + self.second.storage_bits
