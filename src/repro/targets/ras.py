"""Return address stack (RAS) with dual-block bypassing.

A 32-entry circular stack [5].  On overflow the oldest entry is overwritten
(classic RAS behaviour), so very deep recursion mispredicts on the way back
out — a real effect the paper inherits from Kaeli & Emma's design.

Section 3.1 describes the dual-block bypass rules, exposed here as
:meth:`predict_for_second_block`: if the first block of a pair performs a
call, the second block's return prediction must be the address *after* the
call; if the first block returns, the second block needs the next-older
stack entry; otherwise the plain top of stack is used.
"""

from __future__ import annotations

from typing import Optional


class ReturnAddressStack:
    """Circular return-address stack."""

    def __init__(self, size: int = 32) -> None:
        if size < 1:
            raise ValueError("RAS size must be positive")
        self.size = size
        self._slots = [0] * size
        self._top = 0      # index of the next free slot
        self._depth = 0    # valid entries (capped at size)

    def push(self, address: int) -> None:
        """Push a return address (a call was fetched)."""
        self._slots[self._top] = address
        self._top = (self._top + 1) % self.size
        if self._depth < self.size:
            self._depth += 1

    def pop(self) -> Optional[int]:
        """Pop and return the top entry; None when empty."""
        if self._depth == 0:
            return None
        self._top = (self._top - 1) % self.size
        self._depth -= 1
        return self._slots[self._top]

    def peek(self, depth: int = 0) -> Optional[int]:
        """Read an entry without popping (0 = top of stack)."""
        if depth >= self._depth:
            return None
        return self._slots[(self._top - 1 - depth) % self.size]

    @property
    def depth(self) -> int:
        """Number of valid entries."""
        return self._depth

    def predict_for_second_block(self, first_block_calls: bool,
                                 first_block_returns: bool,
                                 first_block_return_address: int
                                 ) -> Optional[int]:
        """Return-target prediction for the second block of a pair.

        Args:
            first_block_calls: the pair's first block ends in a call.
            first_block_returns: the pair's first block ends in a return.
            first_block_return_address: address after the first block's
                call exit (bypassed to the second block).
        """
        if first_block_calls:
            return first_block_return_address
        if first_block_returns:
            return self.peek(1)
        return self.peek(0)
