"""Command-line interface: regenerate paper artifacts and inspect workloads.

Usage::

    python -m repro fig6                 # any of fig6 fig7 fig8 fig9
    python -m repro table5 --budget 60000    # table5 table6 table7
    python -m repro workloads            # list the SPEC95 analogs
    python -m repro run compress --cache align --blocks 2
"""

from __future__ import annotations

import argparse
import sys

from .core import DualBlockEngine, EngineConfig, SingleBlockEngine
from .core.backends import BACKEND_MODES
from .core.engine_mode import ENGINE_MODES
from .core.multi import MultiBlockEngine
from .experiments import (
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table5,
    format_table6,
    format_table7,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table5,
    run_table6,
    run_table7,
)
from .icache import CacheGeometry
from .runtime.executor import n_jobs
from .runtime.resilience import SweepError
from .runtime.shard import POLICIES
from .trace import trace_stats
from .workloads import SPEC95, get_workload, load_fetch_input, load_trace

_EXPERIMENTS = {
    "fig6": (run_fig6, format_fig6),
    "fig7": (run_fig7, format_fig7),
    "fig8": (run_fig8, format_fig8),
    "fig9": (run_fig9, format_fig9),
    "table5": (run_table5, format_table5),
    "table6": (run_table6, format_table6),
}

_CACHES = {
    "normal": CacheGeometry.normal,
    "extend": CacheGeometry.extended,
    "align": CacheGeometry.self_aligned,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multiple Branch and Block "
                    "Prediction' (HPCA 1997)",
        epilog="Runtime environment: REPRO_ENGINE=scalar|fast selects "
               "the fetch-engine implementation (default: fast, "
               "bit-identical to scalar); REPRO_BACKEND=numpy|compiled|"
               "numba picks the fast tier's kernel backend; "
               "REPRO_PROFILE=1 prints per-cell phase timings to "
               "stderr. See docs/performance.md for the full knob "
               "table.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sweep_options(p) -> None:
        """Resilient-runtime options shared by every sweep command."""
        p.add_argument("--engine", choices=ENGINE_MODES, default=None,
                       help="fetch-engine implementation: 'fast' "
                            "(vectorized kernels, the default) or "
                            "'scalar' (reference loops); both produce "
                            "identical statistics (default: "
                            "REPRO_ENGINE or fast)")
        p.add_argument("--backend", choices=BACKEND_MODES, default=None,
                       help="kernel backend for the fast tier: 'numpy' "
                            "(reference vectorized), 'compiled' "
                            "(exec-generated shape-specialized "
                            "kernels), or 'numba' (njit replay loop; "
                            "degrades to compiled when numba is "
                            "absent); all bit-identical (default: "
                            "REPRO_BACKEND or numpy)")
        p.add_argument("--jobs", type=str, default=None,
                       help="worker processes for the sweep "
                            "(int or 'auto'; default: REPRO_JOBS "
                            "or serial)")
        p.add_argument("--shards", type=str, default=None,
                       help="shard count for the sweep (int or 'auto'; "
                            ">1 enables the work-stealing shard "
                            "scheduler; default: REPRO_SHARDS or "
                            "unsharded)")
        p.add_argument("--shard-policy", choices=POLICIES, default=None,
                       help="cell->shard partition policy: 'hash', "
                            "'range' or 'size' (default: "
                            "REPRO_SHARD_POLICY or size)")
        p.add_argument("--retries", type=str, default=None,
                       help="retry budget per sweep cell "
                            "(default: REPRO_RETRIES or 2)")
        p.add_argument("--cell-timeout", type=str, default=None,
                       help="per-cell deadline in seconds for parallel "
                            "sweeps (default: REPRO_CELL_TIMEOUT or "
                            "none)")
        p.add_argument("--resume", dest="resume", action="store_true",
                       default=None,
                       help="resume an interrupted sweep from its "
                            "journal (default)")
        p.add_argument("--no-resume", dest="resume",
                       action="store_false",
                       help="ignore any existing sweep journal and "
                            "recompute every cell")

    for name in (*_EXPERIMENTS, "table7"):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        if name != "table7":
            p.add_argument("--budget", type=int, default=None,
                           help="instructions per workload "
                                "(default: REPRO_TRACE_LEN or 120000)")
            add_sweep_options(p)

    sub.add_parser("workloads", help="list the SPEC95-analog workloads")

    p = sub.add_parser("report", help="regenerate every paper artifact "
                                      "into one markdown file")
    p.add_argument("--budget", type=int, default=None)
    add_sweep_options(p)
    p.add_argument("--output", default="report.md")

    p = sub.add_parser("run", help="run one workload through a fetch "
                                   "engine")
    p.add_argument("workload", choices=SPEC95)
    p.add_argument("--engine", choices=ENGINE_MODES, default=None,
                   help="fetch-engine implementation (default: "
                        "REPRO_ENGINE or fast)")
    p.add_argument("--backend", choices=BACKEND_MODES, default=None,
                   help="kernel backend for the fast tier (default: "
                        "REPRO_BACKEND or numpy)")
    p.add_argument("--budget", type=int, default=120_000)
    p.add_argument("--cache", choices=sorted(_CACHES), default="align")
    p.add_argument("--blocks", type=int, default=2,
                   help="blocks fetched per cycle (1, 2, or more)")
    p.add_argument("--history", type=int, default=10)
    p.add_argument("--select-tables", type=int, default=8)
    p.add_argument("--selection", choices=("single", "double"),
                   default="single")
    p.add_argument("--target", choices=("nls", "btb"), default="nls",
                   help="target array implementation")
    p.add_argument("--target-entries", type=int, default=256)
    return parser


def _apply_runtime(args) -> None:
    """Propagate sweep flags to their environment variables, validated.

    The runtime reads the environment, so setting it here makes one flag
    govern every sweep the command triggers, including those in worker
    warm-up.  Every knob — flag-set or inherited from the environment —
    is validated eagerly so a typo fails (exit 2) before any simulation.
    """
    import os

    from .core import backends, engine_mode
    from .cpu import tracer_mode
    from .runtime import faults, profile, resilience, shard
    from .runtime.executor import JOBS_ENV
    from .trace.chunks import chunk_records
    from .workloads.base import stream_threshold

    if getattr(args, "engine", None) is not None:
        os.environ[engine_mode.ENGINE_ENV] = args.engine
    if getattr(args, "backend", None) is not None:
        os.environ[backends.BACKEND_ENV] = args.backend
    if getattr(args, "jobs", None) is not None:
        os.environ[JOBS_ENV] = args.jobs
    if getattr(args, "shards", None) is not None:
        os.environ[shard.SHARDS_ENV] = args.shards
    if getattr(args, "shard_policy", None) is not None:
        os.environ[shard.POLICY_ENV] = args.shard_policy
    if getattr(args, "retries", None) is not None:
        os.environ[resilience.RETRIES_ENV] = args.retries
    if getattr(args, "cell_timeout", None) is not None:
        os.environ[resilience.TIMEOUT_ENV] = args.cell_timeout
    if getattr(args, "resume", None) is not None:
        os.environ[resilience.RESUME_ENV] = "1" if args.resume else "0"
    from .core.backends import codegen

    engine_mode.engine_mode()
    backends.backend_mode()
    codegen.gate_mode()
    tracer_mode()
    chunk_records()
    stream_threshold()
    profile.enabled()
    n_jobs()
    shard.shard_count()
    shard.shard_policy()
    resilience.retry_limit()
    resilience.cell_timeout()
    resilience.resume_enabled()
    faults.validate()


def _emit_sweep_reports() -> None:
    """Print a summary for every sweep that degraded (to stderr)."""
    from .runtime import resilience

    for report in resilience.drain_reports():
        if not report.clean:
            print(report.summary(), file=sys.stderr)


def _cmd_experiment(name: str, budget) -> None:
    runner, formatter = _EXPERIMENTS[name]
    rows = runner(budget=budget) if budget else runner()
    print(formatter(rows))


def _cmd_workloads() -> None:
    for name in SPEC95:
        w = get_workload(name)
        print(f"{name:10s} [{w.suite:3s}] {w.description}")


def _cmd_run(args) -> None:
    geometry = _CACHES[args.cache](8)
    config = EngineConfig(geometry=geometry,
                          history_length=args.history,
                          n_select_tables=args.select_tables,
                          selection=args.selection,
                          target_kind=args.target,
                          target_entries=args.target_entries)
    trace = load_trace(args.workload, args.budget)
    print(trace_stats(trace))
    fetch_input = load_fetch_input(args.workload, geometry, args.budget)
    if args.blocks == 1:
        engine = SingleBlockEngine(config)
    elif args.blocks == 2:
        engine = DualBlockEngine(config)
    else:
        engine = MultiBlockEngine(config, args.blocks)
    print()
    print(engine.run(fetch_input).summary())


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "table7":
            print(format_table7(run_table7()))
        elif args.command in _EXPERIMENTS:
            _apply_runtime(args)
            _cmd_experiment(args.command, args.budget)
        elif args.command == "workloads":
            _cmd_workloads()
        elif args.command == "report":
            from .experiments.report import write_report

            _apply_runtime(args)
            path = write_report(args.output, budget=args.budget,
                                verbose=True)
            print(f"wrote {path}")
        elif args.command == "run":
            _apply_runtime(args)
            _cmd_run(args)
    except BrokenPipeError:
        return 0  # output piped into a pager that closed early
    except SweepError as exc:
        # Cells were dropped after every recovery path: report what
        # degraded and exit non-zero.  Completed cells stay journaled,
        # so rerunning the same command resumes instead of restarting.
        _emit_sweep_reports()
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit_sweep_reports()
    return 0


if __name__ == "__main__":
    sys.exit(main())
