"""Figure 9 — per-program BEP broken down by misprediction category.

"Using a self-aligned cache, 8 STs, and a branch history length of 10,
Figure 9 shows the BEP of each program and the contribution of BEP by each
type of misprediction. ... The most significant BEP contribution is from
misprediction of conditional branches.  Misselection is the next most
significant contribution."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.config import EngineConfig
from ..core.penalties import PenaltyKind
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec
from ..workloads import SPECFP95, SPECINT95
from .common import format_table, instruction_budget, run_suite_batch

#: Stacking order used in the paper's legend (bottom to top).
STACK_ORDER = (
    PenaltyKind.COND,
    PenaltyKind.MISSELECT,
    PenaltyKind.GHR,
    PenaltyKind.MISFETCH_IMMEDIATE,
    PenaltyKind.MISFETCH_INDIRECT,
    PenaltyKind.RETURN,
    PenaltyKind.BANK_CONFLICT,
)


@dataclass(frozen=True)
class Fig9Row:
    """One program's stacked BEP bar."""

    program: str
    suite: str
    bep: float
    components: Dict[PenaltyKind, float]  #: BEP contribution per category


def run_fig9(budget: int = None) -> List[Fig9Row]:
    """Reproduce Figure 9 (two-block single-selection, self-aligned)."""
    budget = budget or instruction_budget()
    config = EngineConfig(
        geometry=CacheGeometry.self_aligned(8),
        history_length=10,
        n_select_tables=8,
    )
    suites = (("fp", SPECFP95), ("int", SPECINT95))
    aggregates = run_suite_batch([
        SuiteSpec(suite=suite, config=config, budget=budget)
        for suite, _ in suites], label="fig9")
    rows = []
    for (suite, names), aggregate in zip(suites, aggregates):
        for name in names:
            stats = aggregate.per_program[name]
            components = {
                kind: stats.bep_component(kind) for kind in STACK_ORDER
            }
            rows.append(Fig9Row(program=name, suite=suite, bep=stats.bep,
                                components=components))
    return rows


def format_fig9(rows: List[Fig9Row]) -> str:
    """Render the rows as the paper's Figure 9 reads."""
    headers = ["program", "suite", "BEP"] + \
        [kind.value for kind in STACK_ORDER]
    table = []
    for row in rows:
        table.append([row.program, row.suite, f"{row.bep:.3f}"] +
                     [f"{row.components[kind]:.3f}"
                      for kind in STACK_ORDER])
    return format_table(headers, table)
