"""Table 7 / Section 5 — hardware cost estimates.

A thin wrapper over :mod:`repro.cost` producing the paper's worked example
(52 / 80 / 72 Kbit totals) and the >2-block extrapolation.
"""

from __future__ import annotations

from typing import List

from ..cost import (
    CostBreakdown,
    CostConfig,
    dual_block_double_select_cost,
    dual_block_single_select_cost,
    multi_block_cost,
    single_block_cost,
)


def run_table7(config: CostConfig = CostConfig()) -> List[CostBreakdown]:
    """The three Section 5 configurations under ``config``."""
    return [
        single_block_cost(config),
        dual_block_single_select_cost(config),
        dual_block_double_select_cost(config),
    ]


def run_multi_block_extrapolation(max_blocks: int = 4,
                                  config: CostConfig = CostConfig()
                                  ) -> List[CostBreakdown]:
    """Storage growth when predicting 1..max_blocks blocks per cycle."""
    return [multi_block_cost(n, config) for n in range(1, max_blocks + 1)]


def format_table7(breakdowns: List[CostBreakdown]) -> str:
    """Render cost breakdowns as stacked component lists."""
    return "\n\n".join(str(b) for b in breakdowns)
