"""Figure 6 — conditional branch accuracy: blocked PHT vs scalar PHT.

"The branch history length varied from 6 to 12, and the results were
compared to a scalar PHT.  The scalar scheme used a per-addr PHT with 8
PHTs to give it equal size of a blocked PHT for B = 8."

For each history length and sub-suite, the runner reports the blocked
misprediction rate and the improvement (in percentage points) of the
blocked scheme over the equal-sized scalar scheme.  The paper's finding:
the difference is tiny (hundredths of a percent for fp, tenths for int),
usually favouring the blocked PHT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..icache.geometry import CacheGeometry
from ..predictors.blocked import BlockedPHT
from ..predictors.evaluate import (
    evaluate_blocked_direction,
    evaluate_scalar_direction,
)
from ..predictors.scalar import ScalarPHT
from ..workloads import load_fetch_input, load_trace
from .common import SUITES, format_table, instruction_budget


@dataclass(frozen=True)
class Fig6Row:
    """One (suite, history length) point of Figure 6."""

    suite: str
    history_length: int
    blocked_rate: float       #: blocked-PHT misprediction rate
    scalar_rate: float        #: equal-sized scalar misprediction rate

    @property
    def improvement(self) -> float:
        """Percentage-point improvement of blocked over scalar."""
        return self.scalar_rate - self.blocked_rate


def run_fig6(history_lengths: Iterable[int] = range(6, 13),
             budget: int = None,
             block_width: int = 8) -> List[Fig6Row]:
    """Reproduce Figure 6's sweep."""
    budget = budget or instruction_budget()
    geometry = CacheGeometry.normal(block_width)
    rows = []
    for suite, names in SUITES.items():
        for h in history_lengths:
            blocked_miss = blocked_cond = 0
            scalar_miss = scalar_cond = 0
            for name in names:
                fetch_input = load_fetch_input(name, geometry, budget)
                blocked = evaluate_blocked_direction(
                    fetch_input.blocks,
                    BlockedPHT(history_length=h, block_width=block_width))
                blocked_miss += blocked.mispredicts
                blocked_cond += blocked.n_cond
                scalar = evaluate_scalar_direction(
                    load_trace(name, budget),
                    ScalarPHT(history_length=h, n_tables=block_width))
                scalar_miss += scalar.mispredicts
                scalar_cond += scalar.n_cond
            rows.append(Fig6Row(
                suite=suite,
                history_length=h,
                blocked_rate=blocked_miss / blocked_cond,
                scalar_rate=scalar_miss / scalar_cond,
            ))
    return rows


def format_fig6(rows: List[Fig6Row]) -> str:
    """Render rows the way the paper's Figure 6 reads."""
    table = [[row.suite, str(row.history_length),
              f"{100 * row.blocked_rate:.2f}%",
              f"{100 * row.scalar_rate:.2f}%",
              f"{100 * row.improvement:+.3f}pp"]
             for row in rows]
    return format_table(
        ["suite", "hist", "blocked miss", "scalar miss", "improvement"],
        table)
