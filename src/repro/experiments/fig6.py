"""Figure 6 — conditional branch accuracy: blocked PHT vs scalar PHT.

"The branch history length varied from 6 to 12, and the results were
compared to a scalar PHT.  The scalar scheme used a per-addr PHT with 8
PHTs to give it equal size of a blocked PHT for B = 8."

For each history length and sub-suite, the runner reports the blocked
misprediction rate and the improvement (in percentage points) of the
blocked scheme over the equal-sized scalar scheme.  The paper's finding:
the difference is tiny (hundredths of a percent for fp, tenths for int),
usually favouring the blocked PHT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..icache.geometry import CacheGeometry
from ..predictors.evaluate import direction_accuracy_sweep
from ..runtime.executor import execute, warm_fetch_inputs
from ..workloads import load_fetch_input
from .common import SUITES, format_table, instruction_budget


@dataclass(frozen=True)
class Fig6Row:
    """One (suite, history length) point of Figure 6."""

    suite: str
    history_length: int
    blocked_rate: float       #: blocked-PHT misprediction rate
    scalar_rate: float        #: equal-sized scalar misprediction rate

    @property
    def improvement(self) -> float:
        """Percentage-point improvement of blocked over scalar."""
        return self.scalar_rate - self.blocked_rate


def _fig6_cell(cell: Tuple[str, int, int, Tuple[int, ...]]):
    """Worker: one workload's full history-length sweep, both schemes."""
    name, budget, block_width, history_lengths = cell
    geometry = CacheGeometry.normal(block_width)
    fetch_input = load_fetch_input(name, geometry, budget)
    return direction_accuracy_sweep(fetch_input.trace, fetch_input.blocks,
                                    history_lengths, block_width)


def _warm_fig6(cells) -> None:
    """Pre-populate the persistent cache before a parallel fan-out."""
    warm_fetch_inputs((name, CacheGeometry.normal(block_width), budget)
                      for name, budget, block_width, _ in cells)


def run_fig6(history_lengths: Iterable[int] = range(6, 13),
             budget: int = None,
             block_width: int = 8) -> List[Fig6Row]:
    """Reproduce Figure 6's sweep.

    One cell per workload — each runs the vectorized
    :func:`direction_accuracy_sweep` over every history length for both
    schemes — fanned out by ``REPRO_JOBS`` and merged per (suite, history
    length) in canonical order, so parallel results match serial ones.
    """
    budget = budget or instruction_budget()
    hs = tuple(history_lengths)
    names = [name for suite_names in SUITES.values()
             for name in suite_names]
    cells = [(name, budget, block_width, hs) for name in names]
    sweeps = dict(zip(names, execute(_fig6_cell, cells, warm=_warm_fig6,
                                     label="fig6")))

    rows = []
    for suite, suite_names in SUITES.items():
        for h in hs:
            blocked_miss = blocked_cond = 0
            scalar_miss = scalar_cond = 0
            for name in suite_names:
                blocked, scalar = sweeps[name][h]
                blocked_miss += blocked.mispredicts
                blocked_cond += blocked.n_cond
                scalar_miss += scalar.mispredicts
                scalar_cond += scalar.n_cond
            rows.append(Fig6Row(
                suite=suite,
                history_length=h,
                blocked_rate=blocked_miss / blocked_cond,
                scalar_rate=scalar_miss / scalar_cond,
            ))
    return rows


def format_fig6(rows: List[Fig6Row]) -> str:
    """Render rows the way the paper's Figure 6 reads."""
    table = [[row.suite, str(row.history_length),
              f"{100 * row.blocked_rate:.2f}%",
              f"{100 * row.scalar_rate:.2f}%",
              f"{100 * row.improvement:+.3f}pp"]
             for row in rows]
    return format_table(
        ["suite", "hist", "blocked miss", "scalar miss", "improvement"],
        table)
