"""Table 5 — target array configurations (SPECint95, dual block).

Sweeps BTB block-entry counts {8, 16, 32, 64} (4-way, LRU) and NLS entry
counts {64, 128, 256, 512}, each with near-block encoding off and on,
reporting the share of BEP due to immediate and indirect misfetches plus
total BEP and IPC_f.  The paper's findings: roughly eight NLS block
entries match one 4-way BTB entry, ~70% of conditional branches are
near-block, and near-block encoding halves the required entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.config import EngineConfig, TARGET_BTB, TARGET_NLS
from ..core.penalties import PenaltyKind
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec
from .common import format_table, instruction_budget, run_suite_batch

DEFAULT_BTB_SIZES = (8, 16, 32, 64)

#: The paper sweeps NLS sizes 64..512 against SPEC95-scale code
#: footprints; our analogs keep ~8x fewer lines hot, so the default NLS
#: sweep is scaled down by NLS_FOOTPRINT_SCALE (the BTB sweep needs no
#: scaling — its capacity misses depend on entry count, not footprint).
NLS_FOOTPRINT_SCALE = 8
PAPER_NLS_SIZES = (64, 128, 256, 512)
DEFAULT_NLS_SIZES = tuple(s // NLS_FOOTPRINT_SCALE for s in PAPER_NLS_SIZES)


@dataclass(frozen=True)
class Table5Row:
    """One target-array configuration row of Table 5."""

    target_kind: str
    n_block_entries: int
    paper_equivalent: int    #: paper-sweep size this row stands in for
    near_block: bool
    misfetch_immediate_share: float  #: %BEP from immediate misfetches
    misfetch_indirect_share: float   #: %BEP from indirect misfetches
    bep: float
    ipc_f: float


def run_table5(btb_sizes: Iterable[int] = DEFAULT_BTB_SIZES,
               nls_sizes: Iterable[int] = DEFAULT_NLS_SIZES,
               budget: int = None) -> List[Table5Row]:
    """Reproduce Table 5 (SPECint95, dual block, single selection)."""
    budget = budget or instruction_budget()
    geometry = CacheGeometry.normal(8)
    points = [(target_kind, size, near_block)
              for target_kind, size in
              ([(TARGET_BTB, s) for s in btb_sizes] +
               [(TARGET_NLS, s) for s in nls_sizes])
              for near_block in (False, True)]
    aggregates = run_suite_batch([
        SuiteSpec(suite="int",
                  config=EngineConfig(geometry=geometry,
                                      target_kind=target_kind,
                                      target_entries=size,
                                      near_block=near_block),
                  budget=budget)
        for target_kind, size, near_block in points], label="table5")
    rows = []
    for (target_kind, size, near_block), agg in zip(points, aggregates):
        scale = (NLS_FOOTPRINT_SCALE if target_kind == TARGET_NLS
                 else 1)
        rows.append(Table5Row(
            target_kind=target_kind,
            n_block_entries=size,
            paper_equivalent=size * scale,
            near_block=near_block,
            misfetch_immediate_share=agg.penalty_share(
                PenaltyKind.MISFETCH_IMMEDIATE),
            misfetch_indirect_share=agg.penalty_share(
                PenaltyKind.MISFETCH_INDIRECT),
            bep=agg.bep,
            ipc_f=agg.ipc_f,
        ))
    return rows


def format_table5(rows: List[Table5Row]) -> str:
    """Render the rows as the paper's Table 5 reads."""
    table = [[row.target_kind.upper(),
              (str(row.n_block_entries)
               if row.paper_equivalent == row.n_block_entries
               else f"{row.n_block_entries} (~{row.paper_equivalent})"),
              "yes" if row.near_block else "no",
              f"{100 * row.misfetch_immediate_share:.1f}",
              f"{100 * row.misfetch_indirect_share:.1f}",
              f"{row.bep:.3f}", f"{row.ipc_f:.2f}"]
             for row in rows]
    return format_table(
        ["type", "# blk entries", "near-block?", "%BEP imm", "%BEP ind",
         "BEP", "IPC_f"], table)
