"""Table 6 — cache types: IPB and IPC_f for one- and two-block fetching.

Compares normal (line = block = 8), extended (line 16) and self-aligned
caches using 8 STs and history length 10.  The paper's headline numbers:
the self-aligned cache reaches 10.88 IPC_f on SPECfp95 and over 8 across
SPEC95; dual-block fetching beats single-block by ~40% (int) to ~70% (fp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.config import EngineConfig
from ..core.single import SingleBlockEngine
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec
from .common import (
    SUITES,
    format_table,
    instruction_budget,
    run_suite_batch,
)

CACHE_TYPES = (
    ("normal", CacheGeometry.normal),
    ("extend", CacheGeometry.extended),
    ("align", CacheGeometry.self_aligned),
)


@dataclass(frozen=True)
class Table6Row:
    """One (cache type, suite) row of Table 6."""

    cache_type: str
    suite: str
    line_size: int
    n_banks: int
    ipb: float
    ipc_f_one_block: float
    ipc_f_two_block: float


def run_table6(budget: int = None, history_length: int = 10,
               n_select_tables: int = 8) -> List[Table6Row]:
    """Reproduce Table 6 over both sub-suites."""
    budget = budget or instruction_budget()
    points = []
    specs = []
    for cache_name, factory in CACHE_TYPES:
        geometry = factory(8)
        config = EngineConfig(
            geometry=geometry,
            history_length=history_length,
            n_select_tables=n_select_tables,
        )
        for suite in SUITES:
            points.append((cache_name, geometry, suite))
            specs.append(SuiteSpec(suite=suite, config=config,
                                   budget=budget,
                                   engine_factory=SingleBlockEngine))
            specs.append(SuiteSpec(suite=suite, config=config,
                                   budget=budget))
    aggregates = run_suite_batch(specs, label="table6")
    rows = []
    for i, (cache_name, geometry, suite) in enumerate(points):
        single, dual = aggregates[2 * i], aggregates[2 * i + 1]
        rows.append(Table6Row(
            cache_type=cache_name,
            suite=suite,
            line_size=geometry.line_size,
            n_banks=geometry.n_banks,
            ipb=dual.ipb,
            ipc_f_one_block=single.ipc_f,
            ipc_f_two_block=dual.ipc_f,
        ))
    return rows


def format_table6(rows: List[Table6Row]) -> str:
    """Render the rows as the paper's Table 6 reads."""
    table = [[row.cache_type, str(row.line_size), str(row.n_banks),
              row.suite, f"{row.ipb:.2f}",
              f"{row.ipc_f_one_block:.2f}", f"{row.ipc_f_two_block:.2f}"]
             for row in rows]
    return format_table(
        ["cache", "line", "banks", "suite", "IPB", "IPC_f 1blk",
         "IPC_f 2blk"], table)
