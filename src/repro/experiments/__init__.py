"""Experiment runners — one module per paper figure/table.

| Module   | Reproduces                                               |
|----------|----------------------------------------------------------|
| fig6     | blocked vs scalar conditional accuracy, history 6-12     |
| fig7     | separate BIT table size sweep (single block)             |
| fig8     | single vs double selection, GHR 9-12 x {1,2,4,8} STs     |
| table5   | BTB/NLS target-array configurations (SPECint95)          |
| table6   | normal/extended/self-aligned caches, 1 vs 2 blocks       |
| fig9     | per-program BEP breakdown (two-block, self-aligned)      |
| table7   | hardware cost estimates                                  |
"""

from .common import (
    SUITES,
    SuiteAggregate,
    format_table,
    instruction_budget,
    run_single_block_suite,
    run_suite,
)
from .fig6 import Fig6Row, format_fig6, run_fig6
from .report import generate_report, write_report
from .fig7 import Fig7Row, format_fig7, run_fig7
from .fig8 import Fig8Row, format_fig8, run_fig8
from .fig9 import Fig9Row, STACK_ORDER, format_fig9, run_fig9
from .table5 import Table5Row, format_table5, run_table5
from .table6 import Table6Row, format_table6, run_table6
from .table7 import (
    format_table7,
    run_multi_block_extrapolation,
    run_table7,
)

__all__ = [
    "Fig6Row", "Fig7Row", "Fig8Row", "Fig9Row", "STACK_ORDER",
    "SUITES", "SuiteAggregate", "Table5Row", "Table6Row",
    "format_fig6", "format_fig7", "format_fig8", "format_fig9",
    "format_table", "format_table5", "format_table6", "format_table7",
    "generate_report", "write_report",
    "instruction_budget", "run_fig6", "run_fig7", "run_fig8", "run_fig9",
    "run_multi_block_extrapolation", "run_single_block_suite", "run_suite",
    "run_table5", "run_table6", "run_table7",
]
