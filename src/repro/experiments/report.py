"""One-shot report generator: every paper artifact in one markdown file.

``python -m repro report`` (or :func:`generate_report`) runs all seven
figure/table runners at the configured budget and renders a single
markdown document with the regenerated tables, suitable for committing
next to EXPERIMENTS.md after a long high-budget run.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from .common import instruction_budget
from .fig6 import format_fig6, run_fig6
from .fig7 import format_fig7, run_fig7
from .fig8 import format_fig8, run_fig8
from .fig9 import format_fig9, run_fig9
from .table5 import format_table5, run_table5
from .table6 import format_table6, run_table6
from .table7 import format_table7, run_multi_block_extrapolation, \
    run_table7

_SECTIONS = (
    ("Figure 6 — blocked vs scalar conditional accuracy",
     run_fig6, format_fig6, True),
    ("Figure 7 — separate BIT table size (footprint-scaled)",
     run_fig7, format_fig7, True),
    ("Figure 8 — single vs double selection",
     run_fig8, format_fig8, True),
    ("Table 5 — target-array configurations (SPECint95)",
     run_table5, format_table5, True),
    ("Table 6 — cache types, one vs two blocks",
     run_table6, format_table6, True),
    ("Figure 9 — per-program BEP breakdown",
     run_fig9, format_fig9, True),
)


def generate_report(budget: Optional[int] = None,
                    verbose: bool = False) -> str:
    """Run every experiment and return the rendered markdown."""
    budget = budget or instruction_budget()
    parts = [
        "# Regenerated evaluation — Multiple Branch and Block Prediction",
        "",
        f"Instruction budget: {budget} per workload "
        f"(paper: 10^9).  See EXPERIMENTS.md for the paper-vs-measured "
        f"discussion and DESIGN.md for the substitutions.",
    ]
    for title, runner, formatter, takes_budget in _SECTIONS:
        started = time.time()
        rows = runner(budget=budget) if takes_budget else runner()
        elapsed = time.time() - started
        if verbose:
            print(f"{title}: {elapsed:.1f}s")
        parts.append(f"\n## {title}\n")
        parts.append("```")
        parts.append(formatter(rows))
        parts.append("```")
    parts.append("\n## Table 7 — hardware cost estimates\n")
    parts.append("```")
    parts.append(format_table7(run_table7()))
    parts.append("")
    parts.append(format_table7(run_multi_block_extrapolation(4)))
    parts.append("```")
    return "\n".join(parts) + "\n"


def write_report(path: str, budget: Optional[int] = None,
                 verbose: bool = False) -> Path:
    """Generate the report and write it to ``path``."""
    target = Path(path)
    target.write_text(generate_report(budget=budget, verbose=verbose))
    return target
