"""Shared plumbing for the per-figure/table experiment runners.

Every runner follows one shape: sweep a parameter, run the relevant engine
over both SPEC95 sub-suites, aggregate, and return printable row objects.
The instruction budget per workload defaults to ``REPRO_TRACE_LEN``
(120 000) — the stand-in for the paper's 10^9 instructions per program —
so benchmarks can trade fidelity for wall-clock from the environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

from .. import envvars
from ..core.config import EngineConfig, FetchInput
from ..core.single import SingleBlockEngine
from ..core.stats import FetchStats
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec, run_suite_specs
from ..workloads import SPECFP95, SPECINT95, load_fetch_input

DEFAULT_BUDGET = 120_000

SUITES: Dict[str, List[str]] = {"int": SPECINT95, "fp": SPECFP95}


def instruction_budget(default: int = DEFAULT_BUDGET) -> int:
    """Per-workload dynamic instruction budget (env ``REPRO_TRACE_LEN``)."""
    raw = envvars.read("REPRO_TRACE_LEN")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_LEN must be an integer instruction count, "
            f"got {raw!r}") from None
    if value < 1_000:
        raise ValueError(
            f"REPRO_TRACE_LEN must be at least 1000, got {value}")
    return value


def suite_inputs(suite: str, geometry: CacheGeometry,
                 budget: int) -> Iterable[Tuple[str, FetchInput]]:
    """Yield (name, fetch input) for every program of one sub-suite."""
    for name in SUITES[suite]:
        yield name, load_fetch_input(name, geometry, budget)


@dataclass
class SuiteAggregate:
    """Suite-level totals from per-program fetch statistics.

    Aggregation sums raw counts across programs — the suite IPC_f is
    "instructions fetched across the suite / cycles spent across the
    suite", and suite BEP is total penalty cycles over total branches —
    matching how a single simulation of the concatenated workloads would
    report.
    """

    n_instructions: int = 0
    n_blocks: int = 0
    n_branches: int = 0
    n_cond: int = 0
    fetch_cycles: int = 0
    penalty_cycles: int = 0
    per_program: Dict[str, FetchStats] = None

    def __post_init__(self):
        if self.per_program is None:
            self.per_program = {}

    def add(self, name: str, stats: FetchStats) -> None:
        """Fold one program's statistics into the suite totals."""
        self.n_instructions += stats.n_instructions
        self.n_blocks += stats.n_blocks
        self.n_branches += stats.n_branches
        self.n_cond += stats.n_cond
        self.fetch_cycles += stats.fetch_cycles
        self.penalty_cycles += stats.penalty_cycles
        self.per_program[name] = stats

    @property
    def ipc_f(self) -> float:
        """Suite-level effective fetch rate."""
        return self.n_instructions / self.fetch_cycles \
            if self.fetch_cycles else 0.0

    @property
    def bep(self) -> float:
        """Suite-level branch execution penalty."""
        return self.penalty_cycles / self.n_branches \
            if self.n_branches else 0.0

    @property
    def ipb(self) -> float:
        """Suite-level instructions per block."""
        return self.n_instructions / self.n_blocks if self.n_blocks else 0.0

    def penalty_share(self, kind) -> float:
        """Fraction of total BEP contributed by one penalty kind."""
        total = sum(s.event_cycles.get(kind, 0)
                    for s in self.per_program.values())
        return total / self.penalty_cycles if self.penalty_cycles else 0.0

    def penalty_bep(self, kind) -> float:
        """Suite BEP contribution of one penalty kind."""
        total = sum(s.event_cycles.get(kind, 0)
                    for s in self.per_program.values())
        return total / self.n_branches if self.n_branches else 0.0


def run_suite(suite: str, config: EngineConfig, budget: int,
              engine_factory: Callable = None,
              label: str = None) -> SuiteAggregate:
    """Run one engine configuration over a full sub-suite.

    ``engine_factory`` defaults to the dual-block engine; pass
    ``SingleBlockEngine`` for single-block experiments.  A fresh engine
    (cold tables) is created per program, as in per-benchmark simulation.

    The cells go through :func:`repro.runtime.executor.run_suite_specs`,
    so ``REPRO_JOBS`` fans them out over worker processes; results are
    merged in suite order and identical to a serial run.
    """
    return run_suite_batch(
        [SuiteSpec(suite=suite, config=config, budget=budget,
                   engine_factory=engine_factory)], label=label)[0]


def run_suite_batch(specs: List[SuiteSpec],
                    label: str = None) -> List[SuiteAggregate]:
    """Run several suite sweeps as one fan-out (one aggregate per spec).

    Batching lets ``REPRO_JOBS`` workers interleave the cells of *all*
    requested configurations instead of synchronising per configuration.
    ``label`` names the sweep in :class:`~repro.runtime.resilience.\
SweepReport`\\ s and keys its checkpoint journal, so an interrupted
    labeled run resumes from its completed cells.
    """
    return run_suite_specs(specs, label=label)


def run_single_block_suite(suite: str, config: EngineConfig,
                           budget: int) -> SuiteAggregate:
    """Suite run on the single-block engine."""
    return run_suite(suite, config, budget,
                     engine_factory=SingleBlockEngine)


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Minimal fixed-width table formatter for benchmark output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
