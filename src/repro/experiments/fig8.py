"""Figure 8 — single vs double selection across GHR lengths and ST counts.

"The global history register length varies from 9 to 12.  There can be 1,
2, 4, or 8 STs. ... increasing the number of STs improves performance as
well as increasing the branch history length.  The extra penalties from
using double selection significantly reduced performance, roughly 10% for
most cases."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.config import EngineConfig
from ..core.penalties import DOUBLE_SELECT, SINGLE_SELECT
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec
from .common import (SUITES, format_table, instruction_budget,
                     run_suite_batch)

DEFAULT_HISTORY = (9, 10, 11, 12)
DEFAULT_TABLES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Fig8Row:
    """One (suite, selection, history, #STs) point of Figure 8."""

    suite: str
    selection: str
    history_length: int
    n_select_tables: int
    ipc_f: float
    bep: float


def run_fig8(history_lengths: Iterable[int] = DEFAULT_HISTORY,
             table_counts: Iterable[int] = DEFAULT_TABLES,
             budget: int = None) -> List[Fig8Row]:
    """Reproduce Figure 8's sweep (dual-block engine, normal cache)."""
    budget = budget or instruction_budget()
    geometry = CacheGeometry.normal(8)
    points = [(suite, selection, h, n_st)
              for suite in SUITES
              for selection in (SINGLE_SELECT, DOUBLE_SELECT)
              for h in history_lengths
              for n_st in table_counts]
    aggregates = run_suite_batch([
        SuiteSpec(suite=suite,
                  config=EngineConfig(geometry=geometry,
                                      history_length=h,
                                      n_select_tables=n_st,
                                      selection=selection),
                  budget=budget)
        for suite, selection, h, n_st in points], label="fig8")
    return [Fig8Row(
        suite=suite,
        selection=selection,
        history_length=h,
        n_select_tables=n_st,
        ipc_f=agg.ipc_f,
        bep=agg.bep,
    ) for (suite, selection, h, n_st), agg in zip(points, aggregates)]


def format_fig8(rows: List[Fig8Row]) -> str:
    """Render the rows as the paper's Figure 8 reads."""
    table = [[row.suite, row.selection,
              f"{row.history_length}/{row.n_select_tables}",
              f"{row.ipc_f:.2f}", f"{row.bep:.3f}"]
             for row in rows]
    return format_table(["suite", "selection", "hist/#ST", "IPC_f", "BEP"],
                        table)
