"""Figure 7 — BIT table size: BEP contribution and fetch rate.

"Different BIT table sizes were simulated to evaluate its impact.  Using
single block fetching, Figure 7 shows the BEP contribution from inaccurate
BIT information (bar).  Also shown is the IPC_f (line).  Small sized BIT
tables result in poor performance.  Only until about 2048 entries does the
percentage of BEP drop below 5%."

**Footprint scaling.**  The BIT-size experiment only bites while the table
holds fewer lines than the workload's active code footprint.  SPEC95
binaries keep thousands of i-cache lines hot; our analog programs average
~40 lines of text.  The sweep therefore runs at sizes scaled down by
``FOOTPRINT_SCALE`` (64x), and each row records the paper-equivalent size
it stands in for — the *shape* (BIT share of BEP falling below 5% two
steps before the top of the sweep) is the reproduced result.  Pass
``scaled=False`` to sweep the paper's literal sizes instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.config import EngineConfig
from ..core.penalties import PenaltyKind
from ..core.single import SingleBlockEngine
from ..icache.geometry import CacheGeometry
from ..runtime.executor import SuiteSpec
from .common import (
    SUITES,
    format_table,
    instruction_budget,
    run_suite_batch,
)

#: The paper's swept sizes.
PAPER_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)

#: Ratio of SPEC95 active code footprint to our analogs' (~2500 vs ~40
#: hot lines).
FOOTPRINT_SCALE = 64

#: Scaled sweep reproducing the figure's shape at our footprint.
DEFAULT_SIZES = tuple(max(1, s // FOOTPRINT_SCALE) for s in PAPER_SIZES)


@dataclass(frozen=True)
class Fig7Row:
    """One (suite, BIT entries) point of Figure 7."""

    suite: str
    bit_entries: int
    paper_equivalent: Optional[int]  #: the paper size this stands in for
    bit_share_of_bep: float          #: fraction of BEP due to stale BIT
    ipc_f: float
    bep: float


def run_fig7(sizes: Iterable[int] = None, budget: int = None,
             scaled: bool = True) -> List[Fig7Row]:
    """Reproduce Figure 7's sweep (single-block engine, separate BIT)."""
    budget = budget or instruction_budget()
    if sizes is None:
        sizes = DEFAULT_SIZES if scaled else PAPER_SIZES
    sizes = tuple(sizes)
    geometry = CacheGeometry.normal(8)
    points = [(suite, entries) for suite in SUITES for entries in sizes]
    aggregates = run_suite_batch([
        SuiteSpec(suite=suite,
                  config=EngineConfig(geometry=geometry,
                                      bit_entries=entries),
                  budget=budget,
                  engine_factory=SingleBlockEngine)
        for suite, entries in points], label="fig7")
    rows = []
    for (suite, entries), agg in zip(points, aggregates):
        rows.append(Fig7Row(
            suite=suite,
            bit_entries=entries,
            paper_equivalent=(entries * FOOTPRINT_SCALE
                              if scaled else None),
            bit_share_of_bep=agg.penalty_share(PenaltyKind.BIT),
            ipc_f=agg.ipc_f,
            bep=agg.bep,
        ))
    return rows


def format_fig7(rows: List[Fig7Row]) -> str:
    """Render the rows as the paper's Figure 7 reads."""
    table = []
    for row in rows:
        label = str(row.bit_entries)
        if row.paper_equivalent is not None:
            label = f"{row.bit_entries} (~{row.paper_equivalent})"
        table.append([row.suite, label,
                      f"{100 * row.bit_share_of_bep:.1f}%",
                      f"{row.bep:.3f}", f"{row.ipc_f:.2f}"])
    return format_table(
        ["suite", "BIT entries (paper-eq)", "%BEP from BIT", "BEP",
         "IPC_f"], table)
